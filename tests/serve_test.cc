// QueryServer (src/server/server.h) end to end over loopback sockets:
// query answers match the direct interpreter, every boundary condition
// comes back as a *typed* wire error (overload, draining, unknown tree,
// bad program, deadline), drain cancels in-flight work cooperatively,
// the books reconcile (admitted == ok + error + drained), and the
// SIGHUP/Install re-entrancy contract of src/engine/shutdown holds.
// The subprocess leg runs tools/serve_smoke.sh against the real twq
// binary and asserts the documented drain exit code 75.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/text_format.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/engine/input_cache.h"
#include "src/engine/shutdown.h"
#include "src/server/frame.h"
#include "src/server/server.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "tests/serve_test_util.h"

namespace treewalk {
namespace {

using serve_test::Connect;
using serve_test::Exchange;
using serve_test::kAcceptAllProgram;
using serve_test::kScanProgram;
using serve_test::QueryFrame;
using serve_test::ReadFrame;
using serve_test::WriteAll;

/// A server over a two-tree corpus ("small", "big"), torn down in
/// order.  Options default to generous limits; tests tighten the knob
/// they exercise.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisableAll();
    if (kMetricsEnabled) MetricsRegistry::Global().ResetForTest();
  }

  void TearDown() override {
    if (server_) {
      server_->BeginDrain();
      server_->AwaitTermination();
    }
    FailpointRegistry::Global().DisableAll();
  }

  void StartServer(ServerOptions options) {
    corpus_ = std::make_unique<ResidentTreeCache>(0);
    ASSERT_TRUE(corpus_
                    ->GetOrLoad("small",
                                [] { return ParseTerm("a(b(c), d[x=1])"); })
                    .ok());
    ASSERT_TRUE(corpus_
                    ->GetOrLoad("big",
                                []() -> Result<Tree> {
                                  // ~65k nodes: a full DFS holds a
                                  // worker for many milliseconds, which
                                  // the drain tests rely on.
                                  return Result<Tree>(FullTree(2, 15));
                                })
                    .ok());
    server_ = std::make_unique<QueryServer>(options, corpus_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  /// Scoped client connection.
  struct Client {
    int fd = -1;
    explicit Client(int port) : fd(Connect(port)) {}
    ~Client() {
      if (fd >= 0) close(fd);
    }
  };

  ErrorMsg ExpectError(const std::string& request) {
    Client client(server_->port());
    EXPECT_GE(client.fd, 0);
    MessageType type;
    std::string body;
    EXPECT_TRUE(Exchange(client.fd, request, type, body));
    EXPECT_EQ(type, MessageType::kError);
    Result<ErrorMsg> error = DecodeError(body);
    EXPECT_TRUE(error.ok());
    return error.ok() ? *error : ErrorMsg{};
  }

  StatsMap FetchStats() {
    Client client(server_->port());
    EXPECT_GE(client.fd, 0);
    MessageType type;
    std::string body;
    EXPECT_TRUE(Exchange(client.fd, EncodeFrame(MessageType::kStats, ""), type,
                         body));
    EXPECT_EQ(type, MessageType::kStatsResult);
    Result<StatsMap> stats = DecodeStats(body);
    EXPECT_TRUE(stats.ok());
    return stats.ok() ? *stats : StatsMap{};
  }

  void ExpectBooksReconcile() {
    const ServerCounters& c = server_->counters();
    EXPECT_EQ(c.requests_admitted.load(),
              c.served_ok.load() + c.served_error.load() + c.drained.load());
  }

  std::unique_ptr<ResidentTreeCache> corpus_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServeTest, StartsAndDrainsWithoutTraffic) {
  StartServer({});
  server_->BeginDrain();
  EXPECT_TRUE(server_->draining());
  server_->AwaitTermination();
  server_.reset();
}

TEST_F(ServeTest, PingStatsAndMetricsAnswerOnOneConnection) {
  StartServer({});
  Client client(server_->port());
  ASSERT_GE(client.fd, 0);

  MessageType type;
  std::string body;
  ASSERT_TRUE(
      Exchange(client.fd, EncodeFrame(MessageType::kPing, ""), type, body));
  EXPECT_EQ(type, MessageType::kPong);
  EXPECT_TRUE(body.empty());

  ASSERT_TRUE(
      Exchange(client.fd, EncodeFrame(MessageType::kStats, ""), type, body));
  ASSERT_EQ(type, MessageType::kStatsResult);
  Result<StatsMap> stats = DecodeStats(body);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->Value("server.pings"), 1);
  EXPECT_EQ(stats->Value("server.open_connections"), 1);
  EXPECT_EQ(stats->Value("corpus.resident_trees"), 2);
  EXPECT_GT(stats->Value("corpus.resident_bytes"), 0);
  EXPECT_EQ(stats->Value("server.draining"), 0);

  if (kMetricsEnabled) {
    ASSERT_TRUE(Exchange(client.fd, EncodeFrame(MessageType::kMetrics, ""),
                         type, body));
    EXPECT_EQ(type, MessageType::kMetricsResult);
    EXPECT_NE(body.find("treewalk_server_connections_total"),
              std::string::npos);
  }
  EXPECT_EQ(server_->counters().pings.load(), 1);
  EXPECT_EQ(server_->counters().stats_requests.load(), 1);
}

TEST_F(ServeTest, QueryVerdictsMatchTheDirectInterpreter) {
  StartServer({});
  std::shared_ptr<const ResidentTreeCache::Prepared> tree =
      corpus_->Lookup("small");
  ASSERT_NE(tree, nullptr);

  for (const char* text : {kAcceptAllProgram, kScanProgram}) {
    Program program = std::move(ParseProgramText(text)).value();
    RunResult direct =
        std::move(Interpreter(program).RunDelimited(tree->delimited)).value();

    Client client(server_->port());
    ASSERT_GE(client.fd, 0);
    MessageType type;
    std::string body;
    ASSERT_TRUE(Exchange(client.fd, QueryFrame("small", text), type, body));
    ASSERT_EQ(type, MessageType::kQueryResult) << text;
    Result<QueryResultMsg> result = DecodeQueryResult(body);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->accepted, direct.accepted) << text;
    EXPECT_EQ(result->steps, direct.stats.steps) << text;
    EXPECT_EQ(result->atp_calls, direct.stats.atp_calls) << text;
    EXPECT_EQ(result->attempts, 1u);
  }
  EXPECT_EQ(server_->counters().served_ok.load(), 2);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, SequentialQueriesReuseOneConnection) {
  StartServer({});
  Client client(server_->port());
  ASSERT_GE(client.fd, 0);
  for (int i = 0; i < 16; ++i) {
    MessageType type;
    std::string body;
    ASSERT_TRUE(Exchange(client.fd, QueryFrame("small", kAcceptAllProgram),
                         type, body))
        << i;
    ASSERT_EQ(type, MessageType::kQueryResult) << i;
    EXPECT_TRUE(DecodeQueryResult(body)->accepted);
  }
  EXPECT_EQ(server_->counters().served_ok.load(), 16);
  EXPECT_EQ(server_->counters().connections_accepted.load(), 1);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, UnknownTreeIsTypedNotFound) {
  StartServer({});
  ErrorMsg error = ExpectError(QueryFrame("no-such-tree", kAcceptAllProgram));
  EXPECT_EQ(error.code, WireError::kNotFound);
  EXPECT_EQ(server_->counters().served_error.load(), 1);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, UnparsableProgramIsTypedInvalidRequest) {
  StartServer({});
  ErrorMsg error = ExpectError(QueryFrame("small", "class bogus\n"));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);
  EXPECT_EQ(server_->counters().served_error.load(), 1);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, TinyDeadlineIsTypedDeadlineExceeded) {
  ServerOptions options;
  options.max_deadline_ms = 10000;
  StartServer(options);
  // A full scan of the 65k-node tree cannot finish in 1 ms.
  ErrorMsg error = ExpectError(QueryFrame("big", kScanProgram, 1));
  EXPECT_EQ(error.code, WireError::kDeadlineExceeded);
  EXPECT_EQ(server_->counters().served_error.load(), 1);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, FullQueueShedsWithTypedOverloaded) {
  ServerOptions options;
  options.max_queue = 1;  // one slot: a slow scan fills the queue
  options.num_workers = 1;
  options.default_deadline_ms = 60000;
  options.max_deadline_ms = 60000;
  StartServer(options);

  std::thread slow([this] {
    Client client(server_->port());
    if (client.fd < 0) return;
    MessageType type;
    std::string body;
    (void)Exchange(client.fd, QueryFrame("big", kScanProgram), type, body);
  });
  while (server_->counters().requests_admitted.load() < 1) {
    std::this_thread::yield();
  }

  // The slot is taken: the next query must shed, typed, immediately.
  ErrorMsg error = ExpectError(QueryFrame("small", kAcceptAllProgram));
  EXPECT_EQ(error.code, WireError::kOverloaded);
  EXPECT_EQ(server_->counters().shed_queue.load(), 1);
  EXPECT_EQ(server_->counters().requests_admitted.load(), 1);
  slow.join();
  ExpectBooksReconcile();
}

TEST_F(ServeTest, MemoryHighWaterShedsWithTypedOverloaded) {
  ServerOptions options;
  options.memory_budget_bytes = 1;  // below one request's reservation
  StartServer(options);
  ErrorMsg error = ExpectError(QueryFrame("small", kAcceptAllProgram));
  EXPECT_EQ(error.code, WireError::kOverloaded);
  EXPECT_EQ(server_->counters().shed_memory.load(), 1);
  EXPECT_EQ(server_->counters().requests_admitted.load(), 0);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, MalformedFramesAreTypedAndCounted) {
  StartServer({});
  {
    // A zero length prefix poisons the stream: typed error, then close.
    Client client(server_->port());
    ASSERT_GE(client.fd, 0);
    ASSERT_TRUE(WriteAll(client.fd, std::string(4, '\0')));
    MessageType type;
    std::string body;
    ASSERT_TRUE(ReadFrame(client.fd, type, body));
    ASSERT_EQ(type, MessageType::kError);
    EXPECT_EQ(DecodeError(body)->code, WireError::kInvalidRequest);
    EXPECT_FALSE(ReadFrame(client.fd, type, body));  // server closed
  }
  {
    // An oversized prefix is rejected before any allocation.
    Client client(server_->port());
    ASSERT_GE(client.fd, 0);
    ASSERT_TRUE(WriteAll(client.fd, std::string(4, '\xff')));
    MessageType type;
    std::string body;
    ASSERT_TRUE(ReadFrame(client.fd, type, body));
    EXPECT_EQ(type, MessageType::kError);
  }
  {
    // A well-framed but undecodable payload is recoverable: typed
    // error, connection stays usable.
    Client client(server_->port());
    ASSERT_GE(client.fd, 0);
    ASSERT_TRUE(WriteAll(client.fd, EncodeFrame(MessageType::kQuery, "xx")));
    MessageType type;
    std::string body;
    ASSERT_TRUE(ReadFrame(client.fd, type, body));
    ASSERT_EQ(type, MessageType::kError);
    EXPECT_EQ(DecodeError(body)->code, WireError::kInvalidRequest);
    ASSERT_TRUE(Exchange(client.fd, EncodeFrame(MessageType::kPing, ""), type,
                         body));
    EXPECT_EQ(type, MessageType::kPong);
  }
  EXPECT_GE(server_->counters().protocol_errors.load(), 3);
  EXPECT_EQ(server_->counters().requests_admitted.load(), 0);
}

TEST_F(ServeTest, ResponseTypeSentAsRequestIsRejected) {
  StartServer({});
  ErrorMsg error = ExpectError(EncodeFrame(MessageType::kPong, ""));
  EXPECT_EQ(error.code, WireError::kInvalidRequest);
  EXPECT_NE(error.message.find("sent as a request"), std::string::npos);
}

TEST_F(ServeTest, DrainingShedsNewQueriesWithTypedDraining) {
  StartServer({});
  Client client(server_->port());
  ASSERT_GE(client.fd, 0);
  // Exchange a ping first: connect() returning only proves the kernel
  // backlog took us, and a drain stops the accept loop — an
  // unaccepted connection would never be served.
  MessageType type;
  std::string body;
  ASSERT_TRUE(
      Exchange(client.fd, EncodeFrame(MessageType::kPing, ""), type, body));
  ASSERT_EQ(type, MessageType::kPong);
  server_->BeginDrain();
  ASSERT_TRUE(Exchange(client.fd, QueryFrame("small", kAcceptAllProgram), type,
                       body));
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_EQ(DecodeError(body)->code, WireError::kDraining);
  EXPECT_EQ(server_->counters().shed_draining.load(), 1);
  EXPECT_EQ(server_->counters().requests_admitted.load(), 0);
  ExpectBooksReconcile();
}

TEST_F(ServeTest, DrainCancelsInFlightScansAndBooksReconcile) {
  ServerOptions options;
  options.num_workers = 1;  // serialize: most of the fleet stays queued
  options.drain_deadline_ms = 10;
  options.default_deadline_ms = 60000;
  options.max_deadline_ms = 60000;
  StartServer(options);

  constexpr int kFleet = 8;
  std::atomic<int> cancelled{0}, finished{0}, lost{0};
  std::vector<std::thread> fleet;
  fleet.reserve(kFleet);
  for (int i = 0; i < kFleet; ++i) {
    fleet.emplace_back([this, &cancelled, &finished, &lost] {
      Client client(server_->port());
      if (client.fd < 0) {
        lost.fetch_add(1);
        return;
      }
      MessageType type;
      std::string body;
      if (!Exchange(client.fd, QueryFrame("big", kScanProgram), type, body)) {
        // The drain shut the socket before the response got out; the
        // server books the request anyway.
        lost.fetch_add(1);
        return;
      }
      if (type == MessageType::kError &&
          DecodeError(body)->code == WireError::kCancelled) {
        cancelled.fetch_add(1);
      } else {
        finished.fetch_add(1);
      }
    });
  }

  // Wait until the whole fleet is admitted, then pull the plug.
  while (server_->counters().requests_admitted.load() < kFleet) {
    std::this_thread::yield();
  }
  server_->BeginDrain();
  server_->AwaitTermination();
  for (std::thread& t : fleet) t.join();

  const ServerCounters& c = server_->counters();
  EXPECT_EQ(c.requests_admitted.load(), kFleet);
  EXPECT_EQ(c.requests_admitted.load(),
            c.served_ok.load() + c.served_error.load() + c.drained.load());
  // One worker over eight multi-millisecond scans and a 10 ms grace:
  // stragglers must exist, so the cancel path must have fired.
  EXPECT_GT(c.drained.load(), 0);
  // Client-observed outcomes are a subset of the server's books (a
  // response can be lost to the final socket shutdown, never invented).
  EXPECT_EQ(finished.load() + cancelled.load() + lost.load(), kFleet);
  EXPECT_LE(cancelled.load(), c.drained.load());
  EXPECT_LE(finished.load(), c.served_ok.load() + c.served_error.load());
  server_.reset();
}

TEST_F(ServeTest, BeginDrainIsIdempotentAndStopsAccepting) {
  StartServer({});
  server_->BeginDrain();
  server_->BeginDrain();  // second call is a no-op
  server_->AwaitTermination();
  // The listener is gone: a fresh connect must fail (allow for the
  // kernel to finish tearing the socket down).
  int fd = Connect(server_->port());
  if (fd >= 0) {
    // Connected to a dead-but-lingering socket: any read must EOF.
    char byte;
    EXPECT_LE(recv(fd, &byte, 1, 0), 0);
    close(fd);
  }
  server_.reset();
}

// --- src/engine/shutdown: SIGHUP latching and re-entrant install ----------

TEST(GracefulShutdownTest, SighupLatchesReloadWithoutTerminating) {
  GracefulShutdown::ResetForTest();
  GracefulShutdown::Install();
  GracefulShutdown::Install();  // second user of the same process

  ASSERT_EQ(raise(SIGHUP), 0);
  EXPECT_EQ(GracefulShutdown::reload_requests(), 1);
  EXPECT_FALSE(GracefulShutdown::requested());

  // One user uninstalls; the remaining install keeps handlers live.
  GracefulShutdown::Uninstall();
  ASSERT_EQ(raise(SIGHUP), 0);
  EXPECT_EQ(GracefulShutdown::reload_requests(), 2);
  EXPECT_FALSE(GracefulShutdown::requested());

  GracefulShutdown::Uninstall();
  GracefulShutdown::Uninstall();  // over-uninstall must be a safe no-op
  GracefulShutdown::ResetForTest();
}

TEST(GracefulShutdownTest, FirstTermLatchesForAPollingDriver) {
  GracefulShutdown::ResetForTest();
  GracefulShutdown::Install();
  ASSERT_EQ(raise(SIGTERM), 0);
  EXPECT_TRUE(GracefulShutdown::requested());
  EXPECT_EQ(GracefulShutdown::signal_number(), SIGTERM);
  GracefulShutdown::Uninstall();
  GracefulShutdown::ResetForTest();
}

// --- subprocess end-to-end: the real twq binary drains with exit 75 -------

#if defined(TREEWALK_TWQ_PATH) && defined(TREEWALK_LOADGEN_PATH)
TEST(ServeSmokeTest, DaemonServesLoadAndExits75OnSigterm) {
  std::string command = std::string("sh ") + TREEWALK_SOURCE_DIR +
                        "/tools/serve_smoke.sh " + TREEWALK_TWQ_PATH + " " +
                        TREEWALK_LOADGEN_PATH + " 800 > /dev/null 2>&1";
  EXPECT_EQ(std::system(command.c_str()), 0);
}
#endif

}  // namespace
}  // namespace treewalk
