#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/automata/library.h"
#include "src/hyperset/hyperset.h"
#include "src/protocol/protocol.h"
#include "src/simulation/config_graph.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

constexpr DataValue kHash = -1;

Program SetEq() {
  auto p = SetEqualityProgram(kHash);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(SetEqualityProgram, DirectSemantics) {
  Program p = SetEq();
  struct Case {
    std::vector<DataValue> f, g;
    bool accept;
  } cases[] = {
      {{5, 7}, {7, 5}, true},
      {{5, 7}, {5, 7, 7}, true},  // sets, not multisets
      {{5, 7}, {5}, false},
      {{}, {}, true},
      {{5}, {}, false},
      {{1, 5}, {1, 5}, true},
  };
  for (const Case& c : cases) {
    Tree t = StringTree(SplitString(c.f, c.g, kHash));
    auto r = EvaluateViaConfigGraph(p, t);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->accepted, c.accept)
        << ::testing::PrintToString(c.f) << " # "
        << ::testing::PrintToString(c.g);
  }
}

TEST(RunSplitProtocol, VerdictMatchesReferenceEvaluation) {
  Program p = SetEq();
  std::mt19937 rng(3);
  std::uniform_int_distribution<DataValue> value(5, 8);
  std::uniform_int_distribution<int> len(0, 4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<DataValue> f(static_cast<std::size_t>(len(rng)));
    std::vector<DataValue> g(static_cast<std::size_t>(len(rng)));
    for (auto& v : f) v = value(rng);
    for (auto& v : g) v = value(rng);
    auto protocol = RunSplitProtocol(p, f, g, kHash);
    ASSERT_TRUE(protocol.ok()) << protocol.status();
    Tree t = StringTree(SplitString(f, g, kHash));
    auto reference = EvaluateViaConfigGraph(p, t);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(protocol->accepted, reference->accepted) << "trial " << trial;
  }
}

TEST(RunSplitProtocol, TranscriptShape) {
  Program p = SetEq();
  auto r = RunSplitProtocol(p, {5}, {5}, kHash);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  const auto& t = r->transcript;
  ASSERT_GE(t.size(), 4u);
  // Initialization: both parties exchange their N-type tokens.
  EXPECT_EQ(t[0].kind, ProtocolMessage::Kind::kType);
  EXPECT_EQ(t[0].from, 0);
  EXPECT_EQ(t[1].kind, ProtocolMessage::Kind::kType);
  EXPECT_EQ(t[1].from, 1);
  // The walk crosses into g at least once (collecting G happens there).
  bool crossed = false;
  for (const auto& m : t) {
    if (m.kind == ProtocolMessage::Kind::kConfig ||
        m.kind == ProtocolMessage::Kind::kConfigNeedAnswer) {
      crossed = true;
    }
  }
  EXPECT_TRUE(crossed);
  // The dialogue closes with the verdict.
  EXPECT_EQ(t.back().kind, ProtocolMessage::Kind::kAccept);
}

TEST(RunSplitProtocol, RejectVerdictClosesDialogue) {
  Program p = SetEq();
  auto r = RunSplitProtocol(p, {5}, {6}, kHash);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  EXPECT_EQ(r->transcript.back().kind, ProtocolMessage::Kind::kReject);
}

TEST(RunSplitProtocol, AtpRequestsCrossTheBoundaryAndDeduplicate) {
  // The look-ahead variant selects nodes in both halves from the root,
  // so party I must issue atp requests; Lemma 4.5's rule (iii) sends
  // each distinct request at most once.
  auto p = SetEqualityViaLookaheadProgram(kHash);
  ASSERT_TRUE(p.ok()) << p.status();
  auto r = RunSplitProtocol(*p, {5, 6, 5}, {6, 5}, kHash);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);  // {5,6} == {6,5}
  std::set<std::string> requests;
  int num_requests = 0;
  int num_replies = 0;
  for (const auto& m : r->transcript) {
    if (m.kind == ProtocolMessage::Kind::kAtpRequest) {
      ++num_requests;
      EXPECT_TRUE(requests.insert(m.payload).second)
          << "duplicate request: " << m.payload;
    }
    if (m.kind == ProtocolMessage::Kind::kReply) ++num_replies;
  }
  // The F look-ahead selects only party I's own half; the G look-ahead
  // crosses into party II: exactly one request/reply pair.
  EXPECT_EQ(num_requests, 1);
  EXPECT_EQ(num_replies, 1);
}

TEST(SetEqualityViaLookahead, AgreesWithWalkingVariant) {
  auto walk = SetEqualityProgram(kHash);
  auto jump = SetEqualityViaLookaheadProgram(kHash);
  ASSERT_TRUE(walk.ok() && jump.ok()) << jump.status();
  std::mt19937 rng(8);
  std::uniform_int_distribution<DataValue> value(5, 7);
  std::uniform_int_distribution<int> len(0, 4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<DataValue> f(static_cast<std::size_t>(len(rng)));
    std::vector<DataValue> g(static_cast<std::size_t>(len(rng)));
    for (auto& v : f) v = value(rng);
    for (auto& v : g) v = value(rng);
    Tree t = StringTree(SplitString(f, g, kHash));
    auto a = EvaluateViaConfigGraph(*walk, t);
    auto b = EvaluateViaConfigGraph(*jump, t);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->accepted, b->accepted) << "trial " << trial;
  }
}

TEST(RunSplitProtocol, SeparatorInsideHalfIsRejected) {
  Program p = SetEq();
  EXPECT_FALSE(RunSplitProtocol(p, {5, kHash}, {5}, kHash).ok());
}

TEST(RunSplitProtocol, FingerprintDistinguishesDialogues) {
  Program p = SetEq();
  auto a = RunSplitProtocol(p, {5}, {5}, kHash);
  auto b = RunSplitProtocol(p, {5, 6}, {5, 6}, kHash);
  auto a2 = RunSplitProtocol(p, {5}, {5}, kHash);
  ASSERT_TRUE(a.ok() && b.ok() && a2.ok());
  EXPECT_EQ(a->dialogue_fingerprint, a2->dialogue_fingerprint);
  EXPECT_NE(a->dialogue_fingerprint, b->dialogue_fingerprint);
}

TEST(RunDialogueCensus, Level1SeparatesEverything) {
  // On level-1 hypersets the set-equality program is *correct*, and its
  // dialogues (which ship the collected value sets) separate all
  // hypersets: no collision.
  Program p = SetEq();
  ProtocolOptions options;
  options.type_k = 1;  // the lemma's Delta is program-size-bounded; k=1
                       // keeps the toy-scale alphabet small
  auto census = RunDialogueCensus(p, 1, {5, 6, 7}, kHash, options);
  ASSERT_TRUE(census.ok()) << census.status();
  EXPECT_EQ(census->num_hypersets, 8u);
  EXPECT_EQ(census->num_distinct_dialogues, 8u);
  EXPECT_FALSE(census->collision_found);
}

TEST(RunDialogueCensus, Level2CollidesByPigeonhole) {
  // 16 level-2 hypersets over {5, 6} but the program's dialogues only
  // reflect flat symbol sets: distinct hypersets with equal flat sets
  // (e.g. {{5},{6}} vs {{5,6}}) produce identical dialogues -- the
  // Lemma 4.6 pigeonhole at toy scale.
  Program p = SetEq();
  ProtocolOptions options;
  options.type_k = 1;
  auto census = RunDialogueCensus(p, 2, {5, 6}, kHash, options);
  ASSERT_TRUE(census.ok()) << census.status();
  EXPECT_EQ(census->num_hypersets, 16u);
  EXPECT_LT(census->num_distinct_dialogues, census->num_hypersets);
  EXPECT_TRUE(census->collision_found);
  EXPECT_NE(census->collision_a, census->collision_b);
}

TEST(RunDialogueCensus, CollidingHypersetsBreakTheProgramOnMixedInput) {
  // Complete the Lemma 4.6 argument executably: for a collision (X, Y),
  // the program treats f_X # f_Y like a diagonal input, so it *accepts*
  // a string outside L^2 -- it does not compute L^2.
  Program p = SetEq();
  ProtocolOptions options;
  options.type_k = 1;
  auto census = RunDialogueCensus(p, 2, {5, 6}, kHash, options);
  ASSERT_TRUE(census.ok());
  ASSERT_TRUE(census->collision_found);
  // Reconstruct the colliding pair by searching (census reports strings).
  std::vector<Hyperset> all = EnumerateHypersets(2, {5, 6});
  const Hyperset* x = nullptr;
  const Hyperset* y = nullptr;
  for (const Hyperset& h : all) {
    if (h.ToString() == census->collision_a) x = &h;
    if (h.ToString() == census->collision_b) y = &h;
  }
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  std::vector<DataValue> fx = EncodeHyperset(*x);
  std::vector<DataValue> fy = EncodeHyperset(*y);
  auto mixed = RunSplitProtocol(p, fx, fy, kHash);
  ASSERT_TRUE(mixed.ok());
  std::vector<DataValue> s = SplitString(fx, fy, kHash);
  EXPECT_NE(mixed->accepted, InLm(2, s, kHash))
      << "program decided " << x->ToString() << " # " << y->ToString()
      << " correctly, but the dialogue collision predicts an error";
}

}  // namespace
}  // namespace treewalk
