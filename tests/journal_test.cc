// The write-ahead journal (src/common/journal.h): CRC framing, atomic
// header creation, torn-tail detection at *every* byte offset, repair
// on reopen, and failpoint-injected I/O errors.  The batch-record
// layer on top (src/engine/batch_journal.h) is covered here too:
// encode/decode round trips and resume-plan construction.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/failpoint.h"
#include "src/common/journal.h"
#include "src/engine/batch_journal.h"

namespace treewalk {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisableAll();
    dir_ = std::filesystem::temp_directory_path() /
           ("treewalk_journal_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    FailpointRegistry::Global().DisableAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static void Spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(JournalTest, Crc32cMatchesKnownVectors) {
  // RFC 3720 test vector.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST_F(JournalTest, AppendReadRoundTrip) {
  std::string path = Path("j");
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE(writer->Append("first record").ok());
    ASSERT_TRUE(writer->Append("").ok());  // empty payload is legal
    ASSERT_TRUE(writer->Append(std::string("bin\0ary", 7)).ok());
    ASSERT_TRUE(writer->Sync().ok());
    EXPECT_EQ(writer->appended(), 3);
  }
  Result<JournalContents> contents = ReadJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_FALSE(contents->torn);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0], "first record");
  EXPECT_EQ(contents->records[1], "");
  EXPECT_EQ(contents->records[2], std::string("bin\0ary", 7));
  EXPECT_EQ(contents->valid_bytes, std::filesystem::file_size(path));
}

TEST_F(JournalTest, ReopenAppendsAfterExistingRecords) {
  std::string path = Path("j");
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("one").ok());
  }
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("two").ok());
  }
  Result<JournalContents> contents = ReadJournal(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->records.size(), 2u);
  EXPECT_EQ(contents->records[0], "one");
  EXPECT_EQ(contents->records[1], "two");
}

TEST_F(JournalTest, MissingAndMalformedHeadersAreErrors) {
  EXPECT_EQ(ReadJournal(Path("absent")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseJournal("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJournal("TWJR").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseJournal("XXXXXXXX\x01\x00\x00\x00\x00\x00\x00\x00")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Wrong version.
  std::string bytes(kJournalMagic, sizeof(kJournalMagic));
  bytes += std::string("\x07\x00\x00\x00\x00\x00\x00\x00", 8);
  EXPECT_EQ(ParseJournal(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

/// The tentpole recovery property: truncating a journal at EVERY byte
/// offset yields a cleanly parsed prefix (never a crash, never a
/// misframed record), and reopening the truncated file for append
/// repairs it so new records land after the intact prefix.
TEST_F(JournalTest, TruncationAtEveryByteOffsetRecovers) {
  std::string path = Path("j");
  std::vector<std::string> payloads = {"alpha", "", "gamma gamma gamma",
                                       std::string(200, 'x'),
                                       std::string("\x00\xff\x7f", 3)};
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const std::string& p : payloads) ASSERT_TRUE(writer->Append(p).ok());
  }
  std::string full = Slurp(path);
  ASSERT_GT(full.size(), kJournalHeaderBytes);

  // Expected record count for a given prefix length.
  auto intact_records = [&](std::size_t len) {
    std::size_t at = kJournalHeaderBytes;
    std::size_t count = 0;
    for (const std::string& p : payloads) {
      if (at + 8 + p.size() > len) break;
      at += 8 + p.size();
      ++count;
    }
    return count;
  };

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    std::string prefix = full.substr(0, cut);
    Result<JournalContents> parsed = ParseJournal(prefix);
    if (cut < kJournalHeaderBytes) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(parsed.ok()) << "cut=" << cut << ": " << parsed.status();
    EXPECT_EQ(parsed->records.size(), intact_records(cut)) << "cut=" << cut;
    EXPECT_EQ(parsed->torn, parsed->valid_bytes != cut) << "cut=" << cut;
    EXPECT_LE(parsed->valid_bytes, cut);

    // File-level repair: reopen-for-append truncates the torn tail and
    // appends cleanly after the intact prefix.
    if (cut < kJournalHeaderBytes) continue;
    std::string repaired_path = Path("repair");
    Spit(repaired_path, prefix);
    Result<JournalWriter> writer = JournalWriter::Open(repaired_path);
    ASSERT_TRUE(writer.ok()) << "cut=" << cut << ": " << writer.status();
    ASSERT_TRUE(writer->Append("appended-after-repair").ok());
    writer->Close();
    Result<JournalContents> reread = ReadJournal(repaired_path);
    ASSERT_TRUE(reread.ok()) << "cut=" << cut;
    EXPECT_FALSE(reread->torn) << "cut=" << cut;
    ASSERT_EQ(reread->records.size(), intact_records(cut) + 1)
        << "cut=" << cut;
    EXPECT_EQ(reread->records.back(), "appended-after-repair");
    std::filesystem::remove(repaired_path);
  }
}

TEST_F(JournalTest, MidFileCorruptionStopsAtTheCorruptFrame) {
  std::string path = Path("j");
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("aaaa").ok());
    ASSERT_TRUE(writer->Append("bbbb").ok());
    ASSERT_TRUE(writer->Append("cccc").ok());
  }
  std::string bytes = Slurp(path);
  // Flip one payload byte of the middle record: its CRC no longer
  // matches, so parsing keeps the first record and truncates there.
  std::size_t middle_payload = kJournalHeaderBytes + (8 + 4) + 8;
  bytes[middle_payload] ^= 0x01;
  Result<JournalContents> parsed = ParseJournal(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->torn);
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0], "aaaa");
  EXPECT_NE(parsed->tail_error.find("crc mismatch"), std::string::npos);
}

TEST_F(JournalTest, OversizedLengthPrefixIsTreatedAsTorn) {
  std::string bytes(kJournalMagic, sizeof(kJournalMagic));
  bytes += std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8);
  bytes += std::string("\xff\xff\xff\x7f", 4);  // length = 2^31-ish
  bytes += std::string("\x00\x00\x00\x00", 4);
  Result<JournalContents> parsed = ParseJournal(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->torn);
  EXPECT_EQ(parsed->records.size(), 0u);
  EXPECT_NE(parsed->tail_error.find("oversized"), std::string::npos);
}

TEST_F(JournalTest, FailpointsInjectIntoAppendFsyncAndRename) {
  // Creation: an injected rename failure must not leave the journal (or
  // its tmp file) behind.
  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  FailpointRegistry::Global().Enable("journal/rename", config);
  std::string path = Path("j");
  Result<JournalWriter> failed = JournalWriter::Open(path);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  FailpointRegistry::Global().DisableAll();

  Result<JournalWriter> writer = JournalWriter::Open(path);
  ASSERT_TRUE(writer.ok());

  FailpointRegistry::Global().Enable("journal/append", config);
  EXPECT_EQ(writer->Append("x").code(), StatusCode::kInternal);
  FailpointRegistry::Global().DisableAll();
  EXPECT_TRUE(writer->Append("x").ok());

  FailpointRegistry::Global().Enable("journal/fsync", config);
  EXPECT_EQ(writer->Sync().code(), StatusCode::kInternal);
  FailpointRegistry::Global().DisableAll();
  EXPECT_TRUE(writer->Sync().ok());
}

TEST_F(JournalTest, BatchRecordEncodeDecodeRoundTrips) {
  BatchRecord started;
  started.type = BatchRecord::Type::kJobStarted;
  started.job_id = 0xdeadbeef12345678ULL;
  started.attempt = 2;
  started.rung = 1;
  Result<BatchRecord> s = DecodeBatchRecord(EncodeBatchRecord(started));
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(*s, started);

  BatchRecord finished;
  finished.type = BatchRecord::Type::kJobFinished;
  finished.job_id = 1;
  finished.code = StatusCode::kDeadlineExceeded;
  finished.accepted = false;
  finished.attempts = 4;
  finished.rung = 3;
  finished.steps = 0;
  Result<BatchRecord> f = DecodeBatchRecord(EncodeBatchRecord(finished));
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(*f, finished);

  BatchRecord ok_run = finished;
  ok_run.code = StatusCode::kOk;
  ok_run.accepted = true;
  ok_run.steps = 123456789;
  Result<BatchRecord> o = DecodeBatchRecord(EncodeBatchRecord(ok_run));
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(*o, ok_run);
}

TEST_F(JournalTest, MalformedBatchRecordsAreRejected) {
  for (const char* bad :
       {"", "Q 0011223344556677 0 0", "S xyz 0 0", "S 0011223344556677 0",
        "S 0011223344556677 0 0 extra", "F 0011223344556677 1 2 3",
        "F 0011223344556677 99 0 1 0 5", "F 0011223344556677 0 2 1 0 5",
        "S 0011223344556677 -1 0"}) {
    EXPECT_FALSE(DecodeBatchRecord(bad).ok()) << "accepted: '" << bad << "'";
  }
  EXPECT_FALSE(DecodeBatchRecord(std::string_view("S \0", 3)).ok());
}

TEST_F(JournalTest, ResumePlanClassifiesRecords) {
  std::string path = Path("j");
  {
    Result<BatchJournal> journal = BatchJournal::Open(path);
    ASSERT_TRUE(journal.ok()) << journal.status();
    // Job 1: started then finished OK -> completed.
    journal->RecordStarted(1, 0, 0);
    journal->RecordFinished(1, StatusCode::kOk, true, 1, 0, 42);
    // Job 2: started, never finished -> in-flight.
    journal->RecordStarted(2, 0, 0);
    // Job 3: cancelled -> in-flight (rerun on resume).
    journal->RecordStarted(3, 0, 0);
    journal->RecordFinished(3, StatusCode::kCancelled, false, 1, 0, 0);
    // Job 4: deterministic failure -> completed (not rerun).
    journal->RecordStarted(4, 0, 0);
    journal->RecordFinished(4, StatusCode::kInvalidArgument, false, 1, 0, 0);
    ASSERT_TRUE(journal->Flush().ok());
    ASSERT_TRUE(journal->first_error().ok());
  }
  Result<ResumePlan> plan = LoadResumePlan(path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->records, 7);
  EXPECT_FALSE(plan->torn);
  EXPECT_TRUE(plan->duplicate_finishes.empty());
  EXPECT_EQ(plan->completed,
            (std::unordered_set<std::uint64_t>{1, 4}));
  EXPECT_EQ(plan->in_flight,
            (std::unordered_set<std::uint64_t>{2, 3}));
}

TEST_F(JournalTest, ResumePlanFlagsDuplicateTerminalFinishes) {
  std::string path = Path("j");
  {
    Result<BatchJournal> journal = BatchJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    journal->RecordFinished(7, StatusCode::kOk, true, 1, 0, 10);
    journal->RecordFinished(7, StatusCode::kOk, true, 1, 0, 10);
    // Cancelled-then-terminal is the normal resume pattern, NOT a dup.
    journal->RecordFinished(8, StatusCode::kCancelled, false, 1, 0, 0);
    journal->RecordFinished(8, StatusCode::kOk, false, 1, 0, 3);
    ASSERT_TRUE(journal->Flush().ok());
  }
  Result<ResumePlan> plan = LoadResumePlan(path);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->duplicate_finishes,
            (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(plan->completed,
            (std::unordered_set<std::uint64_t>{7, 8}));
}

TEST_F(JournalTest, ResumePlanRejectsUndecodableRecords) {
  std::string path = Path("j");
  {
    Result<JournalWriter> writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("not a batch record").ok());
  }
  EXPECT_EQ(LoadResumePlan(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(JournalTest, BatchJournalLatchesFirstErrorAndDropsLaterWrites) {
  std::string path = Path("j");
  Result<BatchJournal> journal = BatchJournal::Open(path);
  ASSERT_TRUE(journal.ok());
  journal->RecordStarted(1, 0, 0);

  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  FailpointRegistry::Global().Enable("journal/append", config);
  journal->RecordFinished(1, StatusCode::kOk, true, 1, 0, 5);
  FailpointRegistry::Global().DisableAll();
  EXPECT_EQ(journal->first_error().code(), StatusCode::kInternal);

  // Later writes are no-ops; the journal still holds only the record
  // that landed before the error.
  journal->RecordStarted(2, 0, 0);
  EXPECT_EQ(journal->Flush().code(), StatusCode::kInternal);
  Result<JournalContents> contents = ReadJournal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->records.size(), 1u);
}

}  // namespace
}  // namespace treewalk
