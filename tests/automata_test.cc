#include <gtest/gtest.h>

#include "src/automata/builder.h"
#include "src/automata/interpreter.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

// --- Builder validation. ---------------------------------------------

TEST(ProgramBuilder, MinimalAcceptAll) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program_class(), ProgramClass::kTw);
  EXPECT_EQ(p->rules().size(), 1u);
  EXPECT_EQ(p->States(), (std::vector<std::string>{"q0", "qf"}));
}

TEST(ProgramBuilder, RequiresStates) {
  ProgramBuilder b(ProgramClass::kTw);
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, TwForbidsRegistersUpdatesLookahead) {
  {
    ProgramBuilder b(ProgramClass::kTw);
    b.SetStates("q0", "qf");
    b.DeclareRegister("X", 1);
    EXPECT_EQ(b.Build().status().code(), StatusCode::kFailedPrecondition);
  }
  {
    ProgramBuilder b(ProgramClass::kTw);
    b.SetStates("q0", "qf");
    b.OnUpdate("#top", "q0", "true", "qf", "X", "u = 1", {"u"});
    EXPECT_FALSE(b.Build().ok());
  }
  {
    ProgramBuilder b(ProgramClass::kTw);
    b.SetStates("q0", "qf");
    b.OnLookAhead("#top", "q0", "true", "qf", "X", "desc(x, y)", "q1");
    EXPECT_FALSE(b.Build().ok());
  }
  {
    // Non-trivial guard needs a store.
    ProgramBuilder b(ProgramClass::kTw);
    b.SetStates("q0", "qf");
    b.OnMove("#top", "q0", "true & true", "qf", Move::kStay);
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(ProgramBuilder, TwLRequiresUnaryRegisters) {
  ProgramBuilder b(ProgramClass::kTwL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 2);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProgramBuilder, TwLRejectsMultiValueInitialRegister) {
  ProgramBuilder b(ProgramClass::kTwL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.InitRegisterRelation("X", Relation(1, {{1}, {2}}));
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, TwRForbidsLookahead) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnLookAhead("#top", "q0", "true", "qf", "X", "desc(x, y)", "q1");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, NoTransitionFromFinalState) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "qf", "true", "q0", Move::kStay);
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, LookAheadTargetMustMatchFirstRegisterArity) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  b.DeclareRegister("P", 2);
  b.OnLookAhead("#top", "q0", "true", "qf", "P", "desc(x, y)", "q1");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, SelectorMustBeExistential) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  b.OnLookAhead("#top", "q0", "true", "qf", "X1",
                "forall z (desc(x, y) | z = z)", "q1");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, SelectorVariablesRestrictedToXY) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  b.OnLookAhead("#top", "q0", "true", "qf", "X1", "desc(x, w)", "q1");
  EXPECT_FALSE(b.Build().ok());
}

TEST(ProgramBuilder, UpdateArityAndVariablesChecked) {
  {
    ProgramBuilder b(ProgramClass::kTwR);
    b.SetStates("q0", "qf");
    b.DeclareRegister("X", 2);
    b.OnUpdate("#top", "q0", "true", "qf", "X", "u = 1", {"u"});
    EXPECT_FALSE(b.Build().ok());  // one var for arity 2
  }
  {
    ProgramBuilder b(ProgramClass::kTwR);
    b.SetStates("q0", "qf");
    b.DeclareRegister("X", 1);
    b.OnUpdate("#top", "q0", "true", "qf", "X", "u = 1 & w = 2", {"u"});
    EXPECT_FALSE(b.Build().ok());  // stray free variable w
  }
  {
    ProgramBuilder b(ProgramClass::kTwR);
    b.SetStates("q0", "qf");
    b.OnUpdate("#top", "q0", "true", "qf", "nope", "u = 1", {"u"});
    auto p = b.Build();
    EXPECT_FALSE(p.ok());
    EXPECT_NE(p.status().message().find("unknown register"),
              std::string::npos);
  }
}

TEST(ProgramBuilder, SyntacticDoubleRuleRejected) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "qf", Move::kStay);
  b.OnMove("#top", "q0", "true", "q0", Move::kDown);
  EXPECT_EQ(b.Build().status().code(), StatusCode::kNondeterminism);
}

TEST(ProgramBuilder, GuardParseErrorsAreReported) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnMove("#top", "q0", "X(", "qf", Move::kStay);
  auto p = b.Build();
  EXPECT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("rule #0"), std::string::npos);
}

TEST(Program, SizeMeasureCountsStatesStoreGuards) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.InitRegister("X", 3);
  b.OnMove("#top", "q0", "exists u X(u)", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  // states {q0, qf} = 2, initial store 1 tuple, guard size 2 (exists+atom).
  EXPECT_EQ(p->SizeMeasure(), 5u);
}

// --- Interpreter basics. ----------------------------------------------

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

TEST(Interpreter, ImmediateAccept) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto r = Accepts(*p, T("a(b)"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(Interpreter, StuckRejects) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#open", "q0", "true", "qf", Move::kStay);  // never at root
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto r = interp.Run(T("a"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  EXPECT_EQ(r->reason, RejectReason::kStuck);
}

TEST(Interpreter, CycleRejects) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "q1", Move::kDown);
  b.OnMove("#open", "q1", "true", "q0", Move::kUp);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto r = interp.Run(T("a"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  EXPECT_EQ(r->reason, RejectReason::kCycle);
}

TEST(Interpreter, MoveOffTreeRejects) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "qf", Move::kUp);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto r = interp.Run(T("a"));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  EXPECT_EQ(r->reason, RejectReason::kMoveOffTree);
}


TEST(Interpreter, CycleDetectionAblation) {
  // With detection off, the same looping program runs into the step
  // budget instead of rejecting with kCycle.
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "q1", Move::kDown);
  b.OnMove("#open", "q1", "true", "q0", Move::kUp);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  options.detect_cycles = false;
  options.max_steps = 200;
  Interpreter interp(*p, options);
  auto r = interp.Run(T("a"));
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Terminating runs are unaffected by the flag.
  ProgramBuilder ok(ProgramClass::kTw);
  ok.SetStates("q0", "qf");
  ok.OnMove("#top", "q0", "true", "qf", Move::kStay);
  auto p2 = ok.Build();
  ASSERT_TRUE(p2.ok());
  Interpreter interp2(*p2, options);
  auto r2 = interp2.Run(T("a"));
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->accepted);
}

TEST(Interpreter, RuntimeNondeterminismDetected) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.InitRegister("X", 1);
  // Two guards that both hold: X contains 1 / X is nonempty.
  b.OnMove("#top", "q0", "exists u (X(u) & u = 1)", "qf", Move::kStay);
  b.OnMove("#top", "q0", "exists u X(u)", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto r = Accepts(*p, T("a"));
  EXPECT_EQ(r.status().code(), StatusCode::kNondeterminism);
}

TEST(Interpreter, ComplementaryGuardsAreDeterministic) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnMove("#top", "q0", "exists u X(u)", "q0", Move::kDown);
  b.OnMove("#top", "q0", "!(exists u X(u))", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto r = Accepts(*p, T("a"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(Interpreter, StepBudgetIsEnforced) {
  // Ping-pong between two states at different nodes with a growing
  // counter is impossible without registers, so use a cycle... which is
  // caught; instead exhaust the budget with a legitimate long walk on a
  // long string and a tiny budget.
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "q0", Move::kDown);
  b.OnMove("#open", "q0", "true", "q0", Move::kRight);
  b.OnMove("*", "q0", "true", "q0", Move::kDown);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  options.max_steps = 3;
  Interpreter interp(*p, options);
  Tree chain = StringTree({1, 2, 3, 4, 5, 6, 7, 8});
  auto r = interp.Run(chain);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(Interpreter, UpdateWritesRegister) {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnUpdate("#top", "q0", "true", "q1", "X", "u = 7", {"u"});
  b.OnMove("#top", "q1", "exists u (X(u) & u = 7)", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  auto r = Accepts(*p, T("a"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

TEST(Interpreter, WildcardShadowedByExactRule) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  // Exact rule at #top cycles down; wildcard would accept.  At #top the
  // exact rule must win.
  b.OnMove("#top", "q0", "true", "q1", Move::kDown);
  b.OnMove("*", "q0", "true", "qf", Move::kStay);
  b.OnMove("#open", "q1", "true", "q2", Move::kRight);
  b.OnMove("*", "q2", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto r = interp.Run(T("a(b)"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  // 3 transitions: down, right, stay-accept.
  EXPECT_EQ(r->stats.steps, 3);
}

TEST(Interpreter, LookAheadUnionsSubcomputationResults) {
  // At #top: start a subcomputation at every leaf; each returns its 'a'
  // value; accept iff the union contains 3 distinct values.
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnLookAhead("#top", "q0", "true", "q1", "X",
                "exists z (desc(x, y) & E(y, z) & lab(z, #leaf))", "leaf");
  b.OnUpdate("*", "leaf", "true", "ret", "X", "u = attr(a)", {"u"});
  b.OnMove("*", "ret", "true", "qf", Move::kStay);
  b.OnMove("#top", "q1",
           "exists u exists v exists w (X(u) & X(v) & X(w) & u != v & "
           "u != w & v != w)",
           "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status();
  auto yes = Accepts(*p, T("r[a=0](x[a=1], x[a=2], x[a=3])"));
  ASSERT_TRUE(yes.ok()) << yes.status();
  EXPECT_TRUE(*yes);
  auto no = Accepts(*p, T("r[a=0](x[a=1], x[a=2], x[a=2])"));
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(*no);
}

TEST(Interpreter, SubcomputationRejectionPropagates) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  // Subcomputations at every node labeled 'bad' immediately get stuck
  // (no rule for state 'sub').
  b.OnLookAhead("#top", "q0", "true", "q1", "X", "desc(x, y) & lab(y, bad)",
                "sub");
  b.OnMove("#top", "q1", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto clean = interp.Run(T("a(b, c)"));
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->accepted);
  auto dirty = interp.Run(T("a(b, bad)"));
  ASSERT_TRUE(dirty.ok());
  EXPECT_FALSE(dirty->accepted);
  EXPECT_EQ(dirty->reason, RejectReason::kSubcomputationRejected);
}

TEST(Interpreter, TwLDisciplineEnforcedAtRuntime) {
  ProgramBuilder b(ProgramClass::kTwL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  // Selector picks every leaf: fine on a 1-leaf tree, a violation on 2+.
  b.OnLookAhead("#top", "q0", "true", "q1", "X",
                "exists z (desc(x, y) & E(y, z) & lab(z, #leaf))", "leaf");
  b.OnUpdate("*", "leaf", "true", "ret", "X", "u = attr(a)", {"u"});
  b.OnMove("*", "ret", "true", "qf", Move::kStay);
  b.OnMove("#top", "q1", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status();
  auto single = Accepts(*p, T("a[a=1]"));
  ASSERT_TRUE(single.ok()) << single.status();
  EXPECT_TRUE(*single);
  auto multi = Accepts(*p, T("a[a=1](b[a=2], c[a=3])"));
  EXPECT_EQ(multi.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Interpreter, TraceRecordsTransitions) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "q1", Move::kDown);
  b.OnMove("#open", "q1", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  RunOptions options;
  options.record_trace = true;
  Interpreter interp(*p, options);
  auto r = interp.Run(T("a"));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->trace.size(), 2u);
  EXPECT_NE(r->trace[0].find("#top"), std::string::npos);
  EXPECT_NE(r->trace[0].find("move down"), std::string::npos);
}

TEST(Interpreter, EmptyTreeIsAnError) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("q0", "qf");
  b.OnMove("#top", "q0", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  EXPECT_FALSE(interp.Run(Tree()).ok());
}

TEST(Interpreter, StatsAreTracked) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnLookAhead("#top", "q0", "true", "q1", "X", "desc(x, y) & leaf(y)",
                "sub");
  b.OnUpdate("*", "sub", "true", "ret", "X", "u = 1", {"u"});
  b.OnMove("*", "ret", "true", "qf", Move::kStay);
  b.OnMove("#top", "q1", "true", "qf", Move::kStay);
  auto p = b.Build();
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  auto r = interp.Run(T("a(b)"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  EXPECT_EQ(r->stats.subcomputations, 1);
  EXPECT_GE(r->stats.steps, 3);
  EXPECT_EQ(r->stats.max_depth_reached, 1);
  EXPECT_GE(r->stats.max_store_tuples, 1u);
}

}  // namespace
}  // namespace treewalk
