#include <gtest/gtest.h>

#include "src/logic/formula.h"
#include "src/logic/parser.h"

namespace treewalk {
namespace {

TEST(Formula, FactoriesBuildExpectedKinds) {
  Formula f = Formula::And(Formula::True(), Formula::Not(Formula::False()));
  EXPECT_EQ(f.node().kind, FormulaKind::kAnd);
  EXPECT_EQ(f.node().children[0].node().kind, FormulaKind::kTrue);
  EXPECT_EQ(f.node().children[1].node().kind, FormulaKind::kNot);
}

TEST(Formula, ToStringRendersConnectives) {
  Formula f = Formula::Implies(Formula::Root("x"), Formula::Leaf("x"));
  EXPECT_EQ(f.ToString(), "(root(x) -> leaf(x))");
  Formula g = Formula::Exists("y", Formula::Edge("x", "y"));
  EXPECT_EQ(g.ToString(), "exists y E(x, y)");
}

TEST(Formula, FreeVariablesRespectBinding) {
  Formula f = Formula::Exists(
      "y", Formula::And(Formula::Edge("x", "y"), Formula::Leaf("z")));
  EXPECT_EQ(f.FreeVariables(), (std::set<std::string>{"x", "z"}));
}

TEST(Formula, FreeVariablesSeeThroughValTerms) {
  Formula f = Formula::Eq(Term::AttrOf("a", "x"), Term::Int(3));
  EXPECT_EQ(f.FreeVariables(), (std::set<std::string>{"x"}));
}

TEST(Formula, ShadowedVariableStaysBoundInside) {
  // exists x (E(x,y) & exists x leaf(x)) -- free: y only.
  Formula f = Formula::Exists(
      "x", Formula::And(Formula::Edge("x", "y"),
                        Formula::Exists("x", Formula::Leaf("x"))));
  EXPECT_EQ(f.FreeVariables(), (std::set<std::string>{"y"}));
}

TEST(Formula, IsExistentialPrenex) {
  EXPECT_TRUE(Formula::True().IsExistentialPrenex());
  Formula ex = Formula::Exists(
      "y", Formula::Exists("z", Formula::And(Formula::Edge("x", "y"),
                                             Formula::Edge("y", "z"))));
  EXPECT_TRUE(ex.IsExistentialPrenex());
  // Negation of a quantifier-free body is fine.
  EXPECT_TRUE(
      Formula::Exists("y", Formula::Not(Formula::Leaf("y")))
          .IsExistentialPrenex());
  // A universal anywhere breaks it.
  EXPECT_FALSE(
      Formula::Forall("y", Formula::Leaf("y")).IsExistentialPrenex());
  // A nested exists (not prenex) breaks it.
  EXPECT_FALSE(Formula::Not(Formula::Exists("y", Formula::Leaf("y")))
                   .IsExistentialPrenex());
  EXPECT_FALSE(
      Formula::Exists("y", Formula::And(Formula::Leaf("y"),
                                        Formula::Exists("z",
                                                        Formula::Leaf("z"))))
          .IsExistentialPrenex());
}

TEST(Formula, SizeCountsNodes) {
  Formula f = Formula::And(Formula::True(), Formula::False());
  EXPECT_EQ(f.Size(), 3u);
  EXPECT_EQ(Formula::Exists("x", f).Size(), 4u);
}

TEST(ValidateTreeFormula, AcceptsVocabulary) {
  Formula f = Formula::AndAll({
      Formula::Edge("x", "y"),
      Formula::Sibling("x", "y"),
      Formula::Descendant("x", "y"),
      Formula::Label("x", "a"),
      Formula::Root("x"),
      Formula::Leaf("x"),
      Formula::First("x"),
      Formula::Last("x"),
      Formula::Succ("x", "y"),
      Formula::VarEq("x", "y"),
      Formula::Eq(Term::AttrOf("a", "x"), Term::AttrOf("b", "y")),
      Formula::Eq(Term::AttrOf("a", "x"), Term::Int(5)),
      Formula::Eq(Term::AttrOf("a", "x"), Term::Str("d")),
  });
  EXPECT_TRUE(ValidateTreeFormula(f).ok());
}

TEST(ValidateTreeFormula, RejectsStoreAtoms) {
  Formula f = Formula::Relation("X", {Term::Var("x")});
  EXPECT_EQ(ValidateTreeFormula(f).code(), StatusCode::kInvalidArgument);
  Formula g = Formula::Eq(Term::CurrentAttr("a"), Term::Int(1));
  EXPECT_EQ(ValidateTreeFormula(g).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTreeFormula, RejectsSortMixing) {
  // Node variable compared with a data value.
  Formula f = Formula::Eq(Term::Var("x"), Term::Int(3));
  EXPECT_FALSE(ValidateTreeFormula(f).ok());
  Formula g = Formula::Eq(Term::AttrOf("a", "x"), Term::Var("y"));
  EXPECT_FALSE(ValidateTreeFormula(g).ok());
}

TEST(ValidateStoreFormula, ChecksArity) {
  auto arity = [](const std::string& name) -> int {
    if (name == "X") return 2;
    if (name == "Y") return 1;
    return -1;
  };
  Formula good = Formula::And(
      Formula::Relation("X", {Term::Var("u"), Term::Var("v")}),
      Formula::Relation("Y", {Term::CurrentAttr("a")}));
  EXPECT_TRUE(ValidateStoreFormula(good, arity).ok());

  Formula bad_arity = Formula::Relation("X", {Term::Var("u")});
  EXPECT_FALSE(ValidateStoreFormula(bad_arity, arity).ok());

  Formula unknown = Formula::Relation("Z", {Term::Var("u")});
  EXPECT_EQ(ValidateStoreFormula(unknown, arity).code(),
            StatusCode::kNotFound);
}

TEST(ValidateStoreFormula, RejectsTreeAtoms) {
  auto arity = [](const std::string&) { return -1; };
  EXPECT_FALSE(ValidateStoreFormula(Formula::Edge("x", "y"), arity).ok());
  EXPECT_FALSE(ValidateStoreFormula(Formula::Leaf("x"), arity).ok());
  EXPECT_FALSE(ValidateStoreFormula(
                   Formula::Eq(Term::AttrOf("a", "x"), Term::Int(1)), arity)
                   .ok());
}

TEST(ValidateStoreFormula, AcceptsQuantifiedStoreLogic) {
  auto arity = [](const std::string& name) { return name == "X1" ? 1 : -1; };
  // forall x forall y (X1(x) & X1(y) -> x = y) -- the xi of Example 3.2.
  Formula f = Formula::Forall(
      "x", Formula::Forall(
               "y", Formula::Implies(
                        Formula::And(
                            Formula::Relation("X1", {Term::Var("x")}),
                            Formula::Relation("X1", {Term::Var("y")})),
                        Formula::VarEq("x", "y"))));
  EXPECT_TRUE(ValidateStoreFormula(f, arity).ok());
}

TEST(Formula, AndAllOrAllEmpty) {
  EXPECT_EQ(Formula::AndAll({}).node().kind, FormulaKind::kTrue);
  EXPECT_EQ(Formula::OrAll({}).node().kind, FormulaKind::kFalse);
}

TEST(Formula, RoundTripThroughParser) {
  const char* sources[] = {
      "exists y (desc(x, y) & leaf(y))",
      "forall x (val(a, x) = 5 | val(a, x) = val(b, x))",
      "(root(x) -> (leaf(x) <-> first(x)))",
      "!(sib(x, y)) & succ(x, y)",
      "X1(u, v) & u = attr(a)",
  };
  for (const char* source : sources) {
    auto f = ParseFormula(source);
    ASSERT_TRUE(f.ok()) << source << ": " << f.status();
    auto round = ParseFormula(f->ToString());
    ASSERT_TRUE(round.ok()) << f->ToString();
    EXPECT_EQ(round->ToString(), f->ToString()) << source;
  }
}

}  // namespace
}  // namespace treewalk
