#include <gtest/gtest.h>

#include <random>

#include "src/logic/tree_eval.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/xpath/xpath.h"

namespace treewalk {
namespace {

Tree Catalog() {
  // doc(part[id=1, kind="bolt"](sub[id=2]), part[id=3, kind="nut"],
  //     misc(part[id=4, kind="bolt"](sub[id=5](sub[id=6]))))
  auto t = ParseTerm(
      "doc(part[id=1, kind=\"bolt\"](sub[id=2]), part[id=3, kind=\"nut\"], "
      "misc(part[id=4, kind=\"bolt\"](sub[id=5](sub[id=6]))))");
  EXPECT_TRUE(t.ok()) << t.status();
  return *t;
}

XPath P(const char* src) {
  auto r = ParseXPath(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return r.ok() ? *r : XPath{};
}

std::vector<NodeId> Eval(const Tree& t, const char* src, NodeId ctx) {
  auto r = EvalXPath(t, P(src), ctx);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return r.ok() ? *r : std::vector<NodeId>{};
}

TEST(ParseXPath, Shapes) {
  EXPECT_TRUE(ParseXPath("a").ok());
  EXPECT_TRUE(ParseXPath("/a/b").ok());
  EXPECT_TRUE(ParseXPath("//a").ok());
  EXPECT_TRUE(ParseXPath("a//b/c").ok());
  EXPECT_TRUE(ParseXPath("a | b | c").ok());
  EXPECT_TRUE(ParseXPath("*[a][@x = 3]").ok());
  EXPECT_TRUE(ParseXPath("a[b/c][@k = \"v\"]").ok());
  EXPECT_TRUE(ParseXPath("a[@p = @q]").ok());
}

TEST(ParseXPath, Errors) {
  EXPECT_FALSE(ParseXPath("").ok());
  EXPECT_FALSE(ParseXPath("/").ok());
  EXPECT_FALSE(ParseXPath("a/").ok());
  EXPECT_FALSE(ParseXPath("a[").ok());
  EXPECT_FALSE(ParseXPath("a[]").ok());
  EXPECT_FALSE(ParseXPath("a[@x]").ok());
  EXPECT_FALSE(ParseXPath("a[@x = ]").ok());
  EXPECT_FALSE(ParseXPath("a b").ok());
  EXPECT_FALSE(ParseXPath("a[@x = 'unclosed]").ok());
}

TEST(XPathToString, RoundTrips) {
  const char* sources[] = {
      "a",          "/a/b",      "//a",          "a//b/c",
      "a | b",      "*[a]",      "a[@x = 3]",    "a[@k = \"v\"]",
      "a[@p = @q]", "a[b//c][d]", "//*[@id = 0]",
  };
  for (const char* src : sources) {
    XPath p = P(src);
    std::string printed = XPathToString(p);
    auto again = ParseXPath(printed);
    ASSERT_TRUE(again.ok()) << printed;
    EXPECT_EQ(XPathToString(*again), printed) << src;
  }
}

TEST(EvalXPath, ChildStep) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "part", 0), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(Eval(t, "part/sub", 0), (std::vector<NodeId>{2}));
  EXPECT_EQ(Eval(t, "misc/part", 0), (std::vector<NodeId>{5}));
  EXPECT_TRUE(Eval(t, "nothing", 0).empty());
}

TEST(EvalXPath, DescendantStep) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "//part", 0), (std::vector<NodeId>{1, 3, 5}));
  EXPECT_EQ(Eval(t, "//sub", 0), (std::vector<NodeId>{2, 6, 7}));
  EXPECT_EQ(Eval(t, "misc//sub", 0), (std::vector<NodeId>{6, 7}));
  // Context-relative descendant.
  EXPECT_EQ(Eval(t, "part//sub", 4), (std::vector<NodeId>{6, 7}));
}

TEST(EvalXPath, AbsolutePathIgnoresContext) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "/doc", 5), (std::vector<NodeId>{0}));
  EXPECT_TRUE(Eval(t, "/part", 5).empty());
  EXPECT_EQ(Eval(t, "/doc/part", 6), (std::vector<NodeId>{1, 3}));
}

TEST(EvalXPath, Wildcard) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "*", 4), (std::vector<NodeId>{5}));
  // A leading '//' is absolute (as in XPath): all nodes including the
  // root, regardless of context.
  EXPECT_EQ(Eval(t, "//*", 0).size(), t.size());
  EXPECT_EQ(Eval(t, "//*", 4).size(), t.size());
  // Relative descendant selection goes through a named first step.
  EXPECT_EQ(Eval(t, "misc//*", 0), (std::vector<NodeId>{5, 6, 7}));
}

TEST(EvalXPath, PathPredicates) {
  Tree t = Catalog();
  // parts that have a sub child
  EXPECT_EQ(Eval(t, "//part[sub]", 0), (std::vector<NodeId>{1, 5}));
  // parts that have a sub grandchild via nested descendant
  EXPECT_EQ(Eval(t, "//part[sub/sub]", 0), (std::vector<NodeId>{5}));
  // union inside a predicate
  EXPECT_EQ(Eval(t, "//part[sub | nothing]", 0), (std::vector<NodeId>{1, 5}));
}

TEST(EvalXPath, AttributePredicates) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "//part[@kind = \"bolt\"]", 0),
            (std::vector<NodeId>{1, 5}));
  EXPECT_EQ(Eval(t, "//part[@id = 3]", 0), (std::vector<NodeId>{3}));
  EXPECT_TRUE(Eval(t, "//part[@id = 99]", 0).empty());
  // @id = @id trivially holds.
  EXPECT_EQ(Eval(t, "//sub[@id = @id]", 0), (std::vector<NodeId>{2, 6, 7}));
}

TEST(EvalXPath, UnionMergesAndDeduplicates) {
  Tree t = Catalog();
  EXPECT_EQ(Eval(t, "part | misc/part | part", 0),
            (std::vector<NodeId>{1, 3, 5}));
}

TEST(EvalXPath, MissingAttributeIsError) {
  Tree t = Catalog();
  EXPECT_FALSE(EvalXPath(t, P("//part[@nope = 1]"), 0).ok());
  EXPECT_FALSE(EvalXPath(t, P("//part[@id = @nope]"), 0).ok());
}

TEST(EvalXPath, InvalidContext) {
  Tree t = Catalog();
  EXPECT_FALSE(EvalXPath(t, P("a"), 999).ok());
}

TEST(CompileXPathToFo, PaperExampleShape) {
  // Section 2.3 compiles an XPath expression into an existential-prenex
  // binary formula over {x, y}.
  auto f = CompileXPathToFo(P("a/b[b//c][d]"));
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_TRUE(f->IsExistentialPrenex());
  for (const std::string& v : f->FreeVariables()) {
    EXPECT_TRUE(v == "x" || v == "y") << v;
  }
  EXPECT_TRUE(ValidateTreeFormula(*f).ok());
}

TEST(CompileXPathToFo, EmptyInputsRejected) {
  EXPECT_FALSE(CompileXPathToFo(XPath{}).ok());
  XPath with_empty_path;
  with_empty_path.paths.push_back(XPathPath{});
  EXPECT_FALSE(CompileXPathToFo(with_empty_path).ok());
}

/// The central Section 2.3 property: the direct evaluator and the
/// FO(exists*) compilation agree on every query and context.
TEST(CompileXPathToFo, AgreesWithDirectEvaluatorOnCatalog) {
  Tree t = Catalog();
  const char* queries[] = {
      "part",
      "part/sub",
      "//part",
      "//sub",
      "misc//sub",
      "/doc/part",
      "//part[sub]",
      "//part[@kind = \"bolt\"]",
      "//part[@id = 3]",
      "part | misc/part",
      "*",
      "//*",
      "//part[sub/sub]",
      "//part[sub][@kind = \"bolt\"]",
      "/" "/*[@id = @id]",
  };
  for (const char* q : queries) {
    XPath p = P(q);
    auto compiled = CompileXPathToFo(p);
    ASSERT_TRUE(compiled.ok()) << q << ": " << compiled.status();
    for (NodeId ctx = 0; ctx < static_cast<NodeId>(t.size()); ++ctx) {
      auto direct = EvalXPath(t, p, ctx);
      auto via_fo = SelectNodes(t, *compiled, ctx);
      ASSERT_TRUE(direct.ok()) << q;
      ASSERT_TRUE(via_fo.ok()) << q << ": " << via_fo.status();
      EXPECT_EQ(*direct, *via_fo) << q << " at context " << ctx;
    }
  }
}

TEST(CompileXPathToFo, AgreesOnRandomTrees) {
  std::mt19937 rng(31);
  RandomTreeOptions options;
  options.num_nodes = 15;
  options.labels = {"a", "b", "c"};
  options.attributes = {"p"};
  options.value_range = 3;
  const char* queries[] = {"//a", "a/b", "//a[b]", "//b[@p = 1]",
                           "a | b/c", "//a[b | c]"};
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = RandomTree(rng, options);
    for (const char* q : queries) {
      XPath p = P(q);
      auto compiled = CompileXPathToFo(p);
      ASSERT_TRUE(compiled.ok());
      auto direct = EvalXPath(t, p, t.root());
      auto via_fo = SelectNodes(t, *compiled, t.root());
      ASSERT_TRUE(direct.ok() && via_fo.ok()) << q;
      EXPECT_EQ(*direct, *via_fo) << q << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace treewalk
