#include <gtest/gtest.h>

#include <random>

#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Tree Sample() {
  // a[p=1](b[p=2], c[p=1](d[p=2], e[p=1]), f[p=3])  ids 0..5
  auto t = ParseTerm("a[p=1](b[p=2], c[p=1](d[p=2], e[p=1]), f[p=3])");
  EXPECT_TRUE(t.ok());
  return *t;
}

Formula F(const char* src) {
  auto r = ParseFormula(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return *r;
}

bool Holds(const Tree& t, const char* src, NodeEnv env = {}) {
  auto r = EvalTreeFormula(t, F(src), env);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return r.ok() && *r;
}

TEST(EvalTreeFormula, Atoms) {
  Tree t = Sample();
  EXPECT_TRUE(Holds(t, "E(x, y)", {{"x", 0}, {"y", 1}}));
  EXPECT_FALSE(Holds(t, "E(x, y)", {{"x", 0}, {"y", 3}}));
  EXPECT_TRUE(Holds(t, "desc(x, y)", {{"x", 0}, {"y", 3}}));
  EXPECT_FALSE(Holds(t, "desc(x, y)", {{"x", 3}, {"y", 0}}));
  EXPECT_FALSE(Holds(t, "desc(x, x)", {{"x", 3}}));
  EXPECT_TRUE(Holds(t, "sib(x, y)", {{"x", 1}, {"y", 5}}));
  EXPECT_FALSE(Holds(t, "sib(x, y)", {{"x", 5}, {"y", 1}}));
  EXPECT_FALSE(Holds(t, "sib(x, y)", {{"x", 1}, {"y", 3}}));
  EXPECT_TRUE(Holds(t, "succ(x, y)", {{"x", 1}, {"y", 2}}));
  EXPECT_FALSE(Holds(t, "succ(x, y)", {{"x", 1}, {"y", 5}}));
  EXPECT_TRUE(Holds(t, "root(x)", {{"x", 0}}));
  EXPECT_TRUE(Holds(t, "leaf(x)", {{"x", 4}}));
  EXPECT_FALSE(Holds(t, "leaf(x)", {{"x", 2}}));
  EXPECT_TRUE(Holds(t, "first(x)", {{"x", 1}}));
  EXPECT_TRUE(Holds(t, "last(x)", {{"x", 5}}));
  EXPECT_TRUE(Holds(t, "lab(x, c)", {{"x", 2}}));
  EXPECT_FALSE(Holds(t, "lab(x, zz)", {{"x", 2}}));
  EXPECT_TRUE(Holds(t, "x = y", {{"x", 2}, {"y", 2}}));
  EXPECT_FALSE(Holds(t, "x = y", {{"x", 2}, {"y", 3}}));
}

TEST(EvalTreeFormula, RootIsNobodysSiblingOrFirstLast) {
  Tree t = Sample();
  // The root is trivially a first and last child in our encoding.
  EXPECT_TRUE(Holds(t, "first(x) & last(x)", {{"x", 0}}));
  EXPECT_FALSE(Holds(t, "exists y sib(y, x)", {{"x", 0}}));
}

TEST(EvalTreeFormula, AttributeComparisons) {
  Tree t = Sample();
  EXPECT_TRUE(Holds(t, "val(p, x) = val(p, y)", {{"x", 0}, {"y", 2}}));
  EXPECT_FALSE(Holds(t, "val(p, x) = val(p, y)", {{"x", 0}, {"y", 1}}));
  EXPECT_TRUE(Holds(t, "val(p, x) = 3", {{"x", 5}}));
  EXPECT_FALSE(Holds(t, "val(p, x) = 4", {{"x", 5}}));
}

TEST(EvalTreeFormula, StringConstants) {
  auto t = ParseTerm("a[name=\"x\"](b[name=\"y\"])");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(Holds(*t, "val(name, x) = \"x\"", {{"x", 0}}));
  EXPECT_FALSE(Holds(*t, "val(name, x) = \"y\"", {{"x", 0}}));
  EXPECT_FALSE(Holds(*t, "val(name, x) = \"unseen\"", {{"x", 0}}));
}

TEST(EvalTreeFormula, Quantifiers) {
  Tree t = Sample();
  EXPECT_TRUE(Holds(t, "exists x lab(x, e)"));
  EXPECT_FALSE(Holds(t, "exists x lab(x, zz)"));
  EXPECT_TRUE(Holds(t, "forall x (leaf(x) | exists y E(x, y))"));
  EXPECT_TRUE(Holds(t, "exists x forall y (x = y | desc(x, y))"));
  EXPECT_FALSE(Holds(t, "forall x leaf(x)"));
}

TEST(EvalTreeFormula, PaperSentenceSection22) {
  // forall x (val(a,x) = d | val(a,x) = val(b,x)) with d = 7.
  auto t = ParseTerm("s[a=7, b=0](s[a=3, b=3](s[a=7, b=9]))");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(Holds(*t, "forall x (val(a, x) = 7 | val(a, x) = val(b, x))"));
  auto bad = ParseTerm("s[a=7, b=0](s[a=3, b=4])");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(
      Holds(*bad, "forall x (val(a, x) = 7 | val(a, x) = val(b, x))"));
}

TEST(EvalTreeFormula, ErrorsAreReported) {
  Tree t = Sample();
  // Unbound free variable.
  EXPECT_FALSE(EvalTreeFormula(t, F("leaf(x)")).ok());
  // Unknown attribute.
  EXPECT_FALSE(EvalTreeFormula(t, F("val(q, x) = 1"), {{"x", 0}}).ok());
  // Store atom in tree context.
  EXPECT_FALSE(EvalTreeFormula(t, F("X1(u)"), {}).ok());
  // Empty formula handle.
  EXPECT_FALSE(EvalTreeFormula(t, Formula()).ok());
}

TEST(EvalTreeSentence, RejectsFreeVariables) {
  Tree t = Sample();
  EXPECT_FALSE(EvalTreeSentence(t, F("leaf(x)")).ok());
  EXPECT_TRUE(EvalTreeSentence(t, F("exists x leaf(x)")).ok());
}

TEST(SelectNodes, DescendantLeaves) {
  Tree t = Sample();
  auto r = SelectNodes(t, F("desc(x, y) & leaf(y)"), 2);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, (std::vector<NodeId>{3, 4}));
}

TEST(SelectNodes, FromRootSelectsAllLeaves) {
  Tree t = Sample();
  auto r = SelectNodes(t, F("desc(x, y) & leaf(y)"), 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{1, 3, 4, 5}));
}

TEST(SelectNodes, SelectorMayIgnoreOrigin) {
  Tree t = Sample();
  auto r = SelectNodes(t, F("root(y)"), 4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{0}));
}

TEST(SelectNodes, WithInnerExistentials) {
  // Section 2.3 example shape: y below x with a c-descendant and d-child.
  auto t = ParseTerm("a(b(c, d), b(d))");
  ASSERT_TRUE(t.ok());
  auto r = SelectNodes(
      *t, F("desc(x, y) & lab(y, b) & exists z (desc(y, z) & lab(z, c))"),
      0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{1}));
}


TEST(SelectNodes, RangePruningIsSemanticallyInvisible) {
  // The planner prunes candidates when desc(x,y)/E(x,y) is a positive
  // top-level conjunct; wrapping the same formula in a disjunction with
  // false disables the plan, so both runs must agree.
  std::mt19937 rng(47);
  RandomTreeOptions options;
  options.num_nodes = 18;
  options.labels = {"a", "b"};
  options.attributes = {"p"};
  options.value_range = 3;
  const char* selectors[] = {
      "desc(x, y) & lab(y, b)",
      "desc(x, y) & leaf(y)",
      "E(x, y) & val(p, y) = 1",
      "exists z (desc(x, y) & E(y, z) & lab(z, a))",
      "desc(x, y) & !(E(x, y))",
  };
  for (int trial = 0; trial < 8; ++trial) {
    Tree t = RandomTree(rng, options);
    for (const char* src : selectors) {
      Formula planned = F(src);
      Formula unplanned = Formula::Or(planned, Formula::False());
      for (NodeId origin = 0; origin < static_cast<NodeId>(t.size());
           origin += 3) {
        auto a = SelectNodes(t, planned, origin);
        auto b = SelectNodes(t, unplanned, origin);
        ASSERT_TRUE(a.ok() && b.ok()) << src;
        EXPECT_EQ(*a, *b) << src << " at " << origin;
      }
    }
  }
}

TEST(SelectNodes, ShadowedVariablesDisableThePlan) {
  // "exists x (desc(x, y) ...)": the inner x is not the origin, so the
  // desc conjunct must NOT prune — y can be anywhere.
  Tree t = Sample();
  auto r = SelectNodes(t, F("exists x (desc(x, y) & leaf(y))"), 5);
  ASSERT_TRUE(r.ok());
  // From origin 5 (a leaf), nodes 1, 3, 4, 5... every leaf that is a
  // strict descendant of *some* x: all leaves except the root.
  EXPECT_EQ(*r, (std::vector<NodeId>{1, 3, 4, 5}));
}

TEST(SelectNodes, ErrorsOnStrayVariables) {
  Tree t = Sample();
  EXPECT_FALSE(SelectNodes(t, F("E(x, z)"), 0).ok());
  EXPECT_FALSE(SelectNodes(t, F("leaf(y)"), 99).ok());
}

TEST(SelectNodes, CustomVariableNames) {
  Tree t = Sample();
  auto r = SelectNodes(t, F("E(u, v)"), 2, "u", "v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<NodeId>{3, 4}));
}

}  // namespace
}  // namespace treewalk
