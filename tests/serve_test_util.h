#ifndef TREEWALK_TESTS_SERVE_TEST_UTIL_H_
#define TREEWALK_TESTS_SERVE_TEST_UTIL_H_

// Loopback client helpers shared by serve_test.cc and
// serve_chaos_test.cc: a minimal blocking wire client for the
// `twq serve` protocol (src/server/frame.h), enough to drive an
// in-process QueryServer through real sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "src/server/frame.h"

namespace treewalk {
namespace serve_test {

/// Blocking loopback connect; -1 on failure.
inline int Connect(int port, const char* host = "127.0.0.1") {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host, &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    close(fd);
    return -1;
  }
  return fd;
}

inline bool WriteAll(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

inline bool ReadAll(int fd, void* buf, std::size_t len) {
  std::size_t done = 0;
  auto* out = static_cast<unsigned char*>(buf);
  while (done < len) {
    ssize_t n = recv(fd, out + done, len - done, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one complete frame.  False on transport error or a frame the
/// decoder rejects (a server must never send one).
inline bool ReadFrame(int fd, MessageType& type, std::string& body) {
  unsigned char prefix[4];
  if (!ReadAll(fd, prefix, sizeof(prefix))) return false;
  Result<std::uint32_t> len = DecodeFrameLength(prefix);
  if (!len.ok()) return false;
  std::string payload(*len, '\0');
  if (!ReadAll(fd, payload.data(), payload.size())) return false;
  Result<Frame> frame = DecodeFramePayload(payload);
  if (!frame.ok()) return false;
  type = frame->type;
  body.assign(frame->body);
  return true;
}

/// One request/response exchange over an established connection.
inline bool Exchange(int fd, const std::string& request, MessageType& type,
                     std::string& body) {
  if (!WriteAll(fd, request)) return false;
  return ReadFrame(fd, type, body);
}

/// Frames a query request.
inline std::string QueryFrame(const std::string& tree,
                              const std::string& program,
                              std::uint32_t deadline_ms = 0) {
  QueryRequest q;
  q.tree_name = tree;
  q.program_text = program;
  q.deadline_ms = deadline_ms;
  return EncodeFrame(MessageType::kQuery, EncodeQueryRequest(q));
}

/// Accepts every tree in one step.
inline constexpr const char* kAcceptAllProgram =
    "class tw\nstates q0 qf\nrule #top q0 [true] move stay qf\n";

/// Full DFS for a label that is absent from the test corpus: visits the
/// whole delimited tree before rejecting — the "slow query" used to
/// hold workers busy across a drain.
inline constexpr const char* kScanProgram = R"twp(
class tw
states fwd qf
rule needle fwd [true] move stay qf
rule #top fwd [true] move down fwd
rule #open fwd [true] move right fwd
rule * fwd [true] move down fwd
rule #leaf fwd [true] move up back
rule #close fwd [true] move up back
rule * back [true] move right fwd
)twp";

}  // namespace serve_test
}  // namespace treewalk

#endif  // TREEWALK_TESTS_SERVE_TEST_UTIL_H_
