// Manifest loading: stable content-derived job ids, duplicate-pair
// rejection with both line numbers, and malformed-line diagnostics
// (src/engine/manifest.h).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/engine/manifest.h"

namespace treewalk {
namespace {

/// Reader over an in-memory path -> contents map.
ManifestFileReader MapReader(std::map<std::string, std::string> files) {
  return [files = std::move(files)](const std::string& path,
                                    std::string& out) {
    auto it = files.find(path);
    if (it == files.end()) return false;
    out = it->second;
    return true;
  };
}

TEST(ManifestTest, ParsesPairsSkippingBlanksAndComments) {
  Result<Manifest> manifest = ParseManifest(
      "# batch of two\n"
      "\n"
      "p1.twp t1.xml\n"
      "   \n"
      "p2.twp t2.xml\n",
      MapReader({{"p1.twp", "prog1"},
                 {"t1.xml", "tree1"},
                 {"p2.twp", "prog2"},
                 {"t2.xml", "tree2"}}));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[0].program_path, "p1.twp");
  EXPECT_EQ(manifest->entries[0].tree_path, "t1.xml");
  EXPECT_EQ(manifest->entries[0].line_number, 3);
  EXPECT_EQ(manifest->entries[1].line_number, 5);

  // The grammar is whitespace-split fields, so an inline comment after
  // a pair is a third field — rejected, not silently ignored.
  EXPECT_FALSE(
      ParseManifest("p1.twp t1.xml # inline comment\n",
                    MapReader({{"p1.twp", "x"}, {"t1.xml", "y"}}))
          .ok());
}

TEST(ManifestTest, AssignsStableNonZeroJobIds) {
  ManifestFileReader reader = MapReader({{"p.twp", "program bytes"},
                                         {"q.twp", "other program"},
                                         {"t.xml", "tree bytes"}});
  Result<Manifest> first = ParseManifest("p.twp t.xml\nq.twp t.xml\n", reader);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->entries.size(), 2u);
  EXPECT_NE(first->entries[0].job_id, 0u);
  EXPECT_NE(first->entries[1].job_id, 0u);
  EXPECT_NE(first->entries[0].job_id, first->entries[1].job_id);
  EXPECT_EQ(first->entries[0].line_number, 1);
  EXPECT_EQ(first->entries[1].line_number, 2);

  // Same inputs -> same ids, independent of manifest order.
  Result<Manifest> second =
      ParseManifest("q.twp t.xml\np.twp t.xml\n", reader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->entries[1].job_id, first->entries[0].job_id);
  EXPECT_EQ(second->entries[0].job_id, first->entries[1].job_id);
}

TEST(ManifestTest, JobIdDependsOnFileContent) {
  std::uint64_t before =
      ParseManifest("p.twp t.xml\n",
                    MapReader({{"p.twp", "v1"}, {"t.xml", "tree"}}))
          ->entries[0]
          .job_id;
  std::uint64_t after =
      ParseManifest("p.twp t.xml\n",
                    MapReader({{"p.twp", "v2"}, {"t.xml", "tree"}}))
          ->entries[0]
          .job_id;
  EXPECT_NE(before, after);

  std::uint64_t tree_changed =
      ParseManifest("p.twp t.xml\n",
                    MapReader({{"p.twp", "v1"}, {"t.xml", "other tree"}}))
          ->entries[0]
          .job_id;
  EXPECT_NE(before, tree_changed);
}

TEST(ManifestTest, JobIdDependsOnPathsNotJustContent) {
  ManifestFileReader reader =
      MapReader({{"a.twp", "same"}, {"b.twp", "same"}, {"t.xml", "tree"}});
  Result<Manifest> manifest = ParseManifest("a.twp t.xml\nb.twp t.xml\n",
                                            reader);
  ASSERT_TRUE(manifest.ok());
  EXPECT_NE(manifest->entries[0].job_id, manifest->entries[1].job_id);
}

TEST(ManifestTest, UnreadableFilesStillGetStableIds) {
  ManifestFileReader reader = MapReader({{"t.xml", "tree"}});
  Result<Manifest> first = ParseManifest("missing.twp t.xml\n", reader);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_EQ(first->entries.size(), 1u);
  EXPECT_NE(first->entries[0].job_id, 0u);
  Result<Manifest> second = ParseManifest("missing.twp t.xml\n", reader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->entries[0].job_id, first->entries[0].job_id);
}

TEST(ManifestTest, RejectsDuplicatePairsNamingBothLines) {
  ManifestFileReader reader =
      MapReader({{"p.twp", "prog"}, {"t.xml", "tree"}, {"u.xml", "tree2"}});
  Result<Manifest> manifest = ParseManifest(
      "p.twp t.xml\n"
      "p.twp u.xml\n"
      "p.twp t.xml\n",
      reader);
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kInvalidArgument);
  // The diagnostic names both offending lines.
  EXPECT_NE(manifest.status().message().find("1"), std::string::npos)
      << manifest.status();
  EXPECT_NE(manifest.status().message().find("3"), std::string::npos)
      << manifest.status();
  EXPECT_NE(manifest.status().message().find("duplicate"), std::string::npos)
      << manifest.status();
}

TEST(ManifestTest, RejectsMalformedLinesWithLineNumber) {
  ManifestFileReader reader = MapReader({});
  Result<Manifest> one_field = ParseManifest("only-one-field\n", reader);
  ASSERT_FALSE(one_field.ok());
  EXPECT_EQ(one_field.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(one_field.status().message().find("line 1"), std::string::npos)
      << one_field.status();

  Result<Manifest> three_fields =
      ParseManifest("# fine\np.twp t.xml extra\n", reader);
  ASSERT_FALSE(three_fields.ok());
  EXPECT_NE(three_fields.status().message().find("line 2"),
            std::string::npos)
      << three_fields.status();
}

TEST(ManifestTest, LoadManifestFileMissingIsNotFound) {
  Result<Manifest> manifest =
      LoadManifestFile("/nonexistent/definitely/missing.manifest");
  ASSERT_FALSE(manifest.ok());
  EXPECT_EQ(manifest.status().code(), StatusCode::kNotFound);
}

TEST(ManifestTest, ManifestJobIdZeroIsRemapped) {
  // Whatever the inputs, the id is never the 0 sentinel (0 means
  // "unjournaled" to the engine).  Spot-check the exposed helper.
  std::string program = "p";
  std::string tree = "t";
  EXPECT_NE(ManifestJobId("a", "b", &program, &tree), 0u);
  EXPECT_NE(ManifestJobId("a", "b", nullptr, nullptr), 0u);
}

}  // namespace
}  // namespace treewalk
