#include <gtest/gtest.h>

#include "src/tree/delimited.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"

namespace treewalk {
namespace {

TEST(ParseXml, SimpleDocument) {
  auto r = ParseXml("<doc><item id=\"1\"/><item id=\"2\"/></doc>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 3u);
  EXPECT_EQ(r->LabelName(r->label(0)), "doc");
  AttrId id = r->FindAttribute("id");
  EXPECT_EQ(r->attr(id, 1), 1);
  EXPECT_EQ(r->attr(id, 2), 2);
}

TEST(ParseXml, StringAndNumericAttributes) {
  auto r = ParseXml("<a name=\"x\" n=\"42\" neg=\"-3\" mixed=\"42x\"/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(ValueInterner::IsString(r->attr(r->FindAttribute("name"), 0)));
  EXPECT_EQ(r->attr(r->FindAttribute("n"), 0), 42);
  EXPECT_EQ(r->attr(r->FindAttribute("neg"), 0), -3);
  EXPECT_TRUE(ValueInterner::IsString(r->attr(r->FindAttribute("mixed"), 0)));
}

TEST(ParseXml, DeclarationCommentsAndWhitespace) {
  auto r = ParseXml(R"(<?xml version="1.0"?>
    <!-- a catalog -->
    <catalog>
      <!-- inner -->
      <entry/>
    </catalog>)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParseXml, Entities) {
  auto r = ParseXml("<a t=\"&lt;&gt;&amp;&quot;&apos;\"/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->values().Render(r->attr(0, 0)), "<>&\"'");
}

TEST(ParseXml, SingleQuotedValues) {
  auto r = ParseXml("<a x='7'/>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->attr(0, 0), 7);
}

TEST(ParseXml, Errors) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a>text</a>").ok());
  EXPECT_FALSE(ParseXml("<a x=3/>").ok());
  EXPECT_FALSE(ParseXml("<a x=\"1\"").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a t=\"&bogus;\"/>").ok());
}

TEST(WriteXml, RoundTrip) {
  auto t = ParseXml("<doc v=\"1\"><a name=\"x\"/><b><c/></b></doc>");
  ASSERT_TRUE(t.ok());
  auto xml = WriteXml(*t);
  ASSERT_TRUE(xml.ok()) << xml.status();
  auto t2 = ParseXml(*xml);
  ASSERT_TRUE(t2.ok()) << *xml << "\n" << t2.status();
  EXPECT_EQ(PrintTerm(*t2), PrintTerm(*t));
}

TEST(WriteXml, EscapesSpecialCharacters) {
  TreeBuilder b;
  auto r = b.AddRoot("a");
  b.SetAttrString(r, "t", "<>&\"");
  Tree t = b.Build();
  auto xml = WriteXml(t, /*indent=*/false);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(*xml, "<a t=\"&lt;&gt;&amp;&quot;\"/>");
}

TEST(WriteXml, RejectsDelimiterLabels) {
  auto t = ParseTerm("a(b)");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  EXPECT_FALSE(WriteXml(d.tree).ok());
}

TEST(WriteXml, CompactModeHasNoNewlines) {
  auto t = ParseXml("<a><b/></a>");
  ASSERT_TRUE(t.ok());
  auto xml = WriteXml(*t, /*indent=*/false);
  ASSERT_TRUE(xml.ok());
  EXPECT_EQ(xml->find('\n'), std::string::npos);
  EXPECT_EQ(*xml, "<a><b/></a>");
}

}  // namespace
}  // namespace treewalk
