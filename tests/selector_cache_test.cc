// Persistent compiled-selector cache (src/logic/selector_cache.h):
// three-way oracle over random formula x tree instances, stale/corrupt
// degradation, and fault injection.  The load-bearing property: a
// selector that came back from disk — answering for a tree that came
// back from a snapshot — is indistinguishable from one compiled fresh,
// which is itself held to the node-at-a-time reference evaluator.

#include "src/logic/selector_cache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/atomic_file.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/logic/compile.h"
#include "src/logic/formula.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/snapshot.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

std::string TempCacheDir(const char* tag) {
  std::string dir = testing::TempDir() + "/selcache_" + tag + "_" +
                    std::to_string(::getpid());
  (void)::mkdir(dir.c_str(), 0777);
  return dir;
}

Formula Parse(const char* text) {
  return std::move(ParseFormula(text)).value();
}

std::int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().FindOrCreateCounter(name, "")->value();
}

/// Random FO selectors in the compilable two-variable fragment, same
/// distribution as compiled_eval_test.cc's property suite.
class SelectorGen {
 public:
  explicit SelectorGen(std::mt19937& rng) : rng_(rng) {}

  Formula Gen(int depth, std::vector<std::string> scope) {
    if (depth <= 0) return Atom(scope);
    switch (rng_() % 8) {
      case 0:
        return Atom(scope);
      case 1:
        return Formula::Not(Gen(depth - 1, scope));
      case 2:
        return Formula::And(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return Formula::Or(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 4:
        return Formula::Implies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 5: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Exists(v, Gen(depth - 1, scope));
      }
      case 6: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Forall(v, Gen(depth - 1, scope));
      }
      default:
        return Formula::Iff(Atom(scope), Gen(depth - 1, scope));
    }
  }

 private:
  const std::string& Var(const std::vector<std::string>& scope) {
    return scope[rng_() % scope.size()];
  }

  std::string FreshVar(const std::vector<std::string>& scope) {
    if (rng_() % 4 == 0) return Var(scope);
    return std::string("q") + std::to_string(rng_() % 3);
  }

  Formula Atom(const std::vector<std::string>& scope) {
    switch (rng_() % 12) {
      case 0:
        return Formula::Edge(Var(scope), Var(scope));
      case 1:
        return Formula::Sibling(Var(scope), Var(scope));
      case 2:
        return Formula::Descendant(Var(scope), Var(scope));
      case 3:
        return Formula::Succ(Var(scope), Var(scope));
      case 4:
        return Formula::VarEq(Var(scope), Var(scope));
      case 5:
        return Formula::Label(Var(scope), rng_() % 2 ? "a" : "b");
      case 6:
        return Formula::Root(Var(scope));
      case 7:
        return Formula::Leaf(Var(scope));
      case 8:
        return Formula::First(Var(scope));
      case 9:
        return Formula::Last(Var(scope));
      case 10:
        return Formula::Eq(Term::AttrOf("a", Var(scope)),
                           Term::Int(static_cast<DataValue>(rng_() % 4)));
      default:
        return Formula::Eq(Term::AttrOf(rng_() % 2 ? "a" : "b", Var(scope)),
                           Term::AttrOf("a", Var(scope)));
    }
  }

  std::mt19937& rng_;
};

// --- The three-way oracle. -------------------------------------------
//
// For each random (formula, tree): (1) compile fresh against the parsed
// tree, store to disk; (2) reload the tree from its snapshot image and
// the selector from the cache (a real hit, asserted via metrics); (3)
// at every origin, fresh == cached-on-mapped-tree == the reference
// node-at-a-time evaluator.  >1000 compiled instances, both dense and
// interval representations.
TEST(SelectorCacheOracle, MappedTreePlusCachedSelectorMatchesReference) {
  const std::string dir = TempCacheDir("oracle");
  SelectorDiskCache cache(dir);
  std::mt19937 rng(20260809);
  SelectorGen gen(rng);
  RandomTreeOptions options;
  options.attributes = {"a", "b"};
  options.value_range = 4;

  const std::int64_t hits_before =
      CounterValue("treewalk_selector_cache_hits_total");
  int instances = 0;
  int attempts = 0;
  while (instances < 1100 && attempts < 8000) {
    ++attempts;
    options.num_nodes = 1 + static_cast<int>(rng() % 14);
    Tree tree = RandomTree(rng, options);
    Formula formula = gen.Gen(1 + static_cast<int>(rng() % 3), {"x", "y"});
    const AxisRepr repr =
        rng() % 2 ? AxisRepr::kDense : AxisRepr::kInterval;

    AxisIndex index(tree);
    auto fresh = CompileSelector(index, formula, "x", "y", repr);
    if (!fresh.ok()) continue;  // outside the compilable fragment
    ++instances;

    SelectorCacheKey key;
    key.formula_hash = StableFormulaHash(formula, "x", "y");
    key.tree_hash = TreeContentHash(tree);
    key.repr = repr;
    ASSERT_TRUE(cache.Store(key, *fresh).ok());

    auto mapped = TreeFromSnapshotImage(
        std::make_shared<const std::string>(EncodeTreeSnapshot(tree)));
    ASSERT_TRUE(mapped.ok());
    AxisIndex mapped_index(*mapped);
    auto cached = CompileSelectorCached(mapped_index, formula, "x", "y",
                                        repr, &cache, key.tree_hash);
    ASSERT_TRUE(cached.ok()) << cached.status().ToString();
    EXPECT_EQ(cached->repr(), fresh->repr());
    EXPECT_EQ(cached->RetainedBytes(), fresh->RetainedBytes())
        << formula.ToString();

    for (NodeId origin = 0; origin < static_cast<NodeId>(tree.size());
         ++origin) {
      const std::vector<NodeId> a = fresh->SelectFrom(origin);
      const std::vector<NodeId> b = cached->SelectFrom(origin);
      auto reference = SelectNodes(*mapped, formula, origin);
      ASSERT_TRUE(reference.ok());
      EXPECT_EQ(a, b) << formula.ToString() << " at " << origin;
      EXPECT_EQ(b, *reference) << formula.ToString() << " at " << origin;
    }
  }
  EXPECT_GE(instances, 1000);
  // Every instance's CompileSelectorCached must have been a disk hit.
  EXPECT_EQ(CounterValue("treewalk_selector_cache_hits_total"),
            hits_before + instances);
}

TEST(SelectorCacheRoundTrip, EncodeDecodeIsExact) {
  Tree tree;
  {
    std::mt19937 rng(7);
    RandomTreeOptions options;
    options.num_nodes = 200;
    options.attributes = {"a"};
    tree = RandomTree(rng, options);
  }
  AxisIndex index(tree);
  for (AxisRepr repr : {AxisRepr::kDense, AxisRepr::kInterval}) {
    auto fresh = CompileSelector(
        index, Parse("exists z (E(x, z) & E(z, y))"), "x", "y", repr);
    ASSERT_TRUE(fresh.ok());
    SelectorCacheKey key{1, 2, repr};
    const std::string image = EncodeSelectorCacheEntry(key, *fresh);
    auto decoded = DecodeSelectorCacheEntry(image, &key);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->tree_size(), fresh->tree_size());
    EXPECT_EQ(decoded->repr(), fresh->repr());
    EXPECT_EQ(decoded->RetainedBytes(), fresh->RetainedBytes());
    for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); u += 17) {
      EXPECT_EQ(decoded->SelectFrom(u), fresh->SelectFrom(u));
    }
    // Deterministic bytes: same selector, same entry image.
    EXPECT_EQ(EncodeSelectorCacheEntry(key, *fresh), image);
  }
}

TEST(SelectorCacheValidation, TruncationAndBitFlipsNeverDecodeWrong) {
  Tree tree;
  {
    std::mt19937 rng(11);
    RandomTreeOptions options;
    options.num_nodes = 40;
    tree = RandomTree(rng, options);
  }
  AxisIndex index(tree);
  auto fresh = CompileSelector(index, Parse("desc(x, y)"), "x", "y",
                               AxisRepr::kInterval);
  ASSERT_TRUE(fresh.ok());
  SelectorCacheKey key{3, 4, AxisRepr::kInterval};
  const std::string image = EncodeSelectorCacheEntry(key, *fresh);

  for (std::size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(
        DecodeSelectorCacheEntry(image.substr(0, len), &key).ok())
        << "truncation to " << len;
  }
  const std::vector<NodeId> want = fresh->SelectFrom(0);
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    auto decoded = DecodeSelectorCacheEntry(corrupt, &key);
    if (decoded.ok()) {
      // Only bytes outside both CRC windows could survive; answers
      // must still be right.
      EXPECT_EQ(decoded->SelectFrom(0), want) << "byte " << i;
    }
  }
}

TEST(SelectorCacheStale, MismatchedKeyIsRejectedAndFallsBack) {
  const std::string dir = TempCacheDir("stale");
  SelectorDiskCache cache(dir);
  Tree tree;
  {
    std::mt19937 rng(13);
    RandomTreeOptions options;
    options.num_nodes = 20;
    tree = RandomTree(rng, options);
  }
  AxisIndex index(tree);
  Formula phi = Parse("E(x, y)");
  auto fresh = CompileSelector(index, phi, "x", "y", AxisRepr::kDense);
  ASSERT_TRUE(fresh.ok());

  SelectorCacheKey key;
  key.formula_hash = StableFormulaHash(phi, "x", "y");
  key.tree_hash = TreeContentHash(tree);
  key.repr = AxisRepr::kDense;
  ASSERT_TRUE(cache.Store(key, *fresh).ok());

  // Simulate a stale entry: the tree changed, the file did not.  The
  // entry for the old hash sits at a different path, so a lookup under
  // the new hash misses; a *forged* path collision (copy the old entry
  // onto the new key's path) is caught by the key embedded in the
  // entry.
  SelectorCacheKey new_key = key;
  new_key.tree_hash ^= 0xDEADBEEF;
  auto miss = cache.Load(new_key);
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);

  auto stale_bytes = ReadFileBytes(cache.EntryPath(key));
  ASSERT_TRUE(stale_bytes.ok());
  ASSERT_TRUE(WriteFileAtomic(cache.EntryPath(new_key), *stale_bytes).ok());
  auto forged = cache.Load(new_key);
  ASSERT_FALSE(forged.ok());
  EXPECT_NE(forged.status().code(), StatusCode::kNotFound);

  // CompileSelectorCached degrades to a fresh compile and counts it.
  const std::int64_t fallbacks_before =
      CounterValue("treewalk_selector_cache_fallbacks_total");
  auto compiled = CompileSelectorCached(index, phi, "x", "y",
                                        AxisRepr::kDense, &cache,
                                        new_key.tree_hash);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->SelectFrom(0), fresh->SelectFrom(0));
  EXPECT_EQ(CounterValue("treewalk_selector_cache_fallbacks_total"),
            fallbacks_before + 1);
}

TEST(SelectorCacheFailpoints, LoadAndStoreFaultsDegradeGracefully) {
  const std::string dir = TempCacheDir("fp");
  SelectorDiskCache cache(dir);
  Tree tree;
  {
    std::mt19937 rng(17);
    RandomTreeOptions options;
    options.num_nodes = 16;
    tree = RandomTree(rng, options);
  }
  AxisIndex index(tree);
  Formula phi = Parse("desc(x, y)");
  auto fresh = CompileSelector(index, phi, "x", "y", AxisRepr::kDense);
  ASSERT_TRUE(fresh.ok());
  const std::uint64_t tree_hash = TreeContentHash(tree);

  // Store fault: the compile still succeeds, nothing is persisted.
  FailpointRegistry::Config fault;
  fault.code = StatusCode::kInternal;
  fault.message = "injected";
  FailpointRegistry::Global().Enable("selector_cache/store", fault);
  auto first = CompileSelectorCached(index, phi, "x", "y",
                                     AxisRepr::kDense, &cache, tree_hash);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->SelectFrom(0), fresh->SelectFrom(0));

  // Second call stores for real; third hits.
  auto second = CompileSelectorCached(index, phi, "x", "y",
                                      AxisRepr::kDense, &cache, tree_hash);
  ASSERT_TRUE(second.ok());

  // Load fault counts as a fallback, not a crash, and the answer is
  // still correct.
  FailpointRegistry::Global().Enable("selector_cache/load", fault);
  const std::int64_t fallbacks_before =
      CounterValue("treewalk_selector_cache_fallbacks_total");
  auto third = CompileSelectorCached(index, phi, "x", "y",
                                     AxisRepr::kDense, &cache, tree_hash);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->SelectFrom(0), fresh->SelectFrom(0));
  EXPECT_EQ(CounterValue("treewalk_selector_cache_fallbacks_total"),
            fallbacks_before + 1);
  FailpointRegistry::Global().DisableAll();

  // With faults gone the entry from `second` serves a real hit.
  const std::int64_t hits_before =
      CounterValue("treewalk_selector_cache_hits_total");
  auto fourth = CompileSelectorCached(index, phi, "x", "y",
                                      AxisRepr::kDense, &cache, tree_hash);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(CounterValue("treewalk_selector_cache_hits_total"),
            hits_before + 1);
  EXPECT_EQ(fourth->SelectFrom(0), fresh->SelectFrom(0));
}

TEST(StableFormulaHashTest, SeparatesFormulasAndVariableRoles) {
  Formula a = Parse("E(x, y)");
  Formula b = Parse("desc(x, y)");
  EXPECT_NE(StableFormulaHash(a, "x", "y"), StableFormulaHash(b, "x", "y"));
  EXPECT_NE(StableFormulaHash(a, "x", "y"), StableFormulaHash(a, "y", "x"));
  EXPECT_EQ(StableFormulaHash(a, "x", "y"),
            StableFormulaHash(Parse("E(x, y)"), "x", "y"));
}

}  // namespace
}  // namespace treewalk
