// QueryClient (src/client/client.h) suite, driven by a scriptable
// in-test fake frame server so every failure mode is injected
// deterministically:
//
//   - deadline propagation: each attempt's wire deadline_ms is strictly
//     the remaining end-to-end budget, observed by recording what the
//     server actually received per attempt;
//   - retry classification: transient wire errors and transport
//     failures retry, semantic verdicts are terminal;
//   - the circuit breaker's full closed -> open -> half-open -> closed
//     cycle under injected faults, with exact counter reconciliation
//     against the fake server's request log;
//   - hedging: a stalled primary loses the race to the hedge endpoint.
//
// Runs under ASan (asan-focus) and TSan (threaded) in CI.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/server/frame.h"
#include "tests/serve_test_util.h"

namespace treewalk {
namespace {

using serve_test::kAcceptAllProgram;
using serve_test::ReadAll;
using serve_test::WriteAll;

/// A single-connection-at-a-time frame server whose behavior per query
/// is decided by a script callback.  It records every query's wire
/// deadline_ms, which is how the deadline-propagation tests observe
/// what the client actually sent.
class FakeServer {
 public:
  struct Action {
    enum Kind {
      kResult,   ///< answer kQueryResult{accepted}
      kError,    ///< answer kError{code}
      kClose,    ///< close the connection without answering
      kStall,    ///< answer nothing until delay_ms (or Stop) passes
    };
    Kind kind = kResult;
    bool accepted = true;
    WireError code = WireError::kOverloaded;
    std::int64_t delay_ms = 0;  ///< sleep before acting (all kinds)
  };
  /// Called once per received query with its decoded request and
  /// zero-based global index.
  using Script = std::function<Action(const QueryRequest&, int index)>;

  explicit FakeServer(Script script) : script_(std::move(script)) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    listen(listen_fd_, 16);
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeServer() { Stop(); }

  int port() const { return port_; }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
    close(listen_fd_);
  }

  std::vector<std::uint32_t> deadlines() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deadlines_;
  }
  int queries_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(deadlines_.size());
  }

 private:
  bool Stopped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopped_;
  }

  /// Sleeps up to `ms`, waking early on Stop().
  void WaitOrStop(std::int64_t ms) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, std::chrono::milliseconds(ms),
                 [this] { return stopped_; });
  }

  void Serve() {
    while (!Stopped()) {
      struct pollfd pfd = {listen_fd_, POLLIN, 0};
      int n = poll(&pfd, 1, 50);
      if (n <= 0) continue;
      int conn = accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) continue;
      ServeConnection(conn);
      close(conn);
    }
  }

  void ServeConnection(int conn) {
    // A stall keeps the connection (and this loop) busy, so a stuck
    // read must not outlive the test: bound every recv.
    struct timeval tv = {5, 0};
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    while (!Stopped()) {
      unsigned char prefix[4];
      if (!ReadAll(conn, prefix, sizeof(prefix))) return;
      Result<std::uint32_t> len = DecodeFrameLength(prefix);
      if (!len.ok()) return;
      std::string payload(*len, '\0');
      if (!ReadAll(conn, payload.data(), payload.size())) return;
      Result<Frame> frame = DecodeFramePayload(payload);
      if (!frame.ok()) return;
      if (frame->type == MessageType::kPing) {
        if (!WriteAll(conn, EncodeFrame(MessageType::kPong, ""))) return;
        continue;
      }
      if (frame->type != MessageType::kQuery) return;
      Result<QueryRequest> query = DecodeQueryRequest(frame->body);
      if (!query.ok()) return;
      Action action;
      {
        std::lock_guard<std::mutex> lock(mu_);
        int index = static_cast<int>(deadlines_.size());
        deadlines_.push_back(query->deadline_ms);
        action = script_(*query, index);
      }
      if (action.delay_ms > 0) WaitOrStop(action.delay_ms);
      switch (action.kind) {
        case Action::kResult: {
          QueryResultMsg result;
          result.accepted = action.accepted;
          result.steps = 1;
          if (!WriteAll(conn, EncodeFrame(MessageType::kQueryResult,
                                          EncodeQueryResult(result)))) {
            return;
          }
          break;
        }
        case Action::kError: {
          ErrorMsg error;
          error.code = action.code;
          error.message = "injected";
          if (!WriteAll(conn, EncodeFrame(MessageType::kError,
                                          EncodeError(error)))) {
            return;
          }
          break;
        }
        case Action::kClose:
          return;
        case Action::kStall:
          // delay already served above; answer nothing and hang up.
          return;
      }
    }
  }

  Script script_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::vector<std::uint32_t> deadlines_;
};

ClientOptions BaseOptions(int port) {
  ClientOptions options;
  options.endpoint.port = port;
  options.retry.max_attempts = 1;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 20;
  options.connect_timeout_ms = 1000;
  options.io_timeout_ms = 3000;
  options.backoff_seed = 0x7e57;
  return options;
}

TEST(ClientTest, DeadlinePropagationIsStrictlyDecreasing) {
  // Two retryable refusals, each after a 30 ms hold, then success.  The
  // hold guarantees measurable elapsed time between attempts, so the
  // propagated deadlines must strictly shrink.
  FakeServer server([](const QueryRequest&, int index) {
    FakeServer::Action action;
    if (index < 2) {
      action.kind = FakeServer::Action::kError;
      action.code = WireError::kOverloaded;
      action.delay_ms = 30;
    }
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 5;
  options.total_deadline_ms = 5000;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_TRUE(outcome.result.accepted);
  EXPECT_EQ(outcome.attempts, 3);

  std::vector<std::uint32_t> deadlines = server.deadlines();
  ASSERT_EQ(deadlines.size(), 3u);
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    EXPECT_GT(deadlines[i], 0u) << "attempt " << i;
    EXPECT_LE(deadlines[i], 5000u) << "attempt " << i;
    if (i > 0) {
      // Strictly less: budget minus elapsed, and elapsed grew by at
      // least the server's 30 ms hold plus the backoff.
      EXPECT_LT(deadlines[i], deadlines[i - 1])
          << "attempt " << i << " did not shrink its wire deadline";
      EXPECT_LE(deadlines[i] + 30, deadlines[i - 1])
          << "attempt " << i << " shrank less than the server hold";
    }
  }
  EXPECT_EQ(client.counters().attempts.load(), 3);
  EXPECT_EQ(client.counters().retries.load(), 2);
}

TEST(ClientTest, ExhaustedBudgetFailsClientSideWithoutAnAttempt) {
  // Every attempt burns ~60 ms of a 100 ms budget: the client must run
  // out of budget after about two attempts and fail with
  // kDeadlineExceeded *without* a final wasted exchange.
  FakeServer server([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kError;
    action.code = WireError::kOverloaded;
    action.delay_ms = 60;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 50;
  options.total_deadline_ms = 100;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
      << outcome.status.ToString();
  EXPECT_EQ(client.counters().deadline_exhausted.load(), 1);
  EXPECT_LT(client.counters().attempts.load(), 5);
  EXPECT_EQ(client.counters().attempts.load(), server.queries_seen());
}

TEST(ClientTest, TerminalWireErrorsDoNotRetry) {
  FakeServer server([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kError;
    action.code = WireError::kNotFound;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 5;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("nope", kAcceptAllProgram);
  EXPECT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.code(), StatusCode::kNotFound);
  ASSERT_TRUE(outcome.has_wire_error);
  EXPECT_EQ(outcome.wire_error, WireError::kNotFound);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(server.queries_seen(), 1);
  EXPECT_EQ(client.counters().retries.load(), 0);
}

TEST(ClientTest, RetryableWireErrorsRetryToTheAttemptBudget) {
  FakeServer server([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kError;
    action.code = WireError::kOverloaded;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 3;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  EXPECT_FALSE(outcome.status.ok());
  ASSERT_TRUE(outcome.has_wire_error);
  EXPECT_EQ(outcome.wire_error, WireError::kOverloaded);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(server.queries_seen(), 3);
  EXPECT_EQ(client.counters().retries.load(), 2);
}

TEST(ClientTest, TransportFailuresRetryOnAFreshConnection) {
  FakeServer server([](const QueryRequest&, int index) {
    FakeServer::Action action;
    if (index == 0) action.kind = FakeServer::Action::kClose;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 3;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_GE(client.counters().transport_errors.load(), 1);
  EXPECT_GE(client.counters().reconnects.load(), 2);
}

TEST(ClientTest, BreakerOpensHalfOpensAndRecloses) {
  // The fault is a switch the test flips: while on, every query is
  // refused kOverloaded (retryable, so it feeds the breaker).
  std::atomic<bool> failing{true};
  FakeServer server([&failing](const QueryRequest&, int) {
    FakeServer::Action action;
    if (failing.load()) {
      action.kind = FakeServer::Action::kError;
      action.code = WireError::kOverloaded;
    }
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 1;  // one attempt per call: each Query()
                                   // is one breaker observation
  options.breaker_threshold = 3;
  options.breaker_cooldown_ms = 100;
  QueryClient client(options);

  // Three consecutive retryable failures open the breaker.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(client.Query("t", kAcceptAllProgram).status.ok());
  }
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kOpen);
  EXPECT_EQ(client.counters().breaker_opened.load(), 1);

  // While open, calls are shed locally: no socket, no server request.
  int seen_before_shed = server.queries_seen();
  QueryOutcome shed = client.Query("t", kAcceptAllProgram);
  EXPECT_FALSE(shed.status.ok());
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(shed.attempts, 0);
  EXPECT_EQ(server.queries_seen(), seen_before_shed);
  EXPECT_EQ(client.counters().breaker_shed.load(), 1);

  // After the cooldown exactly one half-open probe goes through; the
  // fault is still on, so it fails and the breaker re-opens.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(client.Query("t", kAcceptAllProgram).status.ok());
  EXPECT_EQ(client.counters().breaker_probes.load(), 1);
  EXPECT_EQ(client.counters().breaker_opened.load(), 2);
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kOpen);

  // Clear the fault; the next probe succeeds and closes the breaker.
  failing.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  QueryOutcome recovered = client.Query("t", kAcceptAllProgram);
  EXPECT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_EQ(client.counters().breaker_probes.load(), 2);
  EXPECT_EQ(client.counters().breaker_closed.load(), 1);
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kClosed);

  // Closed again: ordinary traffic flows.
  EXPECT_TRUE(client.Query("t", kAcceptAllProgram).status.ok());

  // Exact reconciliation: every client attempt reached the server, and
  // exactly one call was shed without an attempt.
  EXPECT_EQ(client.counters().attempts.load(), server.queries_seen());
  EXPECT_EQ(client.counters().breaker_shed.load(), 1);
}

TEST(ClientTest, TerminalErrorsDoNotFeedTheBreaker) {
  FakeServer server([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kError;
    action.code = WireError::kNotFound;  // semantic verdict, not health
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.breaker_threshold = 2;
  QueryClient client(options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(client.Query("nope", kAcceptAllProgram).status.ok());
  }
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kClosed);
  EXPECT_EQ(client.counters().breaker_opened.load(), 0);
}

TEST(ClientTest, TerminalVerdictDuringHalfOpenClosesTheBreaker) {
  // Regression: a half-open probe that draws a *terminal* wire error
  // (kNotFound — the server answered, so the endpoint is healthy) must
  // close the breaker.  Recording neither success nor failure used to
  // leave half_open_probe_inflight_ latched and the breaker shedding
  // every subsequent call forever.
  std::atomic<bool> failing{true};
  FakeServer server([&failing](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kError;
    action.code =
        failing.load() ? WireError::kOverloaded : WireError::kNotFound;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.retry.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 100;
  QueryClient client(options);

  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(client.Query("t", kAcceptAllProgram).status.ok());
  }
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kOpen);

  failing.store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  QueryOutcome probe = client.Query("nope", kAcceptAllProgram);
  EXPECT_FALSE(probe.status.ok());
  EXPECT_EQ(probe.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(client.breaker_state(), QueryClient::BreakerState::kClosed);
  EXPECT_EQ(client.counters().breaker_probes.load(), 1);
  EXPECT_EQ(client.counters().breaker_closed.load(), 1);

  // Closed for real: later calls reach the server instead of the shed
  // path.
  int seen = server.queries_seen();
  EXPECT_FALSE(client.Query("nope", kAcceptAllProgram).status.ok());
  EXPECT_EQ(server.queries_seen(), seen + 1);
  EXPECT_EQ(client.counters().breaker_shed.load(), 0);
}

TEST(ClientTest, ExchangeWaitCoversTheWireDeadline) {
  // Regression: the server legitimately computes for 600 ms, well past
  // the 100 ms io floor; the client must size its socket wait from the
  // attempt's wire deadline instead of aborting the exchange at
  // io_timeout_ms and miscounting it as a transport failure.
  FakeServer server([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.delay_ms = 600;
    return action;
  });

  ClientOptions options = BaseOptions(server.port());
  options.io_timeout_ms = 100;
  options.request_deadline_ms = 5000;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(client.counters().transport_errors.load(), 0);
}

TEST(ClientTest, HedgeWinsWhenThePrimaryStalls) {
  // The primary swallows the request and goes silent; the hedge answers
  // immediately.  The hedge must win well before the io timeout.
  FakeServer primary([](const QueryRequest&, int) {
    FakeServer::Action action;
    action.kind = FakeServer::Action::kStall;
    action.delay_ms = 5000;
    return action;
  });
  FakeServer hedge([](const QueryRequest&, int) {
    return FakeServer::Action{};  // immediate accept
  });

  ClientOptions options = BaseOptions(primary.port());
  options.hedge.port = hedge.port();
  options.hedge_delay_ms = 50;
  options.io_timeout_ms = 10000;
  QueryClient client(options);

  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_TRUE(outcome.hedge_won);
  EXPECT_LT(elapsed_ms, 4000) << "winner did not preempt the stalled primary";
  EXPECT_EQ(client.counters().hedges_launched.load(), 1);
  EXPECT_EQ(client.counters().hedges_won.load(), 1);
}

TEST(ClientTest, HedgeStaysQuietWhenThePrimaryIsFast) {
  FakeServer primary([](const QueryRequest&, int) {
    return FakeServer::Action{};  // immediate accept
  });
  FakeServer hedge([](const QueryRequest&, int) {
    return FakeServer::Action{};
  });

  ClientOptions options = BaseOptions(primary.port());
  options.hedge.port = hedge.port();
  options.hedge_delay_ms = 2000;
  QueryClient client(options);

  QueryOutcome outcome = client.Query("t", kAcceptAllProgram);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_FALSE(outcome.hedge_won);
  EXPECT_EQ(client.counters().hedges_launched.load(), 0);
  EXPECT_EQ(hedge.queries_seen(), 0);
}

TEST(ClientTest, StatusFromWireErrorMapsTheFullVocabulary) {
  EXPECT_EQ(StatusFromWireError(WireError::kOverloaded, "m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromWireError(WireError::kDraining, "m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromWireError(WireError::kInvalidRequest, "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWireError(WireError::kNotFound, "m").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(StatusFromWireError(WireError::kDeadlineExceeded, "m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromWireError(WireError::kResourceExhausted, "m").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromWireError(WireError::kCancelled, "m").code(),
            StatusCode::kCancelled);
  EXPECT_EQ(StatusFromWireError(WireError::kRejectedProgram, "m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromWireError(WireError::kQuarantined, "m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromWireError(WireError::kInternal, "m").code(),
            StatusCode::kInternal);
}

TEST(ClientTest, PingAndProbesRoundTrip) {
  FakeServer server([](const QueryRequest&, int) {
    return FakeServer::Action{};
  });
  QueryClient client(BaseOptions(server.port()));
  EXPECT_TRUE(client.Connect().ok());
  EXPECT_TRUE(client.Ping().ok());
}

}  // namespace
}  // namespace treewalk
