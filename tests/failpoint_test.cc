// Tests for the deterministic fault-injection registry
// (src/common/failpoint.h): disarmed no-op, fire windows (after /
// max_fires), seeded schedule determinism, and the site inventory that
// docs/ROBUSTNESS.md documents.

#include "src/common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

/// Every test leaves the process-wide registry disarmed.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisableAll(); }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

TEST_F(FailpointTest, DisarmedRegistryIsInvisible) {
  EXPECT_FALSE(FailpointRegistry::armed());
  // Check() on an unarmed site is OK even when called directly.
  EXPECT_TRUE(FailpointRegistry::Global().Check("interpreter/step").ok());
}

TEST_F(FailpointTest, EnabledSiteFiresWithConfiguredStatus) {
  FailpointRegistry::Config config;
  config.code = StatusCode::kResourceExhausted;
  config.message = "boom";
  FailpointRegistry::Global().Enable("interpreter/step", config);
  EXPECT_TRUE(FailpointRegistry::armed());
  Status status = FailpointRegistry::Global().Check("interpreter/step");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("boom"), std::string::npos);
  // Other sites are unaffected.
  EXPECT_TRUE(FailpointRegistry::Global().Check("compiler/compile").ok());
}

TEST_F(FailpointTest, AfterAndMaxFiresDelimitTheWindow) {
  FailpointRegistry::Config config;
  config.after = 2;
  config.max_fires = 3;
  FailpointRegistry::Global().Enable("engine/worker", config);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!FailpointRegistry::Global().Check("engine/worker").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FailpointRegistry::Global().hits("engine/worker"), 10);
  // Re-enabling resets the counters.
  FailpointRegistry::Global().Enable("engine/worker", config);
  EXPECT_EQ(FailpointRegistry::Global().hits("engine/worker"), 0);
  EXPECT_TRUE(FailpointRegistry::Global().Check("engine/worker").ok());
}

TEST_F(FailpointTest, DisableAllDisarms) {
  FailpointRegistry::Global().Enable("interpreter/select", {});
  ASSERT_TRUE(FailpointRegistry::armed());
  FailpointRegistry::Global().DisableAll();
  EXPECT_FALSE(FailpointRegistry::armed());
  EXPECT_TRUE(FailpointRegistry::Global().Check("interpreter/select").ok());
}

TEST_F(FailpointTest, KnownSitesInventoryIsStable) {
  const std::vector<std::string>& sites = FailpointRegistry::KnownSites();
  EXPECT_EQ(sites.size(), 18u);
  for (const char* site :
       {"interpreter/step", "interpreter/select", "compiler/compile",
        "axis_index/alloc", "engine/worker", "journal/append",
        "journal/fsync", "journal/rename", "atomic_file/write",
        "atomic_file/fsync", "atomic_file/rename", "snapshot/load",
        "selector_cache/load", "selector_cache/store", "server/accept",
        "server/read", "server/write", "server/dispatch"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST_F(FailpointTest, RandomScheduleIsDeterministicPerSeed) {
  auto probe = [](std::uint64_t seed) {
    FailpointRegistry::Global().ArmRandomSchedule(seed);
    std::vector<std::string> outcomes;
    for (const std::string& site : FailpointRegistry::KnownSites()) {
      // Drain each site far past any fire window; record the sequence.
      std::string trace;
      for (int i = 0; i < 16; ++i) {
        Status status = FailpointRegistry::Global().Check(site.c_str());
        trace += status.ok()
                     ? '.'
                     : static_cast<char>('A' + static_cast<int>(status.code()));
      }
      outcomes.push_back(site + ":" + trace);
    }
    FailpointRegistry::Global().DisableAll();
    return outcomes;
  };
  bool any_fired = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<std::string> first = probe(seed);
    EXPECT_EQ(first, probe(seed)) << "seed " << seed;
    for (const std::string& o : first) {
      if (o.find_first_of("ABCDEFGHIJKLMNOP", o.find(':')) !=
          std::string::npos) {
        any_fired = true;
      }
    }
  }
  // Across 20 seeds at p=0.5 per site, some site must have fired.
  EXPECT_TRUE(any_fired);
}

TEST_F(FailpointTest, DifferentSeedsGiveDifferentSchedules) {
  auto armed_sites = [](std::uint64_t seed) {
    FailpointRegistry::Global().ArmRandomSchedule(seed);
    std::string mask;
    for (const std::string& site : FailpointRegistry::KnownSites()) {
      bool fired = false;
      for (int i = 0; i < 16; ++i) {
        if (!FailpointRegistry::Global().Check(site.c_str()).ok()) {
          fired = true;
        }
      }
      mask += fired ? '1' : '0';
    }
    FailpointRegistry::Global().DisableAll();
    return mask;
  };
  std::set<std::string> masks;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    masks.insert(armed_sites(seed));
  }
  EXPECT_GT(masks.size(), 1u);
}

/// The macro exercises a real error path: arming interpreter/step makes
/// an otherwise-fine run fail with the injected status, and disarming
/// restores it — the injected failure took the ordinary Status route.
TEST_F(FailpointTest, InjectedStepFaultAbortsARealRun) {
  Program p = std::move(HasLabelProgram("a")).value();
  Tree t = FullTree(2, 3);
  ASSERT_TRUE(Interpreter(p).Run(t).ok());

  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  config.after = 3;
  FailpointRegistry::Global().Enable("interpreter/step", config);
  auto run = Interpreter(p).Run(t);
  EXPECT_EQ(run.status().code(), StatusCode::kInternal) << run.status();

  FailpointRegistry::Global().DisableAll();
  EXPECT_TRUE(Interpreter(p).Run(t).ok());
}

}  // namespace
}  // namespace treewalk
