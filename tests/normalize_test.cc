#include <gtest/gtest.h>

#include <random>

#include "src/logic/normalize.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/relstore/store_eval.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Formula F(const char* src) {
  auto r = ParseFormula(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return *r;
}

TEST(ToNegationNormalForm, EliminatesConnectives) {
  struct Case {
    const char* in;
    const char* out;
  } cases[] = {
      {"!(root(x) & leaf(x))", "(!(root(x)) | !(leaf(x)))"},
      {"!(root(x) | leaf(x))", "(!(root(x)) & !(leaf(x)))"},
      {"root(x) -> leaf(x)", "(!(root(x)) | leaf(x))"},
      {"!(root(x) -> leaf(x))", "(root(x) & !(leaf(x)))"},
      {"!(!(root(x)))", "root(x)"},
      {"!(exists y E(x, y))", "forall y !(E(x, y))"},
      {"!(forall y E(x, y))", "exists y !(E(x, y))"},
      {"!(true)", "false"},
      {"!(false)", "true"},
  };
  for (const Case& c : cases) {
    Formula nnf = ToNegationNormalForm(F(c.in));
    EXPECT_EQ(nnf.ToString(), c.out) << c.in;
    EXPECT_TRUE(IsNegationNormalForm(nnf)) << c.in;
  }
}

TEST(ToNegationNormalForm, ExpandsIff) {
  Formula nnf = ToNegationNormalForm(F("root(x) <-> leaf(x)"));
  EXPECT_TRUE(IsNegationNormalForm(nnf));
  EXPECT_EQ(nnf.ToString(),
            "((root(x) & leaf(x)) | (!(root(x)) & !(leaf(x))))");
  Formula neg = ToNegationNormalForm(F("!(root(x) <-> leaf(x))"));
  EXPECT_TRUE(IsNegationNormalForm(neg));
  EXPECT_EQ(neg.ToString(),
            "((root(x) & !(leaf(x))) | (!(root(x)) & leaf(x)))");
}

TEST(IsNegationNormalForm, Recognizer) {
  EXPECT_TRUE(IsNegationNormalForm(F("root(x) & !(leaf(x))")));
  EXPECT_FALSE(IsNegationNormalForm(F("!(root(x) & leaf(x))")));
  EXPECT_FALSE(IsNegationNormalForm(F("root(x) -> leaf(x)")));
  EXPECT_FALSE(IsNegationNormalForm(F("root(x) <-> leaf(x)")));
  EXPECT_TRUE(IsNegationNormalForm(F("forall y (leaf(y) | !(root(y)))")));
}

/// Semantic equivalence on tree models, across a spread of handwritten
/// formulas covering every connective.
TEST(ToNegationNormalForm, PreservesTreeSemantics) {
  const char* sentences[] = {
      "forall x (val(a, x) = 1 -> exists y (E(x, y) & val(a, y) = 0))",
      "!(forall x (leaf(x) <-> !(exists y E(x, y))))",
      "exists x (root(x) & !(leaf(x) -> val(a, x) = 2))",
      "forall x forall y ((desc(x, y) & leaf(y)) -> "
      "(val(a, x) = val(a, y) <-> x = y))",
      "!(exists x (first(x) & last(x) & !(root(x))))",
  };
  std::mt19937 rng(3);
  RandomTreeOptions options;
  options.num_nodes = 8;
  options.value_range = 3;
  for (int trial = 0; trial < 12; ++trial) {
    Tree t = RandomTree(rng, options);
    for (const char* src : sentences) {
      Formula original = F(src);
      Formula nnf = ToNegationNormalForm(original);
      ASSERT_TRUE(IsNegationNormalForm(nnf)) << src;
      auto a = EvalTreeSentence(t, original);
      auto b = EvalTreeSentence(t, nnf);
      ASSERT_TRUE(a.ok() && b.ok()) << src;
      EXPECT_EQ(*a, *b) << src << " trial " << trial;
    }
  }
}

/// Semantic equivalence on store models (guards).
TEST(ToNegationNormalForm, PreservesStoreSemantics) {
  auto store = Store::Create({{"X", 1}, {"R", 2}});
  ASSERT_TRUE(store.ok());
  store->Find("X")->Insert({1});
  store->Find("X")->Insert({3});
  store->Find("R")->Insert({1, 2});
  StoreContext context;
  context.store = &*store;
  const char* sentences[] = {
      "forall u (X(u) -> exists v R(u, v))",
      "!(forall u forall v (X(u) & X(v) -> u = v))",
      "exists u (X(u) <-> exists v R(v, u))",
  };
  for (const char* src : sentences) {
    Formula original = F(src);
    Formula nnf = ToNegationNormalForm(original);
    auto a = EvalStoreSentence(context, original);
    auto b = EvalStoreSentence(context, nnf);
    ASSERT_TRUE(a.ok() && b.ok()) << src;
    EXPECT_EQ(*a, *b) << src;
  }
}

TEST(ToNegationNormalForm, Idempotent) {
  Formula f = F("!(root(x) <-> (leaf(x) -> first(x)))");
  Formula once = ToNegationNormalForm(f);
  Formula twice = ToNegationNormalForm(once);
  EXPECT_EQ(once.ToString(), twice.ToString());
}

}  // namespace
}  // namespace treewalk
