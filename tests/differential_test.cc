// Differential oracles from the paper's own equivalences, promoted to
// tier-1 tests: Theorem 7.1(2)'s configuration-graph evaluator must
// agree with the direct interpreter on every program, and the Lemma 4.5
// protocol verdict must agree with the direct tw^{r,l} verdict on split
// strings.  Random inputs; every assertion names its seed so a failure
// reproduces.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/hyperset/hyperset.h"
#include "src/protocol/protocol.h"
#include "src/simulation/config_graph.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

constexpr DataValue kHash = -1;

std::vector<Program> LibraryPrograms() {
  std::vector<Program> programs;
  programs.push_back(std::move(HasLabelProgram("a")).value());
  programs.push_back(std::move(HasLabelProgram("missing")).value());
  programs.push_back(std::move(ParityProgram("a")).value());
  programs.push_back(std::move(AllLeavesLabelProgram("a")).value());
  programs.push_back(std::move(RootValueAtSomeLeafProgram("a")).value());
  programs.push_back(std::move(Example32Program("a")).value());
  return programs;
}

/// Direct interpreter vs. memoizing configuration-graph evaluation
/// (Thm 7.1(2)) on random attributed trees, for every library program
/// that is meaningful on a generic alphabet.
TEST(DifferentialOracle, ConfigGraphAgreesWithInterpreterOnRandomTrees) {
  std::vector<Program> programs = LibraryPrograms();
  RandomTreeOptions options;
  options.labels = {"a", "b", "sigma", "delta"};
  options.attributes = {"a"};
  options.value_range = 3;
  for (unsigned seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(seed);
    options.num_nodes = 4 + static_cast<int>(seed) * 2;
    Tree t = RandomTree(rng, options);
    for (std::size_t pi = 0; pi < programs.size(); ++pi) {
      Interpreter interpreter(programs[pi]);
      auto direct = interpreter.Run(t);
      auto graph = EvaluateViaConfigGraph(programs[pi], t);
      ASSERT_TRUE(direct.ok()) << "seed " << seed << " program " << pi << ": "
                               << direct.status();
      ASSERT_TRUE(graph.ok()) << "seed " << seed << " program " << pi << ": "
                              << graph.status();
      EXPECT_EQ(direct->accepted, graph->accepted)
          << "seed " << seed << " program " << pi;
    }
  }
}

/// Same oracle on the Example 3.2 workload generator, which drives the
/// accept and reject paths by construction.
TEST(DifferentialOracle, ConfigGraphAgreesOnExample32Workload) {
  Program p = std::move(Example32Program("a")).value();
  for (unsigned seed = 100; seed < 112; ++seed) {
    std::mt19937 rng(seed);
    bool uniform = seed % 2 == 0;
    Tree t = Example32Tree(rng, 30, uniform);
    Interpreter interpreter(p);
    auto direct = interpreter.Run(t);
    auto graph = EvaluateViaConfigGraph(p, t);
    ASSERT_TRUE(direct.ok()) << "seed " << seed << ": " << direct.status();
    ASSERT_TRUE(graph.ok()) << "seed " << seed << ": " << graph.status();
    EXPECT_EQ(direct->accepted, uniform) << "seed " << seed;
    EXPECT_EQ(graph->accepted, uniform) << "seed " << seed;
  }
}

/// The selector cache must be semantically invisible: verdict, reject
/// reason, and step count all match with the cache off.
TEST(DifferentialOracle, SelectorCacheIsSemanticallyInvisible) {
  std::vector<Program> programs = LibraryPrograms();
  RandomTreeOptions options;
  options.labels = {"a", "sigma", "delta"};
  options.attributes = {"a"};
  for (unsigned seed = 50; seed < 60; ++seed) {
    std::mt19937 rng(seed);
    options.num_nodes = 6 + static_cast<int>(seed % 5) * 4;
    Tree t = RandomTree(rng, options);
    for (std::size_t pi = 0; pi < programs.size(); ++pi) {
      RunOptions plain;
      plain.cache_selectors = false;
      auto cached = Interpreter(programs[pi]).Run(t);
      auto uncached = Interpreter(programs[pi], plain).Run(t);
      ASSERT_TRUE(cached.ok() && uncached.ok())
          << "seed " << seed << " program " << pi;
      EXPECT_EQ(cached->accepted, uncached->accepted)
          << "seed " << seed << " program " << pi;
      EXPECT_EQ(cached->reason, uncached->reason)
          << "seed " << seed << " program " << pi;
      EXPECT_EQ(cached->stats.steps, uncached->stats.steps)
          << "seed " << seed << " program " << pi;
    }
  }
}

/// The compiled set-at-a-time selector evaluator and the PR-1 selector
/// cache must both be semantically invisible, separately and together:
/// all four on/off combinations produce the same verdict, reason, and
/// step count on every program x random tree.  The all-off corner is
/// the pure reference interpreter, so this is a differential run of
/// compiled against reference at the whole-interpreter level.
TEST(DifferentialOracle, CompiledSelectorsAreSemanticallyInvisible) {
  std::vector<Program> programs = LibraryPrograms();
  RandomTreeOptions options;
  options.labels = {"a", "sigma", "delta"};
  options.attributes = {"a"};
  for (unsigned seed = 70; seed < 82; ++seed) {
    std::mt19937 rng(seed);
    options.num_nodes = 6 + static_cast<int>(seed % 5) * 4;
    Tree t = RandomTree(rng, options);
    for (std::size_t pi = 0; pi < programs.size(); ++pi) {
      std::vector<RunResult> results;
      std::vector<std::pair<bool, bool>> combos = {
          {false, false}, {false, true}, {true, false}, {true, true}};
      for (auto [cache, compiled] : combos) {
        RunOptions opts;
        opts.cache_selectors = cache;
        opts.compile_selectors = compiled;
        auto r = Interpreter(programs[pi], opts).Run(t);
        ASSERT_TRUE(r.ok()) << "seed " << seed << " program " << pi
                            << " cache=" << cache << " compiled=" << compiled;
        results.push_back(*r);
      }
      for (std::size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].accepted, results[0].accepted)
            << "seed " << seed << " program " << pi << " combo " << i;
        EXPECT_EQ(results[i].reason, results[0].reason)
            << "seed " << seed << " program " << pi << " combo " << i;
        EXPECT_EQ(results[i].stats.steps, results[0].stats.steps)
            << "seed " << seed << " program " << pi << " combo " << i;
      }
      // With compilation off, no compiled evaluations may be counted.
      EXPECT_EQ(results[0].stats.compiled_selector_evals, 0);
      EXPECT_EQ(results[2].stats.compiled_selector_evals, 0);
    }
  }
}

/// Lemma 4.5: the two-party protocol verdict equals the direct
/// tw^{r,l} verdict on the split string f#g — for the walking
/// set-equality program and its look-ahead variant.
TEST(DifferentialOracle, ProtocolVerdictAgreesWithDirectVerdict) {
  std::vector<Program> programs;
  programs.push_back(std::move(SetEqualityProgram(kHash)).value());
  programs.push_back(
      std::move(SetEqualityViaLookaheadProgram(kHash)).value());
  for (unsigned seed = 0; seed < 25; ++seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<DataValue> value(5, 8);
    std::uniform_int_distribution<int> len(0, 4);
    std::vector<DataValue> f(static_cast<std::size_t>(len(rng)));
    std::vector<DataValue> g(static_cast<std::size_t>(len(rng)));
    for (auto& v : f) v = value(rng);
    for (auto& v : g) v = value(rng);
    Tree t = StringTree(SplitString(f, g, kHash));
    for (std::size_t pi = 0; pi < programs.size(); ++pi) {
      auto protocol = RunSplitProtocol(programs[pi], f, g, kHash);
      auto direct = Interpreter(programs[pi]).Run(t);
      ASSERT_TRUE(protocol.ok())
          << "seed " << seed << " program " << pi << ": " << protocol.status();
      ASSERT_TRUE(direct.ok())
          << "seed " << seed << " program " << pi << ": " << direct.status();
      EXPECT_EQ(protocol->accepted, direct->accepted)
          << "seed " << seed << " program " << pi;
    }
  }
}

}  // namespace
}  // namespace treewalk
