#include <gtest/gtest.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/caterpillar/caterpillar.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

Caterpillar C(const char* src) {
  auto c = ParseCaterpillar(src);
  EXPECT_TRUE(c.ok()) << src << ": " << c.status();
  return *c;
}

bool Accepts(const Tree& t, const char* expr) {
  auto r = CaterpillarAccepts(t, C(expr));
  EXPECT_TRUE(r.ok()) << expr << ": " << r.status();
  return r.ok() && *r;
}

TEST(ParseCaterpillar, AtomsAndOperators) {
  Caterpillar c = C("down right* (up | isleaf) b");
  EXPECT_EQ(c.ToString(), "down right* (up | isleaf) b");
  EXPECT_EQ(C("(down right)*").ToString(), "(down right)*");
  EXPECT_EQ(C("()").ToString(), "()");
  EXPECT_EQ(C("down**").ToString(), "(down*)*");
}

TEST(ParseCaterpillar, Errors) {
  EXPECT_FALSE(ParseCaterpillar("").ok());
  EXPECT_FALSE(ParseCaterpillar("(down").ok());
  EXPECT_FALSE(ParseCaterpillar("down )").ok());
  EXPECT_FALSE(ParseCaterpillar("*").ok());
  EXPECT_FALSE(ParseCaterpillar("down | | up").ok());
}

TEST(CaterpillarAccepts, TestsAtRoot) {
  Tree t = T("a(b, c)");
  EXPECT_TRUE(Accepts(t, "isroot"));
  EXPECT_TRUE(Accepts(t, "a"));
  EXPECT_FALSE(Accepts(t, "b"));
  EXPECT_FALSE(Accepts(t, "isleaf"));
  EXPECT_TRUE(Accepts(T("a"), "isleaf"));
}

TEST(CaterpillarAccepts, MovesCompose) {
  Tree t = T("a(b, c(d))");
  EXPECT_TRUE(Accepts(t, "down b"));
  EXPECT_TRUE(Accepts(t, "down right c down d"));
  EXPECT_FALSE(Accepts(t, "down right right"));
  EXPECT_TRUE(Accepts(t, "down right down up c"));
  EXPECT_FALSE(Accepts(t, "up"));
}

TEST(CaterpillarAccepts, StarSearchesArbitrarilyDeep) {
  // The classic caterpillar: some leaf labeled "needle".
  const char* expr = "(down | right)* isleaf needle";
  EXPECT_TRUE(Accepts(T("a(b, c(x, needle), d)"), expr));
  EXPECT_TRUE(Accepts(T("needle"), expr));
  EXPECT_FALSE(Accepts(T("a(b, needle(c))"), expr));  // not a leaf
  EXPECT_FALSE(Accepts(T("a(b, c)"), expr));
}

TEST(CaterpillarAccepts, FirstLastTests) {
  Tree t = T("a(b, c, d)");
  EXPECT_TRUE(Accepts(t, "down isfirst b"));
  EXPECT_FALSE(Accepts(t, "down isfirst c"));
  EXPECT_TRUE(Accepts(t, "down right right islast d"));
  EXPECT_TRUE(Accepts(t, "isfirst islast a"));  // the root is both
}

TEST(CaterpillarAccepts, AlternationBranches) {
  const char* expr = "down (b | c) isleaf";
  EXPECT_TRUE(Accepts(T("a(b)"), expr));
  EXPECT_TRUE(Accepts(T("a(c)"), expr));
  EXPECT_FALSE(Accepts(T("a(d)"), expr));
}

TEST(CaterpillarAccepts, EpsilonMatchesImmediately) {
  EXPECT_TRUE(Accepts(T("a"), "()"));
  EXPECT_TRUE(Accepts(T("a"), "()*"));
}

TEST(CaterpillarAccepts, ErrorsOnEmptyTree) {
  EXPECT_FALSE(CaterpillarAccepts(Tree(), C("isroot")).ok());
}

TEST(CaterpillarSelect, CollectsEndNodes) {
  Tree t = T("a(b, c(d, e))");
  auto leaves = CaterpillarSelect(t, C("(down | right)* isleaf"), 0);
  ASSERT_TRUE(leaves.ok());
  EXPECT_EQ(*leaves, (std::vector<NodeId>{1, 3, 4}));
  auto from_c = CaterpillarSelect(t, C("down"), 2);
  ASSERT_TRUE(from_c.ok());
  EXPECT_EQ(*from_c, (std::vector<NodeId>{3}));
  EXPECT_FALSE(CaterpillarSelect(t, C("down"), 99).ok());
}

/// The caterpillar "some node labeled L" agrees with the tw program
/// HasLabelProgram on random trees — two tree-walking formalisms, one
/// language (the Section 1 lineage).
TEST(Caterpillar, AgreesWithHasLabelProgram) {
  auto program = HasLabelProgram("b");
  ASSERT_TRUE(program.ok());
  Caterpillar expr = C("(down | right)* b");
  std::mt19937 rng(31);
  RandomTreeOptions options;
  options.num_nodes = 20;
  options.labels = {"a", "b", "c"};
  options.attributes = {};
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = RandomTree(rng, options);
    auto walker = Accepts(*program, t);
    auto cat = CaterpillarAccepts(t, expr);
    ASSERT_TRUE(walker.ok() && cat.ok());
    EXPECT_EQ(*walker, *cat) << "trial " << trial;
  }
}

TEST(Caterpillar, ExhaustiveAgreementOnTinyTrees) {
  auto program = AllLeavesLabelProgram("b");
  ASSERT_TRUE(program.ok());
  // "not (some leaf is not b)" is inexpressible without complement;
  // instead check the dual language via the has-a-non-b-leaf
  // caterpillar and compare negated verdicts.
  Caterpillar bad_leaf = C("(down | right)* isleaf a");
  for (int n = 1; n <= 4; ++n) {
    for (const Tree& t : EnumerateTrees(n, {"a", "b"})) {
      auto walker = Accepts(*program, t);
      auto cat = CaterpillarAccepts(t, bad_leaf);
      ASSERT_TRUE(walker.ok() && cat.ok());
      EXPECT_EQ(*walker, !*cat) << PrintTerm(t);
    }
  }
}

TEST(Caterpillar, StatsCountPairs) {
  CaterpillarRunStats stats;
  Tree t = FullTree(2, 3);
  auto r = CaterpillarAccepts(t, C("(down | right)* isleaf"), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  EXPECT_GT(stats.pairs_explored, t.size());
}

}  // namespace
}  // namespace treewalk
