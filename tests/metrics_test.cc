// Tests for the metrics registry (src/common/metrics.h): counter
// exactness under thread hammering, histogram bucket boundaries and
// interpolated quantiles, registry identity/reset semantics, and the
// exact shape of the Prometheus text and JSON expositions.

#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace treewalk {
namespace {

#ifndef TREEWALK_METRICS_DISABLED

TEST(Counter, IncrementsAndFoldsShards) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Counter, ExactTotalUnderThreadHammer) {
  // The acceptance bar for the sharded design: concurrent increments
  // from more threads than shards must still fold to the exact total —
  // sharding may only spread contention, never lose updates.
  Counter c;
  constexpr int kThreads = 24;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddAndMonotoneMax) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  EXPECT_EQ(g.value(), 15);
  g.Add(-15);
  EXPECT_EQ(g.value(), 0);
  g.UpdateMax(7);
  g.UpdateMax(3);  // lower: ignored
  EXPECT_EQ(g.value(), 7);
  g.UpdateMax(9);
  EXPECT_EQ(g.value(), 9);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  // Exactly on a bound lands in that bucket (le semantics), just above
  // spills into the next one.
  h.Observe(0.0);
  h.Observe(1.0);
  h.Observe(1.0000001);
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(4.0000001);  // above the last bound: overflow (+Inf) bucket
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.counts.size(), 3u);
  EXPECT_EQ(s.counts[0], 2u);  // 0.0, 1.0
  EXPECT_EQ(s.counts[1], 2u);  // 1.0000001, 2.0
  EXPECT_EQ(s.counts[2], 1u);  // 4.0
  EXPECT_EQ(s.overflow, 1u);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0 + 1.0 + 1.0000001 + 2.0 + 4.0 + 4.0000001);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 50; ++i) h.Observe(5);    // bucket (0, 10]
  for (int i = 0; i < 30; ++i) h.Observe(15);   // bucket (10, 20]
  for (int i = 0; i < 20; ++i) h.Observe(30);   // bucket (20, 40]
  HistogramSnapshot s = h.Snapshot();
  // p50: rank 50 of 100 = last observation of the first bucket → its
  // upper bound by linear interpolation.
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  // p95: rank 95 → 15 of 20 into (20, 40] → 20 + 20·(15/20) = 35.
  EXPECT_DOUBLE_EQ(s.p95(), 35.0);
  // p99: rank 99 → 19 of 20 into (20, 40] → 20 + 20·(19/20) = 39.
  EXPECT_DOUBLE_EQ(s.p99(), 39.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Snapshot().p95(), 0.0);

  // All mass in the +Inf bucket clamps to the largest finite bound.
  Histogram overflow({1.0, 2.0});
  overflow.Observe(100);
  overflow.Observe(200);
  EXPECT_DOUBLE_EQ(overflow.Snapshot().p50(), 2.0);
  EXPECT_DOUBLE_EQ(overflow.Snapshot().p99(), 2.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry r;
  Counter* a = r.FindOrCreateCounter("reg_test_total", "help");
  Counter* b = r.FindOrCreateCounter("reg_test_total", "other help");
  EXPECT_EQ(a, b);  // same family + labels: one instrument
  Counter* ok =
      r.FindOrCreateCounter("reg_test_total", "help", {{"status", "ok"}});
  Counter* err =
      r.FindOrCreateCounter("reg_test_total", "help", {{"status", "err"}});
  EXPECT_NE(ok, err);
  EXPECT_NE(a, ok);
}

TEST(MetricsRegistry, ResetZeroesInPlaceWithoutInvalidatingPointers) {
  MetricsRegistry r;
  Counter* c = r.FindOrCreateCounter("reset_total", "help");
  Gauge* g = r.FindOrCreateGauge("reset_gauge", "help");
  Histogram* h = r.FindOrCreateHistogram("reset_hist", "help", {1.0});
  c->Increment(5);
  g->Set(5);
  h->Observe(0.5);
  r.ResetForTest();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->Snapshot().count, 0u);
  // The same pointers keep working after the reset.
  c->Increment();
  EXPECT_EQ(c->value(), 1);
  EXPECT_EQ(r.Snapshot().Value("reset_total"), 1);
}

TEST(MetricsSnapshot, FindAndValueByNameAndLabel) {
  MetricsRegistry r;
  r.FindOrCreateCounter("f_total", "h", {{"status", "a"}})->Increment(1);
  r.FindOrCreateCounter("f_total", "h", {{"status", "b"}})->Increment(2);
  MetricsSnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.Value("f_total", "a"), 1);
  EXPECT_EQ(snap.Value("f_total", "b"), 2);
  EXPECT_EQ(snap.Value("f_total"), 1);  // first registered
  EXPECT_EQ(snap.Value("absent_total"), 0);
  EXPECT_EQ(snap.Find("absent_total"), nullptr);
}

// Golden shape of the Prometheus text exposition (v0.0.4): HELP/TYPE
// once per family, labeled samples adjacent, histograms as cumulative
// le-buckets plus _sum/_count.  Byte-exact so a format regression can
// not slip past (external scrapers parse this).
TEST(MetricsSnapshot, PrometheusTextGolden) {
  MetricsRegistry r;
  r.FindOrCreateCounter("twq_jobs_total", "Jobs by status",
                        {{"status", "ok"}})
      ->Increment(3);
  r.FindOrCreateCounter("twq_jobs_total", "Jobs by status",
                        {{"status", "failed"}});
  r.FindOrCreateGauge("twq_running", "Running jobs")->Set(2);
  Histogram* h =
      r.FindOrCreateHistogram("twq_latency_ms", "Latency", {1.0, 5.0});
  h->Observe(0.5);
  h->Observe(3);
  h->Observe(100);

  const std::string expected =
      "# HELP twq_jobs_total Jobs by status\n"
      "# TYPE twq_jobs_total counter\n"
      "twq_jobs_total{status=\"ok\"} 3\n"
      "twq_jobs_total{status=\"failed\"} 0\n"
      "# HELP twq_running Running jobs\n"
      "# TYPE twq_running gauge\n"
      "twq_running 2\n"
      "# HELP twq_latency_ms Latency\n"
      "# TYPE twq_latency_ms histogram\n"
      "twq_latency_ms_bucket{le=\"1\"} 1\n"
      "twq_latency_ms_bucket{le=\"5\"} 2\n"
      "twq_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "twq_latency_ms_sum 103.5\n"
      "twq_latency_ms_count 3\n";
  EXPECT_EQ(r.Snapshot().ToPrometheusText(), expected);
}

TEST(MetricsSnapshot, JsonGolden) {
  MetricsRegistry r;
  r.FindOrCreateCounter("j_total", "h", {{"status", "ok"}})->Increment(7);
  Histogram* h = r.FindOrCreateHistogram("j_ms", "h", {10.0});
  h->Observe(5);
  h->Observe(5);

  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"j_total\", \"type\": \"counter\", "
      "\"labels\": {\"status\": \"ok\"}, \"value\": 7},\n"
      "    {\"name\": \"j_ms\", \"type\": \"histogram\", \"count\": 2, "
      "\"sum\": 10, \"p50\": 5, \"p95\": 10, \"p99\": 10, "
      "\"buckets\": [{\"le\": 10, \"count\": 2}, "
      "{\"le\": \"+Inf\", \"count\": 0}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(r.Snapshot().ToJson(), expected);
}

TEST(MetricsSnapshot, LabelValuesAreEscaped) {
  MetricsRegistry r;
  r.FindOrCreateCounter("esc_total", "h", {{"path", "a\"b\\c\nd"}})
      ->Increment();
  std::string text = r.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
}

TEST(ScopedLatencyUs, ObservesItsScope) {
  MetricsRegistry r;
  Histogram* h = r.FindOrCreateHistogram("scope_us", "h", LatencyBucketsUs());
  { ScopedLatencyUs timer(h); }
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GE(s.sum, 0.0);
}

TEST(LatencyBuckets, AreStrictlyIncreasing) {
  for (const std::vector<double>& bounds :
       {LatencyBucketsMs(), LatencyBucketsUs()}) {
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

#else  // TREEWALK_METRICS_DISABLED

TEST(MetricsDisabled, EverythingIsInertButLinks) {
  EXPECT_FALSE(kMetricsEnabled);
  MetricsRegistry& r = MetricsRegistry::Global();
  Counter* c = r.FindOrCreateCounter("noop_total", "h");
  c->Increment(100);
  EXPECT_EQ(c->value(), 0);
  EXPECT_TRUE(r.Snapshot().samples.empty());
  EXPECT_EQ(r.Snapshot().ToPrometheusText(), "");
}

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace
}  // namespace treewalk
