// Golden-file tests for `twq explain` (tools/twq.cc, docs/PLANNER.md).
// Everything explain prints outside the --timing section is a pure
// function of (tree, selector, flags), so the full output is held
// byte-for-byte against committed golden files — any change to the
// format, the cost model, or the estimates shows up as a reviewable
// golden diff.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace treewalk {
namespace {

#if defined(TREEWALK_TWQ_PATH) && defined(TREEWALK_SOURCE_DIR)

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs `twq explain <args>` from the source root, captures stdout,
/// and asserts exit 0.
std::string Explain(const std::string& args) {
  // Per-process output name: ctest runs each TEST as its own process
  // in parallel, and a shared scratch file would interleave captures.
  const std::string out = ::testing::TempDir() + "explain_out." +
                          std::to_string(::getpid()) + ".txt";
  const std::string cmd = std::string("cd ") + TREEWALK_SOURCE_DIR + " && " +
                          TREEWALK_TWQ_PATH + " explain " + args + " > " +
                          out + " 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd << "\n" << ReadWholeFile(out);
  return ReadWholeFile(out);
}

std::string Golden(const std::string& name) {
  return ReadWholeFile(std::string(TREEWALK_SOURCE_DIR) + "/tests/golden/" +
                       name);
}

TEST(ExplainGolden, SelectorPlanMatchesGoldenFile) {
  const std::string got = Explain(
      "examples/trees/uniform.term --selector "
      "'exists z ((desc(x, y) & E(y, z)) & lab(z, a))' --evals");
  EXPECT_EQ(got, Golden("explain_selector.txt"));
}

TEST(ExplainGolden, ProgramSelectorsMatchGoldenFile) {
  const std::string got = Explain(
      "examples/trees/uniform.term --program examples/programs/example32.twp");
  EXPECT_EQ(got, Golden("explain_program.txt"));
}

TEST(ExplainGolden, XPathPlanMatchesGoldenFile) {
  const std::string got =
      Explain("examples/trees/uniform.term --xpath '//*' --evals");
  EXPECT_EQ(got, Golden("explain_xpath.txt"));
}

TEST(ExplainGolden, OutputIsDeterministic) {
  const std::string args =
      "examples/trees/uniform.term --selector 'desc(x, y)' --evals";
  EXPECT_EQ(Explain(args), Explain(args));
}

TEST(ExplainGolden, FixedModeReportsLegacyChoice) {
  const std::string got = Explain(
      "examples/trees/uniform.term --selector 'desc(x, y)' --plan fixed");
  EXPECT_NE(got.find("fixed mode: legacy heuristics"), std::string::npos)
      << got;
  // 6 nodes is far under kDenseAxisNodeLimit: legacy resolves to dense.
  EXPECT_NE(got.find("plan: compiled-dense"), std::string::npos) << got;
}

TEST(ExplainGolden, RejectsBadInvocations) {
  const std::string devnull = " >/dev/null 2>&1";
  const std::string base =
      std::string("cd ") + TREEWALK_SOURCE_DIR + " && " + TREEWALK_TWQ_PATH;
  // No selector source, two selector sources, unknown flag value.
  EXPECT_NE(std::system((base + " explain examples/trees/uniform.term" +
                         devnull).c_str()),
            0);
  EXPECT_NE(std::system((base +
                         " explain examples/trees/uniform.term --selector "
                         "'desc(x, y)' --xpath '//*'" + devnull).c_str()),
            0);
  EXPECT_NE(std::system((base +
                         " explain examples/trees/uniform.term --selector "
                         "'desc(x, y)' --plan sometimes" + devnull).c_str()),
            0);
}

#endif  // TREEWALK_TWQ_PATH && TREEWALK_SOURCE_DIR

}  // namespace
}  // namespace treewalk
