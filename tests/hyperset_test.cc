#include <gtest/gtest.h>

#include <random>

#include "src/hyperset/hyperset.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

TEST(Hyperset, AtomsAreCanonical) {
  Hyperset h = Hyperset::Atoms({5, 3, 5, 9});
  EXPECT_EQ(h.level(), 1);
  EXPECT_EQ(h.atoms(), (std::vector<DataValue>{3, 5, 9}));
  EXPECT_EQ(h, Hyperset::Atoms({9, 3, 5}));
}

TEST(Hyperset, OfBuildsHigherLevels) {
  auto h = Hyperset::Of({Hyperset::Atoms({1 + 4}), Hyperset::Atoms({})});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->level(), 2);
  EXPECT_EQ(h->size(), 2u);
  // Duplicates collapse.
  auto dup = Hyperset::Of({Hyperset::Atoms({5}), Hyperset::Atoms({5})});
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->size(), 1u);
}

TEST(Hyperset, OfRejectsMixedLevelsAndEmpty) {
  auto two = Hyperset::Of({Hyperset::Atoms({5})});
  ASSERT_TRUE(two.ok());
  EXPECT_FALSE(Hyperset::Of({Hyperset::Atoms({5}), *two}).ok());
  EXPECT_FALSE(Hyperset::Of({}).ok());
}

TEST(Hyperset, ToString) {
  EXPECT_EQ(Hyperset::Atoms({7, 5}).ToString(), "{5, 7}");
  auto nested = Hyperset::Of({Hyperset::Atoms({5})});
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->ToString(), "{{5}}");
  EXPECT_EQ(Hyperset(3).ToString(), "{}");
}

TEST(EncodeHyperset, Level1) {
  EXPECT_EQ(EncodeHyperset(Hyperset::Atoms({7, 5})),
            (std::vector<DataValue>{1, 5, 7}));
  EXPECT_EQ(EncodeHyperset(Hyperset::Atoms({})),
            (std::vector<DataValue>{1}));
}

TEST(EncodeHyperset, Level2) {
  auto h = Hyperset::Of({Hyperset::Atoms({5}), Hyperset::Atoms({6, 7})});
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(EncodeHyperset(*h),
            (std::vector<DataValue>{2, 1, 5, 2, 1, 6, 7}));
  EXPECT_TRUE(EncodeHyperset(Hyperset(2)).empty());
}

TEST(DecodeHyperset, RoundTripsAllSmallHypersets) {
  const std::vector<DataValue> domain = {5, 6, 7};
  for (int level = 1; level <= 3; ++level) {
    std::vector<Hyperset> all = EnumerateHypersets(
        level, level == 3 ? std::vector<DataValue>{5} : domain);
    for (const Hyperset& h : all) {
      auto back = DecodeHyperset(level, EncodeHyperset(h));
      ASSERT_TRUE(back.ok()) << h.ToString() << ": " << back.status();
      EXPECT_EQ(*back, h) << h.ToString();
    }
  }
}

TEST(DecodeHyperset, RejectsMalformedEncodings) {
  // Missing the level-1 marker.
  EXPECT_FALSE(DecodeHyperset(1, {5, 6}).ok());
  // Atom colliding with a marker (2 is a marker at level 2).
  EXPECT_FALSE(DecodeHyperset(2, {2, 1, 5, 2}).ok());
  // Level-2 marker alone without a member encoding.
  EXPECT_FALSE(DecodeHyperset(2, {2}).ok());
  // Trailing garbage after a level-1 encoding... is impossible (all
  // values are atoms); at level 2, a stray atom before any marker:
  EXPECT_FALSE(DecodeHyperset(2, {5}).ok());
}

TEST(DecodeHyperset, AcceptsNonCanonicalMemberOrder) {
  // {{5},{6}} encoded with members out of order decodes canonically.
  auto h = DecodeHyperset(2, {2, 1, 6, 2, 1, 5});
  ASSERT_TRUE(h.ok());
  auto expected = Hyperset::Of({Hyperset::Atoms({5}), Hyperset::Atoms({6})});
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*h, *expected);
}

TEST(EnumerateHypersets, TowerCounts) {
  const std::vector<DataValue> domain = {5, 6};
  // exp_1(2) = 4 subsets; exp_2(2) = 2^4 = 16; exp_3(2) = 2^16.
  EXPECT_EQ(EnumerateHypersets(1, domain).size(), 4u);
  EXPECT_EQ(EnumerateHypersets(2, domain).size(), 16u);
  // All distinct.
  auto two = EnumerateHypersets(2, domain);
  for (std::size_t i = 1; i < two.size(); ++i) {
    EXPECT_NE(two[i - 1], two[i]);
  }
}

TEST(InLm, Level1) {
  const DataValue kHash = -1;
  auto f = EncodeHyperset(Hyperset::Atoms({5, 7}));
  auto g1 = EncodeHyperset(Hyperset::Atoms({7, 5}));
  auto g2 = EncodeHyperset(Hyperset::Atoms({5, 8}));
  EXPECT_TRUE(InLm(1, SplitString(f, g1, kHash), kHash));
  EXPECT_FALSE(InLm(1, SplitString(f, g2, kHash), kHash));
  // No separator / two separators.
  EXPECT_FALSE(InLm(1, f, kHash));
  auto two_hash = SplitString(f, SplitString(f, g1, kHash), kHash);
  EXPECT_FALSE(InLm(1, two_hash, kHash));
  // Malformed halves.
  EXPECT_FALSE(InLm(1, SplitString({5}, g1, kHash), kHash));
}

TEST(InLm, Level2) {
  const DataValue kHash = -1;
  auto a = Hyperset::Of({Hyperset::Atoms({5}), Hyperset::Atoms({6})});
  auto b = Hyperset::Of({Hyperset::Atoms({5, 6})});
  ASSERT_TRUE(a.ok() && b.ok());
  auto fa = EncodeHyperset(*a);
  auto fb = EncodeHyperset(*b);
  EXPECT_TRUE(InLm(2, SplitString(fa, fa, kHash), kHash));
  EXPECT_FALSE(InLm(2, SplitString(fa, fb, kHash), kHash));
  // Note: {5} union {6} and {5,6} have the same flat symbol set -- only
  // the nesting distinguishes them, which is the census's point.
}

TEST(L1Sentence, AgreesWithInLmOnLevel1) {
  const DataValue kHash = -1;
  auto sentence = ParseFormula(L1Sentence(kHash));
  ASSERT_TRUE(sentence.ok()) << sentence.status();

  const std::vector<DataValue> domain = {5, 6, 7};
  std::vector<Hyperset> all = EnumerateHypersets(1, domain);
  for (const Hyperset& x : all) {
    for (const Hyperset& y : all) {
      std::vector<DataValue> s =
          SplitString(EncodeHyperset(x), EncodeHyperset(y), kHash);
      Tree t = StringTree(s);
      auto fo = EvalTreeSentence(t, *sentence);
      ASSERT_TRUE(fo.ok()) << fo.status();
      EXPECT_EQ(*fo, InLm(1, s, kHash))
          << x.ToString() << " # " << y.ToString();
    }
  }
}

TEST(L1Sentence, RejectsFormatViolations) {
  const DataValue kHash = -1;
  auto sentence = ParseFormula(L1Sentence(kHash));
  ASSERT_TRUE(sentence.ok());
  // Missing marker at the front.
  std::vector<std::vector<DataValue>> bad = {
      {5, kHash, 1, 5},        // f does not start with 1
      {1, 5, kHash, 5},        // g does not start with 1
      {1, 5},                  // no separator
      {1, kHash, 1, kHash, 1},  // two separators
      {1, 5, 1, kHash, 1, 5},  // stray marker inside f
  };
  for (const auto& s : bad) {
    Tree t = StringTree(s);
    auto fo = EvalTreeSentence(t, *sentence);
    ASSERT_TRUE(fo.ok());
    EXPECT_FALSE(*fo) << ::testing::PrintToString(s);
    EXPECT_FALSE(InLm(1, s, kHash));
  }
}

}  // namespace
}  // namespace treewalk
