#include <gtest/gtest.h>

#include "src/tree/delimited.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

TEST(Delimit, PaperExampleShape) {
  // Section 3's example: t = a(b, c, d).
  auto t = ParseTerm("a(b, c, d)");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  // #top(#open, a(#open, b(#leaf), c(#leaf), d(#leaf), #close), #close)
  EXPECT_EQ(PrintTerm(d.tree),
            "#top(#open, a(#open, b(#leaf), c(#leaf), d(#leaf), #close), "
            "#close)");
}

TEST(Delimit, SingleNodeTree) {
  auto t = ParseTerm("a");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  EXPECT_EQ(PrintTerm(d.tree), "#top(#open, a(#leaf), #close)");
}

TEST(Delimit, MappingIsConsistentBothWays) {
  auto t = ParseTerm("a(b(c), d)");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  ASSERT_EQ(d.to_delimited.size(), t->size());
  ASSERT_EQ(d.to_original.size(), d.tree.size());
  for (NodeId u = 0; u < static_cast<NodeId>(t->size()); ++u) {
    NodeId v = d.to_delimited[static_cast<std::size_t>(u)];
    ASSERT_NE(v, kNoNode);
    EXPECT_EQ(d.to_original[static_cast<std::size_t>(v)], u);
    EXPECT_EQ(d.tree.LabelName(d.tree.label(v)), t->LabelName(t->label(u)));
  }
}

TEST(Delimit, DelimiterCountIsLinear) {
  // Every original node contributes exactly 2 delimiters (#open/#close or
  // a single #leaf... leaves contribute 1), plus 3 for the top wrapper.
  auto t = ParseTerm("a(b, c(d, e), f)");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  std::size_t leaves = 4;     // b, d, e, f
  std::size_t internal = 2;   // a, c
  EXPECT_EQ(d.tree.size(), t->size() + leaves + 2 * internal + 3);
}

TEST(Delimit, AttributesCopiedAndDelimitersCarryBottom) {
  auto t = ParseTerm("a[x=3](b[x=7])");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  AttrId x = d.tree.FindAttribute("x");
  ASSERT_NE(x, kNoAttr);
  for (NodeId v = 0; v < static_cast<NodeId>(d.tree.size()); ++v) {
    if (d.IsDelimiter(v)) {
      EXPECT_EQ(d.tree.attr(x, v), kBottom);
    }
  }
  NodeId a = d.to_delimited[0];
  NodeId b = d.to_delimited[1];
  EXPECT_EQ(d.tree.attr(x, a), 3);
  EXPECT_EQ(d.tree.attr(x, b), 7);
}

TEST(Delimit, WalkVisibleTests) {
  auto t = ParseTerm("a(b(c), d)");
  ASSERT_TRUE(t.ok());
  DelimitedTree d = Delimit(*t);
  const Tree& dt = d.tree;
  // An original leaf's first child is #leaf.
  NodeId c = d.to_delimited[2];
  ASSERT_NE(dt.FirstChild(c), kNoNode);
  EXPECT_EQ(dt.LabelName(dt.label(dt.FirstChild(c))), kLeafLabel);
  // An original first child's left sibling is #open.
  NodeId b = d.to_delimited[1];
  EXPECT_EQ(dt.LabelName(dt.label(dt.PrevSibling(b))), kOpenLabel);
  // An original last child's right sibling is #close.
  NodeId dd = d.to_delimited[3];
  EXPECT_EQ(dt.LabelName(dt.label(dt.NextSibling(dd))), kCloseLabel);
  // The original root sits under #top.
  NodeId a = d.to_delimited[0];
  EXPECT_EQ(dt.LabelName(dt.label(dt.Parent(a))), kTopLabel);
}

TEST(IsDelimiterLabel, RecognizesAllFour) {
  EXPECT_TRUE(IsDelimiterLabel(kTopLabel));
  EXPECT_TRUE(IsDelimiterLabel(kOpenLabel));
  EXPECT_TRUE(IsDelimiterLabel(kCloseLabel));
  EXPECT_TRUE(IsDelimiterLabel(kLeafLabel));
  EXPECT_FALSE(IsDelimiterLabel("a"));
  EXPECT_FALSE(IsDelimiterLabel("#other"));
}

}  // namespace
}  // namespace treewalk
