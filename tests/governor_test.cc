// Tests for the per-job resource governor (src/common/governor.h): the
// memory accountant's bookkeeping, deadline polling, the governed axis
// index, and end-to-end enforcement through the interpreter — a wall
// clock that stops a non-terminating run and a byte budget that stops a
// selector compilation from materializing large relation matrices.

#include "src/common/governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/automata/builder.h"
#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

TEST(MemoryAccountant, ChargesAndReleasesByCategory) {
  MemoryAccountant accountant(1000);
  EXPECT_TRUE(accountant.Charge(MemoryCategory::kAxisIndex, 300).ok());
  EXPECT_TRUE(accountant.Charge(MemoryCategory::kStore, 200).ok());
  EXPECT_EQ(accountant.used(), 500);
  EXPECT_EQ(accountant.used(MemoryCategory::kAxisIndex), 300);
  EXPECT_EQ(accountant.used(MemoryCategory::kStore), 200);
  accountant.Release(MemoryCategory::kStore, 200);
  EXPECT_EQ(accountant.used(), 300);
  EXPECT_EQ(accountant.peak(), 500);
  EXPECT_FALSE(accountant.tripped());
}

TEST(MemoryAccountant, RejectsChargeOverBudgetAndLatches) {
  MemoryAccountant accountant(100);
  EXPECT_TRUE(accountant.Charge(MemoryCategory::kCycleMemo, 80).ok());
  Status status = accountant.Charge(MemoryCategory::kTrace, 21);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Failed charges are not recorded.
  EXPECT_EQ(accountant.used(), 80);
  EXPECT_EQ(accountant.used(MemoryCategory::kTrace), 0);
  EXPECT_TRUE(accountant.tripped());
  // A fitting charge still succeeds after a trip; tripped() stays set.
  EXPECT_TRUE(accountant.Charge(MemoryCategory::kTrace, 10).ok());
  EXPECT_TRUE(accountant.tripped());
}

TEST(MemoryAccountant, BreakdownNamesChargedCategories) {
  MemoryAccountant accountant(1 << 20);
  ASSERT_TRUE(accountant.Charge(MemoryCategory::kSelectorCache, 4096).ok());
  ASSERT_TRUE(accountant.Charge(MemoryCategory::kCycleMemo, 100).ok());
  std::string breakdown = accountant.Breakdown();
  // Zero categories are omitted to keep the message readable.
  for (MemoryCategory c :
       {MemoryCategory::kSelectorCache, MemoryCategory::kCycleMemo}) {
    EXPECT_NE(breakdown.find(MemoryCategoryName(c)), std::string::npos)
        << breakdown;
  }
  EXPECT_EQ(breakdown.find(MemoryCategoryName(MemoryCategory::kTrace)),
            std::string::npos)
      << breakdown;
  // The rejection message carries the breakdown.
  Status status = accountant.Charge(MemoryCategory::kAxisIndex, 2 << 20);
  ASSERT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find(
                MemoryCategoryName(MemoryCategory::kAxisIndex)),
            std::string::npos)
      << status;
}

TEST(MemoryAccountant, NonPositiveBudgetMeansUnlimited) {
  MemoryAccountant accountant(0);
  EXPECT_TRUE(
      accountant.Charge(MemoryCategory::kStore, std::int64_t{1} << 40).ok());
  EXPECT_EQ(accountant.used(), std::int64_t{1} << 40);
  EXPECT_FALSE(accountant.tripped());
}

TEST(MemoryAccountant, ReleaseClampsAtZero) {
  MemoryAccountant accountant(100);
  ASSERT_TRUE(accountant.Charge(MemoryCategory::kTrace, 10).ok());
  accountant.Release(MemoryCategory::kTrace, 50);
  EXPECT_EQ(accountant.used(), 0);
  EXPECT_EQ(accountant.used(MemoryCategory::kTrace), 0);
}

TEST(ResourceGovernor, DefaultIsUnlimited) {
  ResourceGovernor governor;
  EXPECT_FALSE(governor.has_deadline());
  EXPECT_EQ(governor.accountant(), nullptr);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(governor.CheckDeadline().ok());
  }
  EXPECT_TRUE(governor.CheckDeadlineNow().ok());
  EXPECT_TRUE(governor.Charge(MemoryCategory::kStore, 1 << 30).ok());
}

TEST(ResourceGovernor, ExpiredDeadlineFailsNowAndWithinOneStride) {
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(governor.CheckDeadlineNow().code(),
            StatusCode::kDeadlineExceeded);
  // The strided poll reads the clock at least every 64 calls.
  Status last = Status::Ok();
  for (int i = 0; i < 64 && last.ok(); ++i) last = governor.CheckDeadline();
  EXPECT_EQ(last.code(), StatusCode::kDeadlineExceeded);
}

TEST(ResourceGovernor, NullSafeHelpersAreNoOps) {
  EXPECT_TRUE(GovernorCheckDeadline(nullptr).ok());
  EXPECT_TRUE(GovernorCheckDeadlineNow(nullptr).ok());
  EXPECT_TRUE(GovernorCharge(nullptr, MemoryCategory::kStore, 1).ok());
  GovernorRelease(nullptr, MemoryCategory::kStore, 1);
}

TEST(ScopedMemoryCharge, ReleasesOnScopeExit) {
  ResourceGovernor governor;
  governor.set_memory_budget(1000);
  {
    ScopedMemoryCharge scoped(&governor, MemoryCategory::kCycleMemo);
    ASSERT_TRUE(scoped.Add(400).ok());
    ASSERT_TRUE(scoped.Add(300).ok());
    EXPECT_EQ(governor.accountant()->used(), 700);
    // A rejected Add is not remembered and must not be released.
    EXPECT_FALSE(scoped.Add(400).ok());
  }
  EXPECT_EQ(governor.accountant()->used(), 0);
  EXPECT_EQ(governor.accountant()->peak(), 700);
}

TEST(AxisIndex, TinyBudgetFailsConstructionStickily) {
  Tree t = FullTree(2, 6);
  ResourceGovernor governor;
  governor.set_memory_budget(16);  // smaller than one label bitset
  AxisIndex index(t, &governor);
  EXPECT_EQ(index.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(index.TryEdgeMatrix().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(index.TryDescendantMatrix().status().code(),
            StatusCode::kResourceExhausted);
}

TEST(AxisIndex, GovernedMatrixChargesAndTripsBudget) {
  Tree t = FullTree(2, 7);  // 255 nodes: one matrix is ~8KiB
  ResourceGovernor governor;
  governor.set_memory_budget(64 << 10);
  AxisIndex index(t, &governor);
  ASSERT_TRUE(index.status().ok());
  std::int64_t base = governor.accountant()->used();
  auto edge = index.TryEdgeMatrix();
  ASSERT_TRUE(edge.ok()) << edge.status();
  EXPECT_GT(governor.accountant()->used(MemoryCategory::kAxisIndex), 0);
  EXPECT_GT(governor.accountant()->used(), base);
  // Memoized: a second request charges nothing further.
  std::int64_t after_first = governor.accountant()->used();
  ASSERT_TRUE(index.TryEdgeMatrix().ok());
  EXPECT_EQ(governor.accountant()->used(), after_first);

  // Exhaust the budget with the remaining matrices: eventually a Try
  // accessor reports kResourceExhausted while earlier ones stay valid.
  ResourceGovernor small;
  small.set_memory_budget(
      governor.accountant()->used() + index.MatrixBytes() / 2);
  AxisIndex tight(t, &small);
  ASSERT_TRUE(tight.status().ok());
  ASSERT_TRUE(tight.TryEdgeMatrix().ok());
  EXPECT_EQ(tight.TryDescendantMatrix().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(small.accountant()->tripped());
}

/// The acceptance-criteria scenario's first leg: an (effectively)
/// non-terminating run — the EXPTIME counter with cycle detection off —
/// is stopped by the wall-clock deadline, not by max_steps.
TEST(GovernedInterpreter, DeadlineStopsNonTerminatingRun) {
  Program p = std::move(ExponentialCounterProgram()).value();
  Tree t = FullTree(1, 29);
  AssignUniqueIds(t);
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::milliseconds(150));
  RunOptions options;
  options.max_steps = std::int64_t{1} << 60;
  options.detect_cycles = false;
  options.governor = &governor;
  auto start = std::chrono::steady_clock::now();
  Interpreter interpreter(p, options);
  auto run = interpreter.Run(t);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status();
  // Generous bound: the poll is strided, but 64 transitions are far
  // below a second.
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

TEST(GovernedInterpreter, DeadlineLeavesFastRunsUntouched) {
  Program p = std::move(HasLabelProgram("a")).value();
  Tree t = FullTree(2, 3);
  RunResult plain = std::move(Interpreter(p).Run(t)).value();
  ResourceGovernor governor;
  governor.set_deadline_after(std::chrono::seconds(60));
  RunOptions options;
  options.governor = &governor;
  RunResult governed = std::move(Interpreter(p, options).Run(t)).value();
  EXPECT_EQ(governed.accepted, plain.accepted);
  EXPECT_EQ(governed.stats.steps, plain.stats.steps);
}

/// A quantifier-depth-2 selector over a wide tree: the compiled
/// evaluator wants descendant matrices whose footprint exceeds the
/// budget, so the run stops with kResourceExhausted (a compile-time
/// budget trip is a hard error — falling back to the reference
/// evaluator would evade the limit).
TEST(GovernedInterpreter, MemoryBudgetTripsOnWideTreeSelectors) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  // FO(exists*) with quantifier depth 2; after the compiler's
  // miniscoping every subformula has width <= 2, so the compiled path
  // is taken — and its desc atom wants the full n^2 matrix.
  const char* selector =
      "exists z exists w (desc(x, y) & E(z, y) & E(w, z))";
  b.OnLookAhead("#top", "q0", "true", "q1", "X1", selector, "p");
  b.OnMove("#top", "q1", "true", "qf", Move::kStay);
  b.OnMove("*", "p", "true", "qf", Move::kStay);
  Program p = std::move(b.Build()).value();

  std::mt19937 rng(5);
  RandomTreeOptions tree_options;
  tree_options.num_nodes = 2000;
  tree_options.labels = {"a", "b"};
  Tree t = RandomTree(rng, tree_options);

  // Ungoverned: the selector evaluates fine.
  RunResult plain = std::move(Interpreter(p).Run(t)).value();

  ResourceGovernor governor;
  governor.set_memory_budget(64 << 10);  // far below one 2000^2 matrix
  RunOptions options;
  options.governor = &governor;
  Interpreter interpreter(p, options);
  auto run = interpreter.Run(t);
  ASSERT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status();
  EXPECT_TRUE(governor.accountant()->tripped());
  EXPECT_NE(run.status().message().find("axis-index"), std::string::npos)
      << run.status();

  // A budget that fits changes nothing about the verdict.
  ResourceGovernor roomy;
  roomy.set_memory_budget(std::int64_t{1} << 30);
  options.governor = &roomy;
  RunResult governed = std::move(Interpreter(p, options).Run(t)).value();
  EXPECT_EQ(governed.accepted, plain.accepted);
  EXPECT_EQ(governed.stats.steps, plain.stats.steps);
  EXPECT_FALSE(roomy.accountant()->tripped());
  EXPECT_GT(roomy.accountant()->peak(), 0);
}

/// Cycle-memo charges are scoped to one computation: a program that
/// visits many configurations under cycle detection charges and then
/// releases, so used() returns to the baseline after the run.
TEST(GovernedInterpreter, CycleMemoChargesAreReleasedAfterTheRun) {
  Program p = std::move(ParityProgram("a")).value();
  Tree t = FullTree(2, 5);
  ResourceGovernor governor;
  governor.set_memory_budget(std::int64_t{1} << 30);
  RunOptions options;
  options.governor = &governor;
  RunResult run = std::move(Interpreter(p, options).Run(t)).value();
  EXPECT_TRUE(run.accepted || !run.accepted);  // ran to a verdict
  EXPECT_EQ(governor.accountant()->used(MemoryCategory::kCycleMemo), 0);
  EXPECT_GT(governor.accountant()->peak(), 0);
}

}  // namespace
}  // namespace treewalk
