// Known-answer vectors and framing-helper checks for the shared CRC32C
// module (src/common/crc32c.h).  The vectors pin the polynomial and
// bit-reflection conventions: a table regenerated with the wrong
// polynomial (e.g. plain CRC32 0xEDB88320) passes every round-trip test
// in the repo while silently breaking compatibility of all on-disk
// formats — only fixed expected values catch that.

#include "src/common/crc32c.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace treewalk {
namespace {

// RFC 3720 (iSCSI) appendix B.4 plus the classic check values used by
// every CRC catalogue for CRC-32C (Castagnoli).
TEST(Crc32c, KnownAnswerVectors) {
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("abc"), 0x364B3FB7u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
}

TEST(Crc32c, Rfc3720AllZeros) {
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
}

TEST(Crc32c, Rfc3720AllOnes) {
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32c, Rfc3720Incrementing) {
  std::string data(32, '\0');
  for (int i = 0; i < 32; ++i) data[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(data), 0x46DD794Eu);
}

TEST(Crc32c, ExtendComposesAtEverySplitPoint) {
  const std::string data = "123456789";
  const std::uint32_t whole = Crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const std::string_view a(data.data(), split);
    const std::string_view b(data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32cExtend(Crc32c(a), b), whole) << "split at " << split;
  }
}

TEST(Crc32c, ExtendWithEmptyIsIdentity) {
  const std::uint32_t crc = Crc32c("payload");
  EXPECT_EQ(Crc32cExtend(crc, ""), crc);
}

TEST(Crc32c, SingleBitFlipAlwaysDetected) {
  const std::string base = "treewalk snapshot section";
  const std::uint32_t good = Crc32c(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = base;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(corrupt), good) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32c, MatchesBitwiseReferenceOnRandomBuffers) {
  // A bit-by-bit model of the reflected 0x82F63B78 polynomial, checked
  // against the production routine on every length in [0, 200] plus a
  // megabyte buffer — exercises the word-folding loop (hardware or
  // slicing-by-8, whichever this host runs), its unaligned tail, and
  // the boundary between them.
  auto reference = [](std::string_view data) {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (char c : data) {
      crc ^= static_cast<unsigned char>(c);
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
    }
    return crc ^ 0xFFFFFFFFu;
  };
  std::string buf;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<char>(state >> 56);
  };
  for (std::size_t len = 0; len <= 200; ++len) {
    ASSERT_EQ(Crc32c(buf), reference(buf)) << "len=" << len;
    buf.push_back(next());
  }
  std::string big(1 << 20, '\0');
  for (char& c : big) c = next();
  EXPECT_EQ(Crc32c(big), reference(big));
  // Extend across an odd split of the big buffer too.
  EXPECT_EQ(Crc32cExtend(Crc32c(big.substr(0, 12345)),
                         std::string_view(big).substr(12345)),
            Crc32c(big));
}

TEST(LeFraming, PutGetRoundTrip) {
  std::string out;
  PutU32Le(0xDEADBEEFu, out);
  PutU64Le(0x0123456789ABCDEFull, out);
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(GetU32Le(out, 0), 0xDEADBEEFu);
  EXPECT_EQ(GetU64Le(out, 4), 0x0123456789ABCDEFull);
  // Byte order is little-endian on every platform by construction.
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0xEFu);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0xDEu);
}

TEST(Fnv1a64, StableReferenceValues) {
  // Canonical FNV-1a test vectors; these must never change across
  // platforms or releases — persistent cache keys depend on them.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, SeedChainsLikeConcatenation) {
  EXPECT_EQ(Fnv1a64("bar", Fnv1a64("foo")), Fnv1a64("foobar"));
}

}  // namespace
}  // namespace treewalk
