// Chaos suite for `twq serve` (ISSUE acceptance gate): a 64-connection
// fleet hammers an in-process QueryServer with a adversarial mix —
// valid queries, garbage bytes, oversized length prefixes, half-written
// frames, abrupt resets — while the failpoint sites
// server/{accept,read,write,dispatch} inject faults, and a SIGTERM
// lands mid-flight.  The server must neither crash nor hang nor send a
// wrong or undecodable answer, and after the drain its books must
// reconcile *exactly*:
//
//   admitted == served_ok + served_error + drained
//
// Runs under ASan (label asan-focus) and TSan (label threaded) in CI.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/engine/input_cache.h"
#include "src/engine/shutdown.h"
#include "src/server/frame.h"
#include "src/server/server.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "tests/serve_test_util.h"

namespace treewalk {
namespace {

using serve_test::kAcceptAllProgram;
using serve_test::kScanProgram;
using serve_test::QueryFrame;
using serve_test::ReadFrame;
using serve_test::WriteAll;

constexpr int kFleet = 64;
constexpr auto kChaosDuration = std::chrono::milliseconds(400);

struct ClientTally {
  std::int64_t ok_accepted = 0;
  std::int64_t ok_rejected = 0;       // semantic REJECT (still served ok)
  std::int64_t engine_errors = 0;  // deadline/budget/not-found/rejected
  std::int64_t internal = 0;       // kInternal: engine fault OR injected
                                   // server/read|write boundary fault
  std::int64_t overloaded = 0;
  std::int64_t draining = 0;
  std::int64_t cancelled = 0;
  std::int64_t invalid = 0;           // typed replies to our own garbage
  std::int64_t pongs = 0;
  std::int64_t stats_ok = 0;
  std::int64_t transport_errors = 0;  // resets, EOFs, timeouts
  std::int64_t undecodable_frames = 0;  // must stay zero
  std::int64_t wrong_answers = 0;       // must stay zero
  std::int64_t queue_bound_violations = 0;  // must stay zero
};

/// xorshift64*: deterministic per-thread chaos schedule.
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

int ConnectWithTimeout(int port) {
  int fd = serve_test::Connect(port);
  if (fd < 0) return fd;
  struct timeval tv = {};
  tv.tv_sec = 3;  // never let a chaos client hang on a dead read
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailpointRegistry::Global().DisableAll();
    if (kMetricsEnabled) MetricsRegistry::Global().ResetForTest();
  }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

/// One chaos client: loops a randomized action mix until `stop`,
/// reconnecting after every transport error or deliberate reset.
void ChaosClient(int port, int seed, const ServerOptions& options,
                 const std::atomic<bool>& stop, ClientTally& tally) {
  std::uint64_t rng = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                                  seed + 1);
  int fd = -1;
  auto reset = [&fd] {
    if (fd >= 0) close(fd);
    fd = -1;
  };
  while (!stop.load(std::memory_order_acquire)) {
    if (fd < 0) {
      fd = ConnectWithTimeout(port);
      if (fd < 0) {
        // Accept backlog full, connection cap hit, or listener gone
        // (drain): back off and retry until told to stop.
        ++tally.transport_errors;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
    }

    std::uint64_t roll = NextRand(rng) % 100;
    if (roll < 55) {
      // Valid query; tiny deadlines are part of the chaos.
      const bool scan = (NextRand(rng) % 4) == 0;
      const char* tree = (NextRand(rng) % 3) ? "small" : "mid";
      std::uint32_t deadline_ms =
          (NextRand(rng) % 8) ? 0 : static_cast<std::uint32_t>(1);
      std::string request =
          QueryFrame(tree, scan ? kScanProgram : kAcceptAllProgram,
                     deadline_ms);
      MessageType type;
      std::string body;
      if (!WriteAll(fd, request) || !ReadFrame(fd, type, body)) {
        ++tally.transport_errors;
        reset();
        continue;
      }
      if (type == MessageType::kQueryResult) {
        Result<QueryResultMsg> result = DecodeQueryResult(body);
        if (!result.ok()) {
          ++tally.undecodable_frames;
        } else if (scan ? result->accepted : !result->accepted) {
          // accept-all must accept; the needle scan must reject.
          ++tally.wrong_answers;
        } else {
          ++(result->accepted ? tally.ok_accepted : tally.ok_rejected);
        }
      } else if (type == MessageType::kError) {
        Result<ErrorMsg> error = DecodeError(body);
        if (!error.ok()) {
          ++tally.undecodable_frames;
        } else {
          switch (error->code) {
            case WireError::kOverloaded: ++tally.overloaded; break;
            case WireError::kDraining: ++tally.draining; break;
            case WireError::kCancelled: ++tally.cancelled; break;
            case WireError::kInvalidRequest: ++tally.invalid; break;
            case WireError::kInternal: ++tally.internal; break;
            default: ++tally.engine_errors; break;
          }
        }
      } else {
        ++tally.undecodable_frames;  // a non-response to a query
      }
    } else if (roll < 65) {
      MessageType type;
      std::string body;
      if (!WriteAll(fd, EncodeFrame(MessageType::kPing, "")) ||
          !ReadFrame(fd, type, body)) {
        ++tally.transport_errors;
        reset();
      } else if (type == MessageType::kPong) {
        ++tally.pongs;
      } else if (type == MessageType::kError && DecodeError(body).ok()) {
        ++tally.internal;  // injected server/read boundary fault
        reset();           // the server closes after an injected fault
      } else {
        ++tally.undecodable_frames;
      }
    } else if (roll < 72) {
      MessageType type;
      std::string body;
      if (!WriteAll(fd, EncodeFrame(MessageType::kStats, "")) ||
          !ReadFrame(fd, type, body)) {
        ++tally.transport_errors;
        reset();
        continue;
      }
      if (type == MessageType::kError && DecodeError(body).ok()) {
        ++tally.internal;  // injected server/read boundary fault
        reset();
        continue;
      }
      Result<StatsMap> stats = DecodeStats(body);
      if (type != MessageType::kStatsResult || !stats.ok()) {
        ++tally.undecodable_frames;
        continue;
      }
      ++tally.stats_ok;
      // Live invariant: admission is bounded.  The gauge may transiently
      // overshoot max_queue by the number of connection threads caught
      // mid-shed (each bumps, observes, undoes), so the hard bound is
      // max_queue + max_connections; beyond that the admission gate has
      // a hole.
      if (stats->Value("server.inflight") >
          options.max_queue + options.max_connections) {
        ++tally.queue_bound_violations;
      }
    } else if (roll < 80) {
      // Garbage bytes (possibly a plausible length prefix).  Usually
      // reset immediately — the classic misbehaving client.
      std::string garbage(1 + NextRand(rng) % 8, '\0');
      for (char& c : garbage) c = static_cast<char>(NextRand(rng) & 0xff);
      (void)WriteAll(fd, garbage);
      if (NextRand(rng) % 2) {
        reset();
      } else {
        MessageType type;
        std::string body;
        if (ReadFrame(fd, type, body)) {
          if (type != MessageType::kError) ++tally.undecodable_frames;
        } else {
          ++tally.transport_errors;
        }
        reset();  // the stream is poisoned either way
      }
    } else if (roll < 88) {
      // Oversized length prefix: must come back typed, pre-allocation.
      MessageType type;
      std::string body;
      if (!WriteAll(fd, std::string(4, '\xff')) ||
          !ReadFrame(fd, type, body)) {
        ++tally.transport_errors;
      } else if (type != MessageType::kError) {
        ++tally.undecodable_frames;
      }
      reset();
    } else {
      // Half-written frame, then a hard reset mid-message.
      std::string request = QueryFrame("small", kAcceptAllProgram);
      (void)WriteAll(fd, request.substr(0, 4 + request.size() % 7));
      reset();
    }
  }
  reset();
}

TEST_F(ServeChaosTest, FleetSurvivesChaosAndBooksReconcileExactly) {
  ResidentTreeCache corpus(0);
  ASSERT_TRUE(
      corpus.GetOrLoad("small", [] { return ParseTerm("a(b(c), d[x=1])"); })
          .ok());
  ASSERT_TRUE(corpus
                  .GetOrLoad("mid",
                             []() -> Result<Tree> {
                               return Result<Tree>(FullTree(2, 9));
                             })
                  .ok());

  ServerOptions options;
  options.num_workers = 4;
  options.max_queue = 16;
  options.max_connections = kFleet + 16;
  options.io_timeout_ms = 500;  // reap poisoned streams quickly
  options.default_deadline_ms = 2000;
  options.drain_deadline_ms = 100;
  auto server = std::make_unique<QueryServer>(options, &corpus);
  ASSERT_TRUE(server->Start().ok());

  // Deterministic fault schedule at every server boundary: each site
  // fires a handful of times, then service continues.
  for (const char* site :
       {"server/accept", "server/read", "server/write", "server/dispatch"}) {
    FailpointRegistry::Config config;
    config.code = StatusCode::kInternal;
    config.message = "chaos";
    config.after = 3;
    config.max_fires = 5;
    FailpointRegistry::Global().Enable(site, config);
  }

  std::atomic<bool> stop{false};
  std::vector<ClientTally> tallies(kFleet);
  std::vector<std::thread> fleet;
  fleet.reserve(kFleet);
  for (int i = 0; i < kFleet; ++i) {
    fleet.emplace_back(ChaosClient, server->port(), i, std::cref(options),
                       std::cref(stop), std::ref(tallies[i]));
  }

  std::this_thread::sleep_for(kChaosDuration);

  // Mid-request SIGTERM, exactly as the twq driver handles it: the
  // latched flag triggers a drain while the fleet is still sending.
  GracefulShutdown::ResetForTest();
  GracefulShutdown::Install();
  ASSERT_EQ(raise(SIGTERM), 0);
  ASSERT_TRUE(GracefulShutdown::requested());
  server->BeginDrain();
  server->AwaitTermination();
  GracefulShutdown::Uninstall();
  GracefulShutdown::ResetForTest();

  stop.store(true, std::memory_order_release);
  for (std::thread& t : fleet) t.join();

  ClientTally total;
  for (const ClientTally& t : tallies) {
    total.ok_accepted += t.ok_accepted;
    total.ok_rejected += t.ok_rejected;
    total.engine_errors += t.engine_errors;
    total.internal += t.internal;
    total.overloaded += t.overloaded;
    total.draining += t.draining;
    total.cancelled += t.cancelled;
    total.invalid += t.invalid;
    total.pongs += t.pongs;
    total.stats_ok += t.stats_ok;
    total.transport_errors += t.transport_errors;
    total.undecodable_frames += t.undecodable_frames;
    total.wrong_answers += t.wrong_answers;
    total.queue_bound_violations += t.queue_bound_violations;
  }

  // Hard correctness gates.
  EXPECT_EQ(total.undecodable_frames, 0);
  EXPECT_EQ(total.wrong_answers, 0);
  EXPECT_EQ(total.queue_bound_violations, 0);

  // The fleet did real work through the chaos.
  EXPECT_GT(total.ok_accepted, 0);
  EXPECT_GT(total.pongs, 0);

  // Exactly-once accounting: the books reconcile to the last request,
  // and the clients never observed more outcomes than the server booked.
  const ServerCounters& c = server->counters();
  EXPECT_EQ(c.requests_admitted.load(),
            c.served_ok.load() + c.served_error.load() + c.drained.load());
  EXPECT_LE(total.ok_accepted + total.ok_rejected, c.served_ok.load());
  // kInternal replies can also be injected server/read|write boundary
  // faults, which are (correctly) not booked as served — so only the
  // unambiguous engine-error codes bound served_error from below.
  EXPECT_LE(total.engine_errors, c.served_error.load());
  EXPECT_LE(total.cancelled, c.drained.load());
  // Accept-time rejections (capacity, injected server/accept faults)
  // also answer kOverloaded but are booked as rejected connections.
  EXPECT_LE(total.overloaded, c.shed_queue.load() + c.shed_memory.load() +
                                  c.connections_rejected.load());
  // Likewise a connection accepted after the drain flag flips gets a
  // best-effort kDraining at accept time, booked as a rejected
  // connection rather than a shed request.
  EXPECT_LE(total.draining,
            c.shed_draining.load() + c.connections_rejected.load());

  // The injected read/write/dispatch faults and the garbage all landed
  // somewhere visible.
  EXPECT_GT(c.protocol_errors.load(), 0);
  EXPECT_GT(c.connections_accepted.load(), 0);

  server.reset();
}

}  // namespace
}  // namespace treewalk
