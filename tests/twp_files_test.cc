// Validates the .twp program files shipped under examples/programs/:
// they must parse, pass class validation, and behave like their
// library-built counterparts.

#include <gtest/gtest.h>

#include <fstream>
#include <random>
#include <sstream>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/automata/text_format.h"
#include "src/tree/generate.h"

#ifndef TREEWALK_SOURCE_DIR
#define TREEWALK_SOURCE_DIR "."
#endif

namespace treewalk {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string ProgramPath(const char* name) {
  return std::string(TREEWALK_SOURCE_DIR) + "/examples/programs/" + name;
}

TEST(TwpFiles, Example32MatchesLibraryProgram) {
  auto from_file =
      ParseProgramText(ReadFileOrDie(ProgramPath("example32.twp")));
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  auto from_library = Example32Program();
  ASSERT_TRUE(from_library.ok());

  std::mt19937 rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    Tree good = Example32Tree(rng, 15, true);
    Tree bad = Example32Tree(rng, 15, false);
    for (const Tree* t : {&good, &bad}) {
      auto a = Accepts(*from_file, *t);
      auto b = Accepts(*from_library, *t);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << "trial " << trial;
    }
  }
}

TEST(TwpFiles, HasLabelMatchesLibraryProgram) {
  auto from_file =
      ParseProgramText(ReadFileOrDie(ProgramPath("has_label.twp")));
  ASSERT_TRUE(from_file.ok()) << from_file.status();
  auto from_library = HasLabelProgram("needle");
  ASSERT_TRUE(from_library.ok());

  std::mt19937 rng(73);
  RandomTreeOptions options;
  options.num_nodes = 18;
  options.labels = {"a", "needle", "b"};
  options.attributes = {};
  for (int trial = 0; trial < 10; ++trial) {
    Tree t = RandomTree(rng, options);
    auto a = Accepts(*from_file, t);
    auto b = Accepts(*from_library, t);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << "trial " << trial;
  }
}

}  // namespace
}  // namespace treewalk
