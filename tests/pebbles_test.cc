#include <gtest/gtest.h>

#include <random>

#include "src/simulation/pebbles.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Tree Sample() {
  auto t = ParseTerm("a(b, c(d, e), f)");  // 6 nodes, ranks 0..5
  EXPECT_TRUE(t.ok());
  return *t;
}

TEST(PebbleMachine, StartsAtRoot) {
  Tree t = Sample();
  PebbleMachine m(t, 2);
  EXPECT_TRUE(m.AtRoot(0));
  EXPECT_TRUE(m.Equal(0, 1));
  EXPECT_EQ(m.node(0), 0);
}

TEST(PebbleMachine, DocNextWalksRanksInOrder) {
  Tree t = Sample();
  PebbleMachine m(t, 1);
  for (NodeId expected = 1; expected < 6; ++expected) {
    ASSERT_TRUE(m.DocNext(0).ok());
    EXPECT_EQ(m.node(0), expected);
  }
  EXPECT_EQ(m.DocNext(0).code(), StatusCode::kResourceExhausted);
}

TEST(PebbleMachine, DocPrevInverts) {
  Tree t = Sample();
  PebbleMachine m(t, 1);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(m.DocNext(0).ok());
  for (NodeId expected = 4; expected >= 0; --expected) {
    ASSERT_TRUE(m.DocPrev(0).ok());
    EXPECT_EQ(m.node(0), expected);
  }
  EXPECT_FALSE(m.DocPrev(0).ok());
}

TEST(PebbleMachine, AdvanceByAddsRanks) {
  Tree t = Sample();
  PebbleMachine m(t, 2);
  // p := 2, q := 3, p += q -> 5.
  ASSERT_TRUE(m.DocNext(0).ok());
  ASSERT_TRUE(m.DocNext(0).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(m.DocNext(1).ok());
  ASSERT_TRUE(m.AdvanceBy(0, 1).ok());
  EXPECT_EQ(m.node(0), 5);
  EXPECT_EQ(m.node(1), 3);  // q untouched
}

TEST(PebbleMachine, AdvanceByAliasedDoubles) {
  Tree t = Sample();
  PebbleMachine m(t, 1);
  ASSERT_TRUE(m.DocNext(0).ok());
  ASSERT_TRUE(m.DocNext(0).ok());  // rank 2
  ASSERT_TRUE(m.AdvanceBy(0, 0).ok());
  EXPECT_EQ(m.node(0), 4);
}

TEST(PebbleMachine, RetreatBySubtracts) {
  Tree t = Sample();
  PebbleMachine m(t, 2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(m.DocNext(0).ok());
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(m.DocNext(1).ok());
  ASSERT_TRUE(m.RetreatBy(0, 1).ok());
  EXPECT_EQ(m.node(0), 3);
  // Underflow errors.
  ASSERT_TRUE(m.RetreatBy(0, 1).ok());  // 1
  EXPECT_FALSE(m.RetreatBy(0, 1).ok());
}

TEST(PebbleMachine, HalveComputesFloor) {
  // Use a chain so every rank up to 9 exists.
  Tree t = StringTree(std::vector<DataValue>(10, 0));
  for (int r = 0; r <= 9; ++r) {
    PebbleMachine m(t, 1);
    for (int i = 0; i < r; ++i) ASSERT_TRUE(m.DocNext(0).ok());
    ASSERT_TRUE(m.Halve(0).ok());
    EXPECT_EQ(m.node(0), r / 2) << "rank " << r;
  }
}

TEST(PebbleMachine, ParityOf) {
  Tree t = StringTree(std::vector<DataValue>(8, 0));
  PebbleMachine m(t, 1);
  for (int r = 0; r < 8; ++r) {
    auto parity = m.ParityOf(0);
    ASSERT_TRUE(parity.ok());
    EXPECT_EQ(*parity, r % 2) << "rank " << r;
    if (r < 7) {
      ASSERT_TRUE(m.DocNext(0).ok());
    }
  }
}

TEST(PebbleMachine, SetToPowerOfTwo) {
  Tree t = StringTree(std::vector<DataValue>(20, 0));
  PebbleMachine m(t, 1);
  for (int i = 0; i <= 4; ++i) {
    ASSERT_TRUE(m.SetToPowerOfTwo(0, i).ok()) << i;
    EXPECT_EQ(m.node(0), 1 << i) << i;
  }
  EXPECT_FALSE(m.SetToPowerOfTwo(0, 5).ok());  // 32 > 19
}

TEST(PebbleMachine, TestBitReadsBinaryRank) {
  Tree t = StringTree(std::vector<DataValue>(16, 0));
  PebbleMachine m(t, 1);
  for (int r = 0; r < 16; ++r) {
    for (int bit = 0; bit < 4; ++bit) {
      auto b = m.TestBit(0, bit);
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*b, (r >> bit) & 1) << "rank " << r << " bit " << bit;
    }
    if (r < 15) {
      ASSERT_TRUE(m.DocNext(0).ok());
    }
  }
}

TEST(PebbleMachine, WriteBitEditsBinaryRank) {
  Tree t = StringTree(std::vector<DataValue>(16, 0));
  PebbleMachine m(t, 1);
  // 0 -> set bit 2 -> 4 -> set bit 0 -> 5 -> clear bit 2 -> 1.
  ASSERT_TRUE(m.WriteBit(0, 2, true).ok());
  EXPECT_EQ(m.node(0), 4);
  ASSERT_TRUE(m.WriteBit(0, 0, true).ok());
  EXPECT_EQ(m.node(0), 5);
  ASSERT_TRUE(m.WriteBit(0, 2, false).ok());
  EXPECT_EQ(m.node(0), 1);
  // Idempotent writes change nothing.
  ASSERT_TRUE(m.WriteBit(0, 0, true).ok());
  EXPECT_EQ(m.node(0), 1);
  // Overflow: setting bit 4 would need rank 17 > 15.
  EXPECT_FALSE(m.WriteBit(0, 4, true).ok());
}

TEST(PebbleMachine, WorksOnArbitraryShapes) {
  std::mt19937 rng(5);
  RandomTreeOptions options;
  options.num_nodes = 40;
  Tree t = RandomTree(rng, options);
  PebbleMachine m(t, 1);
  // Walk to rank 21, halve twice -> 5, parity 1.
  for (int i = 0; i < 21; ++i) ASSERT_TRUE(m.DocNext(0).ok());
  ASSERT_TRUE(m.Halve(0).ok());
  EXPECT_EQ(m.node(0), 10);
  ASSERT_TRUE(m.Halve(0).ok());
  EXPECT_EQ(m.node(0), 5);
  auto parity = m.ParityOf(0);
  ASSERT_TRUE(parity.ok());
  EXPECT_EQ(*parity, 1);
}

TEST(PebbleMachine, StepsAreCounted) {
  Tree t = StringTree(std::vector<DataValue>(32, 0));
  PebbleMachine m(t, 1);
  std::int64_t before = m.steps();
  ASSERT_TRUE(m.DocNext(0).ok());
  EXPECT_GT(m.steps(), before);
  before = m.steps();
  ASSERT_TRUE(m.AdvanceBy(0, 0).ok());
  // Doubling rank 1 costs O(rank) moves, not zero.
  EXPECT_GT(m.steps(), before);
}

TEST(PebbleMachine, StepGrowthIsLinearPerOp) {
  // An O(n) bound per arithmetic op: steps for Halve on rank n scale
  // roughly linearly, not quadratically.
  auto cost = [](int n) {
    Tree t = StringTree(std::vector<DataValue>(static_cast<std::size_t>(n), 0));
    PebbleMachine m(t, 1);
    for (int i = 0; i < n - 1; ++i) EXPECT_TRUE(m.DocNext(0).ok());
    std::int64_t before = m.steps();
    EXPECT_TRUE(m.Halve(0).ok());
    return m.steps() - before;
  };
  std::int64_t c64 = cost(64);
  std::int64_t c128 = cost(128);
  EXPECT_LT(c128, 4 * c64);  // ~2x for linear
  EXPECT_GT(c128, c64);
}

}  // namespace
}  // namespace treewalk
