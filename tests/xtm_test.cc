#include <gtest/gtest.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/xtm/library.h"
#include "src/xtm/run.h"

namespace treewalk {
namespace {

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

TEST(XtmValidate, CatchesStructuralErrors) {
  Xtm m;
  EXPECT_FALSE(m.Validate().ok());  // no states
  m.initial_state = "q0";
  m.accept_state = "acc";
  EXPECT_TRUE(m.Validate().ok());
  m.tape_alphabet_size = 0;
  EXPECT_FALSE(m.Validate().ok());
  m.tape_alphabet_size = 2;

  XtmTransition bad;
  bad.state = "acc";  // transition out of accept
  bad.next_state = "q0";
  m.transitions = {bad};
  EXPECT_FALSE(m.Validate().ok());

  bad.state = "q0";
  bad.read = 7;  // out of alphabet
  m.transitions = {bad};
  EXPECT_FALSE(m.Validate().ok());

  bad.read = -1;
  bad.guard.kind = XtmGuard::Kind::kRegEqualsAttr;
  bad.guard.reg = 0;  // no registers declared
  m.transitions = {bad};
  EXPECT_FALSE(m.Validate().ok());
}

TEST(XtmParity, CountsOccurrences) {
  Xtm m = XtmParity("b");
  auto zero = RunXtm(m, T("a"));
  ASSERT_TRUE(zero.ok()) << zero.status();
  EXPECT_TRUE(zero->accepted);
  auto one = RunXtm(m, T("b"));
  ASSERT_TRUE(one.ok());
  EXPECT_FALSE(one->accepted);
  auto two = RunXtm(m, T("a(b, c(b))"));
  ASSERT_TRUE(two.ok());
  EXPECT_TRUE(two->accepted);
  // Constant space: the tape is never touched.
  EXPECT_EQ(two->space, 1u);
}

TEST(XtmCountMod4, BinaryCounterOnTape) {
  Xtm m = XtmCountMod4("x");
  struct Case {
    const char* term;
    bool accept;
  } cases[] = {
      {"a", true},                          // 0
      {"x", false},                         // 1
      {"a(x, x)", false},                   // 2
      {"a(x, x, x)", false},                // 3
      {"a(x, x, x, x)", true},              // 4
      {"x(x(x(x(x))))", false},             // 5
      {"a(x, x, x, x, b(x, x, x, x))", true},  // 8
  };
  for (const Case& c : cases) {
    auto r = RunXtm(m, T(c.term));
    ASSERT_TRUE(r.ok()) << c.term << ": " << r.status();
    EXPECT_EQ(r->accepted, c.accept) << c.term;
  }
}

TEST(XtmCountMod4, SpaceIsLogarithmic) {
  Xtm m = XtmCountMod4("x");
  // A monadic tree of n 'x' nodes: counter needs ~log2(n) bits.
  for (int n : {4, 16, 64}) {
    std::vector<DataValue> values(static_cast<std::size_t>(n), 0);
    Tree chain = StringTree(values, "x");
    auto r = RunXtm(m, chain);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r->accepted) << n;
    // marker + bits + one blank probed.
    std::size_t bits = 0;
    for (int v = n; v > 0; v >>= 1) ++bits;
    EXPECT_LE(r->space, bits + 3) << n;
    EXPECT_GE(r->space, bits) << n;
  }
}

TEST(XtmDyck, BalancedBracketsInDocumentOrder) {
  Xtm m = XtmDyck("open", "close");
  EXPECT_TRUE(RunXtm(m, T("a"))->accepted);
  EXPECT_TRUE(RunXtm(m, T("open(close)"))->accepted);
  EXPECT_TRUE(RunXtm(m, T("a(open, b, close)"))->accepted);
  EXPECT_TRUE(RunXtm(m, T("open(open(close), close)"))->accepted);
  EXPECT_FALSE(RunXtm(m, T("open"))->accepted);
  EXPECT_FALSE(RunXtm(m, T("close"))->accepted);
  EXPECT_FALSE(RunXtm(m, T("a(close, open)"))->accepted);
  EXPECT_FALSE(RunXtm(m, T("open(open(close))"))->accepted);
}

TEST(XtmDyck, SpaceTracksNesting) {
  Xtm m = XtmDyck("open", "close");
  // Deep nesting: open^k close^k along a chain.
  TreeBuilder b;
  auto node = b.AddRoot("open");
  const int k = 20;
  for (int i = 1; i < k; ++i) node = b.AddChild(node, "open");
  for (int i = 0; i < k; ++i) node = b.AddChild(node, "close");
  auto r = RunXtm(m, b.Build());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  EXPECT_GE(r->space, static_cast<std::size_t>(k));
}

TEST(XtmDyck, OracleOnRandomTrees) {
  Xtm m = XtmDyck("o", "c");
  std::mt19937 rng(3);
  RandomTreeOptions options;
  options.num_nodes = 14;
  options.labels = {"o", "c", "n"};
  options.attributes = {};
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = RandomTree(rng, options);
    Symbol open = t.FindLabel("o");
    Symbol close = t.FindLabel("c");
    int balance = 0;
    bool ok = true;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.label(u) == open) ++balance;
      if (t.label(u) == close && --balance < 0) ok = false;
    }
    ok = ok && balance == 0;
    auto r = RunXtm(m, t);
    ASSERT_TRUE(r.ok()) << trial << ": " << r.status();
    EXPECT_EQ(r->accepted, ok) << "trial " << trial;
  }
}

TEST(XtmDeterministic, NondeterminismIsAnError) {
  Xtm m;
  m.initial_state = "q0";
  m.accept_state = "acc";
  XtmTransition a;
  a.state = "q0";
  a.label = "*";
  a.next_state = "acc";
  XtmTransition b = a;
  b.next_state = "q0";
  b.tree_move = Move::kDown;
  m.transitions = {a, b};
  auto r = RunXtm(m, T("a"));
  EXPECT_EQ(r.status().code(), StatusCode::kNondeterminism);
}

TEST(XtmDeterministic, StepBudget) {
  // Spin in place forever.
  Xtm m;
  m.initial_state = "q0";
  m.accept_state = "acc";
  XtmTransition spin;
  spin.state = "q0";
  spin.label = "*";
  spin.next_state = "q0";
  spin.write = 1;
  spin.tape_move = TapeMove::kRight;
  m.transitions = {spin};
  XtmOptions options;
  options.max_steps = 100;
  auto r = RunXtm(m, T("a"), options);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

Tree Circuit(const char* term) { return T(term); }

bool EvalCircuitOracle(const Tree& t, NodeId u) {
  const std::string& label = t.LabelName(t.label(u));
  if (label == "lit") {
    AttrId v = t.FindAttribute("v");
    return v != kNoAttr && t.attr(v, u) != 0;
  }
  bool is_and = label == "and";
  bool acc = is_and;
  for (NodeId c = t.FirstChild(u); c != kNoNode; c = t.NextSibling(c)) {
    bool sub = EvalCircuitOracle(t, c);
    if (is_and) {
      acc = acc && sub;
    } else {
      acc = acc || sub;
    }
  }
  return acc;
}

TEST(XtmBooleanCircuit, EvaluatesSmallCircuits) {
  Xtm m = XtmBooleanCircuit();
  struct Case {
    const char* term;
    bool expected;
  } cases[] = {
      {"lit[v=1]", true},
      {"lit[v=0]", false},
      {"and(lit[v=1], lit[v=1])", true},
      {"and(lit[v=1], lit[v=0])", false},
      {"or(lit[v=0], lit[v=1])", true},
      {"or(lit[v=0], lit[v=0])", false},
      {"and(or(lit[v=0], lit[v=1]), or(lit[v=1], lit[v=0]))", true},
      {"or(and(lit[v=1], lit[v=0]), and(lit[v=0], lit[v=1]))", false},
      {"and(or(lit[v=0], lit[v=0]), lit[v=1])", false},
  };
  for (const Case& c : cases) {
    auto r = RunXtmAlternating(m, Circuit(c.term));
    ASSERT_TRUE(r.ok()) << c.term << ": " << r.status();
    EXPECT_EQ(r->accepted, c.expected) << c.term;
    EXPECT_GT(r->configs, 0u);
  }
}

Tree RandomCircuit(std::mt19937& rng, int depth) {
  TreeBuilder b;
  std::uniform_int_distribution<int> gate(0, 1);
  std::uniform_int_distribution<int> lit(0, 1);
  std::uniform_int_distribution<int> width(2, 3);
  struct Rec {
    TreeBuilder& b;
    std::mt19937& rng;
    std::uniform_int_distribution<int>& gate;
    std::uniform_int_distribution<int>& lit;
    std::uniform_int_distribution<int>& width;

    void Fill(TreeBuilder::Ref node, int d) {
      int kids = width(rng);
      for (int i = 0; i < kids; ++i) {
        if (d == 0) {
          auto leaf = b.AddChild(node, "lit");
          b.SetAttr(leaf, "v", lit(rng));
        } else {
          auto inner = b.AddChild(node, gate(rng) != 0 ? "and" : "or");
          Fill(inner, d - 1);
        }
      }
    }
  };
  auto root = b.AddRoot(gate(rng) != 0 ? "and" : "or");
  Rec rec{b, rng, gate, lit, width};
  rec.Fill(root, depth);
  return b.Build();
}

TEST(XtmBooleanCircuit, OracleOnRandomCircuits) {
  Xtm m = XtmBooleanCircuit();
  std::mt19937 rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = RandomCircuit(rng, 3);
    bool expected = EvalCircuitOracle(t, t.root());
    auto r = RunXtmAlternating(m, t);
    ASSERT_TRUE(r.ok()) << trial << ": " << r.status();
    EXPECT_EQ(r->accepted, expected) << "trial " << trial;
  }
}


TEST(XtmBooleanCircuit, AgreesWithTwRlCircuitProgram) {
  // The alternating machine and the look-ahead tw^{r,l} program realize
  // the same evaluation — alternation vs atp-subcomputations
  // (Theorem 7.1(2)'s proof device), checked on random circuits.
  Xtm machine = XtmBooleanCircuit();
  auto program = BooleanCircuitProgram();
  ASSERT_TRUE(program.ok()) << program.status();
  std::mt19937 rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomCircuit(rng, 3);
    auto alt = RunXtmAlternating(machine, t);
    auto walk = Accepts(*program, t);
    ASSERT_TRUE(alt.ok()) << alt.status();
    ASSERT_TRUE(walk.ok()) << walk.status();
    EXPECT_EQ(alt->accepted, *walk) << "trial " << trial;
    EXPECT_EQ(*walk, EvalCircuitOracle(t, t.root())) << "trial " << trial;
  }
}

TEST(XtmAlternating, ConfigBudget) {
  Xtm m = XtmBooleanCircuit();
  std::mt19937 rng(1);
  Tree t = RandomCircuit(rng, 4);
  XtmOptions options;
  options.max_configs = 5;
  auto r = RunXtmAlternating(m, t, options);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(XtmAlternating, DeterministicMachinesAgreeWithRunXtm) {
  // A deterministic machine is a special case of an alternating one.
  Xtm m = XtmParity("b");
  for (const char* term : {"a", "b", "a(b, b)", "b(b(b))"}) {
    auto det = RunXtm(m, T(term));
    auto alt = RunXtmAlternating(m, T(term));
    ASSERT_TRUE(det.ok() && alt.ok()) << term;
    EXPECT_EQ(det->accepted, alt->accepted) << term;
  }
}

TEST(XtmAlternating, CycleIsNotAccepting) {
  // q0 -> q0 (stay) with no way to accept: least fixpoint rejects.
  Xtm m;
  m.initial_state = "q0";
  m.accept_state = "acc";
  XtmTransition loop;
  loop.state = "q0";
  loop.label = "*";
  loop.next_state = "q0";
  m.transitions = {loop};
  auto r = RunXtmAlternating(m, T("a"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->accepted);
  // The same cycle under a universal state also stays rejecting (its only
  // "successor set" never reaches acceptance).
  m.universal_states = {"q0"};
  auto r2 = RunXtmAlternating(m, T("a"));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->accepted);
}

TEST(XtmRegisters, GuardsBranchOnAttributes) {
  // Accept iff root attribute 'a' equals 0 (register 0 is initially 0).
  Xtm m;
  m.initial_state = "q0";
  m.accept_state = "acc";
  m.num_registers = 1;
  XtmTransition t;
  t.state = "q0";
  t.label = "*";
  t.next_state = "acc";
  t.guard.kind = XtmGuard::Kind::kRegEqualsAttr;
  t.guard.reg = 0;
  t.guard.attr = "a";
  m.transitions = {t};
  // Note: the machine starts on #top whose attributes are bottom, so move
  // to the root first... simpler: guard at #top compares against bottom
  // and fails; add a walk-in.
  Xtm m2;
  m2.initial_state = "q0";
  m2.accept_state = "acc";
  m2.num_registers = 1;
  m2.transitions.push_back(XtmTransition{});
  m2.transitions[0].state = "q0";
  m2.transitions[0].label = "#top";
  m2.transitions[0].next_state = "q1";
  m2.transitions[0].tree_move = Move::kDown;
  m2.transitions.push_back(XtmTransition{});
  m2.transitions[1].state = "q1";
  m2.transitions[1].label = "#open";
  m2.transitions[1].next_state = "q2";
  m2.transitions[1].tree_move = Move::kRight;
  XtmTransition check;
  check.state = "q2";
  check.label = "*";
  check.next_state = "acc";
  check.guard.kind = XtmGuard::Kind::kRegEqualsAttr;
  check.guard.reg = 0;
  check.guard.attr = "a";
  m2.transitions.push_back(check);
  EXPECT_TRUE(RunXtm(m2, T("r[a=0]"))->accepted);
  EXPECT_FALSE(RunXtm(m2, T("r[a=5]"))->accepted);
}

TEST(XtmRegisters, LoadAttrThenCompare) {
  // Load the root's value, then accept iff the first child has the same.
  Xtm m;
  m.initial_state = "q0";
  m.accept_state = "acc";
  m.num_registers = 1;
  auto add = [&m](XtmTransition t) { m.transitions.push_back(std::move(t)); };
  XtmTransition t0;
  t0.state = "q0";
  t0.label = "#top";
  t0.next_state = "q1";
  t0.tree_move = Move::kDown;
  add(t0);
  XtmTransition t1;
  t1.state = "q1";
  t1.label = "#open";
  t1.next_state = "q2";
  t1.tree_move = Move::kRight;
  add(t1);
  XtmTransition t2;  // at root: load a, move to first child (#open)
  t2.state = "q2";
  t2.label = "*";
  t2.next_state = "q3";
  t2.tree_move = Move::kStay;
  t2.reg_op.kind = XtmRegOp::Kind::kLoadAttr;
  t2.reg_op.reg = 0;
  t2.reg_op.attr = "a";
  add(t2);
  XtmTransition t3;
  t3.state = "q3";
  t3.label = "*";
  t3.next_state = "q4";
  t3.tree_move = Move::kDown;
  add(t3);
  XtmTransition t4;
  t4.state = "q4";
  t4.label = "#open";
  t4.next_state = "q5";
  t4.tree_move = Move::kRight;
  add(t4);
  XtmTransition t5;
  t5.state = "q5";
  t5.label = "*";
  t5.next_state = "acc";
  t5.guard.kind = XtmGuard::Kind::kRegEqualsAttr;
  t5.guard.reg = 0;
  t5.guard.attr = "a";
  add(t5);
  EXPECT_TRUE(RunXtm(m, T("r[a=7](c[a=7])"))->accepted);
  EXPECT_FALSE(RunXtm(m, T("r[a=7](c[a=8])"))->accepted);
}

}  // namespace
}  // namespace treewalk
