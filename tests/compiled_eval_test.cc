// Tests for the set-at-a-time compiled FO evaluator (src/logic/compile.h)
// and its per-tree axis index (src/tree/axis_index.h): unit tests for the
// bitset primitives, targeted selector shapes (including guarded joins,
// shadowing, and fallback triggers), and the headline property test that
// proves compiled == reference on >= 1000 random (formula, tree)
// instances, checking every origin of every tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Formula Parse(const std::string& source) {
  auto parsed = ParseFormula(source);
  EXPECT_TRUE(parsed.ok()) << source << ": " << parsed.status().ToString();
  return *parsed;
}

Tree Term(const std::string& source) {
  auto parsed = ParseTerm(source);
  EXPECT_TRUE(parsed.ok()) << source << ": " << parsed.status().ToString();
  return *parsed;
}

// --- NodeSet / NodeMatrix primitives. ----------------------------------

TEST(NodeSet, BasicAlgebraAndDocumentOrder) {
  NodeSet s(130);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(129);
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(62));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.ToVector(), (std::vector<NodeId>{0, 63, 64, 129}));

  NodeSet t(130);
  t.SetRange(60, 70);
  EXPECT_EQ(t.count(), 10u);
  NodeSet u = s;
  u.Intersect(t);
  EXPECT_EQ(u.ToVector(), (std::vector<NodeId>{63, 64}));
  u = s;
  u.Union(t);
  EXPECT_EQ(u.count(), 12u);

  NodeSet c = NodeSet::Full(130);
  EXPECT_TRUE(c.all());
  c.Complement();
  EXPECT_FALSE(c.any());
}

TEST(NodeMatrix, TransposeAndReductions) {
  NodeMatrix m(70);
  m.set(0, 69);
  m.set(69, 0);
  m.set(5, 5);
  NodeMatrix t = m.Transposed();
  EXPECT_TRUE(t.test(69, 0));
  EXPECT_TRUE(t.test(0, 69));
  EXPECT_TRUE(t.test(5, 5));

  NodeSet any = m.AnyPerRow();
  EXPECT_EQ(any.ToVector(), (std::vector<NodeId>{0, 5, 69}));

  NodeMatrix full(70);
  full.Complement();  // all-zero -> all-one
  EXPECT_TRUE(full.AllPerRow().all());
  full.set(3, 3);  // still full
  EXPECT_TRUE(full.test(3, 3));
}

// --- AxisIndex against Tree navigation, brute force. -------------------

TEST(AxisIndex, MatchesTreePredicatesOnRandomTrees) {
  std::mt19937 rng(7);
  RandomTreeOptions options;
  options.attributes = {"a", "b"};
  for (int iter = 0; iter < 20; ++iter) {
    options.num_nodes = 1 + static_cast<int>(rng() % 40);
    Tree tree = RandomTree(rng, options);
    AxisIndex index(tree);
    const NodeId n = static_cast<NodeId>(tree.size());
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_EQ(index.Roots().test(u), tree.IsRoot(u));
      EXPECT_EQ(index.Leaves().test(u), tree.IsLeaf(u));
      EXPECT_EQ(index.FirstChildren().test(u), tree.IsFirstChild(u));
      EXPECT_EQ(index.LastChildren().test(u), tree.IsLastChild(u));
      EXPECT_EQ(index.LabelSet(tree.LabelName(tree.label(u))).test(u), true);
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_EQ(index.EdgeMatrix().test(u, v), tree.Parent(v) == u);
        EXPECT_EQ(index.DescendantMatrix().test(u, v),
                  tree.IsStrictAncestor(u, v));
        EXPECT_EQ(index.SuccMatrix().test(u, v), tree.NextSibling(u) == v);
        bool sib = u != v && tree.Parent(u) != kNoNode &&
                   tree.Parent(u) == tree.Parent(v) &&
                   tree.ChildIndex(u) < tree.ChildIndex(v);
        EXPECT_EQ(index.SiblingMatrix().test(u, v), sib);
        EXPECT_EQ(index.IdentityMatrix().test(u, v), u == v);
      }
      AttrId a = tree.FindAttribute("a");
      ASSERT_NE(a, kNoAttr);
      EXPECT_TRUE(index.AttrValueSet(a, tree.attr(a, u)).test(u));
      EXPECT_FALSE(index.AttrValueSet(a, 999).test(u));
    }
    EXPECT_FALSE(index.LabelSet("no-such-label").any());
  }
}

// --- Compiled selector equivalence on targeted shapes. -----------------

/// Asserts that CompileSelector succeeds on `selector` under BOTH
/// matrix representations and that each agrees with the reference
/// SelectNodes at every origin of `tree` — the three-way oracle
/// interval == dense == reference.
void ExpectCompiledMatches(const Tree& tree, const std::string& selector) {
  AxisIndex index(tree);
  Formula formula = Parse(selector);
  auto dense = CompileSelector(index, formula, "x", "y", AxisRepr::kDense);
  ASSERT_TRUE(dense.ok()) << selector << ": " << dense.status().ToString();
  auto interval =
      CompileSelector(index, formula, "x", "y", AxisRepr::kInterval);
  ASSERT_TRUE(interval.ok()) << selector << ": "
                             << interval.status().ToString();
  EXPECT_EQ(dense->repr(), AxisRepr::kDense);
  EXPECT_EQ(interval->repr(), AxisRepr::kInterval);
  for (NodeId origin = 0; origin < static_cast<NodeId>(tree.size());
       ++origin) {
    auto reference = SelectNodes(tree, formula, origin);
    ASSERT_TRUE(reference.ok()) << selector;
    EXPECT_EQ(dense->SelectFrom(origin), *reference)
        << selector << " (dense) at origin " << origin;
    EXPECT_EQ(interval->SelectFrom(origin), *reference)
        << selector << " (interval) at origin " << origin;
  }
}

TEST(CompiledSelector, AtomsAndBooleans) {
  Tree tree = Term("a(b(a,b,a),b,a(b(b)))");
  for (const char* s : {
           "E(x, y)", "desc(x, y)", "sib(x, y)", "succ(x, y)", "x = y",
           "E(y, x)", "desc(y, x)", "sib(y, x)", "succ(y, x)",
           "lab(y, #a)", "lab(y, #b)", "lab(y, #zzz)", "lab(x, #a)",
           "root(y)", "leaf(y)", "first(y)", "last(y)", "root(x)",
           "leaf(x)", "true", "false", "!desc(x, y)",
           "desc(x, y) & lab(y, #b)", "desc(x, y) | sib(x, y)",
           "desc(x, y) -> leaf(y)", "leaf(x) <-> leaf(y)",
       }) {
    ExpectCompiledMatches(tree, s);
  }
}

TEST(CompiledSelector, QuantifiersAndJoins) {
  Tree tree = Term("a(b(a,b,a(a,b)),b,a(b(b),a))");
  for (const char* s : {
           // Row reductions.
           "exists z (E(x, z) & desc(z, y))",
           "exists z (desc(x, z) & E(z, y))",
           "forall z (desc(y, z) -> lab(z, #a))",
           "exists z (desc(x, y) & E(y, z))",  // miniscoping pulls desc out
           // Guarded joins (x and y both under one exists).
           "exists z (E(x, z) & E(z, y))",
           "exists z (E(x, z) & sib(z, y))",
           "exists z exists w (E(x, z) & E(z, w) & E(w, y))",
           // De Morgan join for forall.
           "forall z (sib(x, z) | desc(z, y) | leaf(z))",
           // Quantifier over an unused variable.
           "exists z (desc(x, y))", "forall z (desc(x, y))",
           "exists z (z = z)", "forall z (leaf(z)) | E(x, y)",
           // Shadowing of x and y.
           "exists y (E(x, y) & leaf(y)) & desc(x, y)",
           "exists x (desc(y, x) & leaf(x)) | E(x, y)",
           // Degenerate same-variable atoms.
           "E(x, x)", "desc(y, y)", "sib(x, x)", "succ(y, y)", "x = x",
       }) {
    ExpectCompiledMatches(tree, s);
  }
}

TEST(CompiledSelector, AttributeEqualities) {
  std::mt19937 rng(11);
  RandomTreeOptions options;
  options.num_nodes = 24;
  options.attributes = {"a", "b"};
  options.value_range = 3;  // force collisions so joins are non-trivial
  Tree tree = RandomTree(rng, options);
  for (const char* s : {
           "val(a, x) = val(a, y)", "val(a, x) = val(b, y)",
           "val(a, y) = val(b, y)", "val(a, x) = val(b, x)",
           "val(a, y) = 1", "2 = val(b, y)", "val(a, x) = 7",
           "1 = 1", "1 = 2",
           "desc(x, y) & val(a, x) = val(a, y)",
           "exists z (E(x, z) & val(a, z) = val(a, y))",
       }) {
    ExpectCompiledMatches(tree, s);
  }
}

TEST(CompiledSelector, SingleNodeTree) {
  Tree tree = Term("a");
  for (const char* s : {"x = y", "E(x, y)", "desc(x, y)", "root(y)",
                        "leaf(y)", "exists z (z = y)", "forall z (leaf(z))"}) {
    ExpectCompiledMatches(tree, s);
  }
}

TEST(CompiledSelector, DeclinesGracefully) {
  Tree tree = Term("a(b,c)");
  AxisIndex index(tree);
  // Missing attribute: the reference errors, so the compiler declines
  // and callers fall back to get the identical error.
  EXPECT_FALSE(CompileSelector(index, Parse("val(nope, y) = 1")).ok());
  EXPECT_FALSE(SelectNodes(tree, Parse("val(nope, y) = 1"), 0).ok());
  // Free variable outside {x, y}.
  EXPECT_FALSE(CompileSelector(index, Parse("desc(x, q)")).ok());
  // Genuinely width-3 subformula: no two-variable materialization.
  Formula wide = Parse("exists z (E(x, z) & E(z, y) & desc(x, y))");
  auto compiled = CompileSelector(index, wide);
  if (compiled.ok()) {  // if a future compiler handles it, it must agree
    for (NodeId origin = 0; origin < static_cast<NodeId>(tree.size());
         ++origin) {
      EXPECT_EQ(compiled->SelectFrom(origin),
                *SelectNodes(tree, wide, origin));
    }
  }
  // Empty trees cannot be compiled (callers fall back).
  Tree empty;
  AxisIndex empty_index(empty);
  EXPECT_FALSE(CompileSelector(empty_index, Parse("desc(x, y)")).ok());
}

// --- Random-formula property test: compiled == reference. --------------

/// Random FO tree formulas over variables in scope, weighted toward the
/// compilable two-variable fragment but including shadowing, negation,
/// implications, and attribute equalities.
class SelectorGen {
 public:
  explicit SelectorGen(std::mt19937& rng) : rng_(rng) {}

  Formula Gen(int depth, std::vector<std::string> scope) {
    if (depth <= 0) return Atom(scope);
    switch (rng_() % 8) {
      case 0:
        return Atom(scope);
      case 1:
        return Formula::Not(Gen(depth - 1, scope));
      case 2:
        return Formula::And(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return Formula::Or(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 4:
        return Formula::Implies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 5: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Exists(v, Gen(depth - 1, scope));
      }
      case 6: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Forall(v, Gen(depth - 1, scope));
      }
      default:
        return Formula::Iff(Atom(scope), Gen(depth - 1, scope));
    }
  }

 private:
  const std::string& Var(const std::vector<std::string>& scope) {
    return scope[rng_() % scope.size()];
  }

  std::string FreshVar(const std::vector<std::string>& scope) {
    // Mostly fresh names; occasionally shadow one in scope.
    if (rng_() % 4 == 0) return Var(scope);
    return std::string("q") + std::to_string(rng_() % 3);
  }

  Formula Atom(const std::vector<std::string>& scope) {
    switch (rng_() % 12) {
      case 0:
        return Formula::Edge(Var(scope), Var(scope));
      case 1:
        return Formula::Sibling(Var(scope), Var(scope));
      case 2:
        return Formula::Descendant(Var(scope), Var(scope));
      case 3:
        return Formula::Succ(Var(scope), Var(scope));
      case 4:
        return Formula::VarEq(Var(scope), Var(scope));
      case 5:
        return Formula::Label(Var(scope), rng_() % 2 ? "a" : "b");
      case 6:
        return Formula::Root(Var(scope));
      case 7:
        return Formula::Leaf(Var(scope));
      case 8:
        return Formula::First(Var(scope));
      case 9:
        return Formula::Last(Var(scope));
      case 10:
        return Formula::Eq(Term::AttrOf("a", Var(scope)),
                           Term::Int(static_cast<DataValue>(rng_() % 4)));
      default:
        return Formula::Eq(Term::AttrOf(rng_() % 2 ? "a" : "b", Var(scope)),
                           Term::AttrOf("a", Var(scope)));
    }
  }

  std::mt19937& rng_;
};

TEST(CompiledSelectorProperty, MatchesReferenceOnRandomInstances) {
  std::mt19937 rng(20260805);
  SelectorGen gen(rng);
  RandomTreeOptions options;
  options.attributes = {"a", "b"};
  options.value_range = 4;

  int compiled_instances = 0;
  int declined_instances = 0;
  int attempts = 0;
  while (compiled_instances < 1100 && attempts < 8000) {
    ++attempts;
    options.num_nodes = 1 + static_cast<int>(rng() % 14);
    Tree tree = RandomTree(rng, options);
    AxisIndex index(tree);
    Formula formula = gen.Gen(1 + static_cast<int>(rng() % 3), {"x", "y"});
    auto compiled = CompileSelector(index, formula, "x", "y",
                                    AxisRepr::kDense);
    if (!compiled.ok()) {
      ++declined_instances;
      // The compiler declines on formula shape, never on representation.
      EXPECT_FALSE(
          CompileSelector(index, formula, "x", "y", AxisRepr::kInterval)
              .ok())
          << formula.ToString();
      continue;
    }
    auto interval =
        CompileSelector(index, formula, "x", "y", AxisRepr::kInterval);
    ASSERT_TRUE(interval.ok()) << formula.ToString() << ": "
                               << interval.status().ToString();
    ++compiled_instances;
    for (NodeId origin = 0; origin < static_cast<NodeId>(tree.size());
         ++origin) {
      auto reference = SelectNodes(tree, formula, origin);
      ASSERT_TRUE(reference.ok()) << formula.ToString();
      ASSERT_EQ(compiled->SelectFrom(origin), *reference)
          << formula.ToString() << " on " << PrintTerm(tree) << " at origin "
          << origin;
      ASSERT_EQ(interval->SelectFrom(origin), *reference)
          << formula.ToString() << " (interval) on " << PrintTerm(tree)
          << " at origin " << origin;
    }
  }
  // The acceptance bar: >= 1000 random (formula, tree) instances proven
  // equal under both representations (each checked at every origin).
  // Also make sure the fallback path is actually exercised.
  EXPECT_GE(compiled_instances, 1000);
  EXPECT_GT(declined_instances, 0);
}

// --- Large-n spot checks: interval selectors at n = 100000. ------------
//
// Exhaustive every-origin comparison is quadratic, so at n = 10^5 the
// oracle samples: a fixed spread of origins checked against the
// reference evaluator, plus ground-truth navigation for the
// grandchildren selector.  kAuto must resolve to the interval
// representation at this size — the dense matrix alone would be 1.25GB.
TEST(CompiledSelectorLargeN, IntervalMatchesReferenceAtSampledOrigins) {
  std::mt19937 rng(3301);
  RandomTreeOptions options;
  options.num_nodes = 100000;
  options.max_children = 6;
  options.attributes = {};
  Tree tree = RandomTree(rng, options);
  AxisIndex index(tree);

  Formula grandchildren = Parse("exists z (E(x, z) & E(z, y))");
  auto compiled = CompileSelector(index, grandchildren);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->repr(), AxisRepr::kInterval);

  std::vector<NodeId> origins = {0, 1, 17, 4096, 50000, 99998, 99999};
  for (int i = 0; i < 40; ++i) {
    origins.push_back(static_cast<NodeId>(rng() % tree.size()));
  }
  for (NodeId origin : origins) {
    // Ground truth by direct navigation: v is a grandchild of origin.
    std::vector<NodeId> expected;
    for (NodeId c = tree.FirstChild(origin); c != kNoNode;
         c = tree.NextSibling(c)) {
      for (NodeId g = tree.FirstChild(c); g != kNoNode;
           g = tree.NextSibling(g)) {
        expected.push_back(g);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(compiled->SelectFrom(origin), expected)
        << "grandchildren at origin " << origin;
  }

  // A mixed-axis selector checked against the reference evaluator at a
  // few origins (the reference is per-origin linear-ish here, so a
  // handful is affordable).
  Formula mixed = Parse("desc(x, y) & lab(y, #a) & !leaf(y)");
  auto compiled_mixed = CompileSelector(index, mixed);
  ASSERT_TRUE(compiled_mixed.ok()) << compiled_mixed.status().ToString();
  EXPECT_EQ(compiled_mixed->repr(), AxisRepr::kInterval);
  for (NodeId origin : {NodeId{0}, NodeId{123}, NodeId{77777}}) {
    auto reference = SelectNodes(tree, mixed, origin);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(compiled_mixed->SelectFrom(origin), *reference)
        << "mixed at origin " << origin;
  }
}

TEST(CompiledSentenceProperty, MatchesReferenceOnRandomInstances) {
  std::mt19937 rng(42);
  SelectorGen gen(rng);
  RandomTreeOptions options;
  options.attributes = {"a", "b"};
  options.value_range = 4;

  int compiled_instances = 0;
  int attempts = 0;
  while (compiled_instances < 400 && attempts < 4000) {
    ++attempts;
    options.num_nodes = 1 + static_cast<int>(rng() % 12);
    Tree tree = RandomTree(rng, options);
    AxisIndex index(tree);
    Formula body = gen.Gen(1 + static_cast<int>(rng() % 2), {"x", "y"});
    Formula sentence =
        rng() % 2 ? Formula::Exists("x", Formula::Exists("y", body))
                  : Formula::Forall("x", Formula::Forall("y", body));
    auto compiled = CompileSentence(index, sentence);
    if (!compiled.ok()) continue;
    ++compiled_instances;
    auto interval = CompileSentence(index, sentence, AxisRepr::kInterval);
    ASSERT_TRUE(interval.ok()) << sentence.ToString();
    auto reference = EvalTreeSentence(tree, sentence);
    ASSERT_TRUE(reference.ok()) << sentence.ToString();
    ASSERT_EQ(compiled->Eval(), *reference)
        << sentence.ToString() << " on " << PrintTerm(tree);
    ASSERT_EQ(interval->Eval(), *reference)
        << sentence.ToString() << " (interval) on " << PrintTerm(tree);
  }
  EXPECT_GE(compiled_instances, 300);
}

}  // namespace
}  // namespace treewalk
