// The wire protocol of `twq serve` (src/server/frame.h) must be total:
// every byte string either decodes or yields a typed Status, and the
// length prefix is judged before any allocation.  This file is the
// malformation table — every truncation point, every out-of-range
// field, every trailing byte — plus exact round-trips for each body
// codec.  The same decoders are fuzzed by tests/fuzz/fuzz_serve_frame.cc
// and its corpus replays in fuzz_corpus_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/server/frame.h"

namespace treewalk {
namespace {

std::string U32le(std::uint32_t v) {
  std::string out(4, '\0');
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return out;
}

// ---------------------------------------------------------------------------
// Length prefix: validated before allocation.

TEST(FrameLength, AcceptsTheFullValidRange) {
  for (std::uint32_t n : {1u, 2u, 1024u, kMaxFrameBytes}) {
    std::string prefix = U32le(n);
    Result<std::uint32_t> len = DecodeFrameLength(
        reinterpret_cast<const unsigned char*>(prefix.data()));
    ASSERT_TRUE(len.ok()) << n;
    EXPECT_EQ(*len, n);
  }
}

TEST(FrameLength, RejectsZeroAndOversize) {
  for (std::uint32_t n : {0u, kMaxFrameBytes + 1, 0x7fffffffu, 0xffffffffu}) {
    std::string prefix = U32le(n);
    Result<std::uint32_t> len = DecodeFrameLength(
        reinterpret_cast<const unsigned char*>(prefix.data()));
    EXPECT_FALSE(len.ok()) << n;
    EXPECT_EQ(len.status().code(), StatusCode::kInvalidArgument) << n;
  }
}

TEST(FramePayload, SplitsTypeAndBody) {
  std::string payload;
  payload.push_back(static_cast<char>(MessageType::kPing));
  Result<Frame> frame = DecodeFramePayload(payload);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MessageType::kPing);
  EXPECT_TRUE(frame->body.empty());
}

TEST(FramePayload, RejectsEmptyAndUnknownTypes) {
  EXPECT_FALSE(DecodeFramePayload("").ok());
  // 0x05/0x06 and 0x86/0x87 are the probe types now; the first unknown
  // bytes on each side of the request/response split are 0x07 and 0x88.
  for (int type : {0x00, 0x07, 0x42, 0x80, 0x88, 0xff}) {
    std::string payload(1, static_cast<char>(type));
    Result<Frame> frame = DecodeFramePayload(payload);
    EXPECT_FALSE(frame.ok()) << "type 0x" << std::hex << type;
    EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(FrameEncode, PrefixRoundTripsThroughDecode) {
  std::string body = "payload-bytes";
  std::string wire = EncodeFrame(MessageType::kMetricsResult, body);
  ASSERT_GE(wire.size(), 5u);
  Result<std::uint32_t> len = DecodeFrameLength(
      reinterpret_cast<const unsigned char*>(wire.data()));
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(*len, wire.size() - 4);
  Result<Frame> frame = DecodeFramePayload(
      std::string_view(wire).substr(4));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MessageType::kMetricsResult);
  EXPECT_EQ(frame->body, body);
}

TEST(FrameEncode, OversizeBodyClampsToTypedErrorFrame) {
  std::string huge(kMaxFrameBytes + 16, 'x');
  std::string wire = EncodeFrame(MessageType::kMetricsResult, huge);
  Result<std::uint32_t> len = DecodeFrameLength(
      reinterpret_cast<const unsigned char*>(wire.data()));
  ASSERT_TRUE(len.ok());
  Result<Frame> frame = DecodeFramePayload(std::string_view(wire).substr(4));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MessageType::kError);
}

// ---------------------------------------------------------------------------
// Body codecs: round-trips.

TEST(QueryRequestCodec, RoundTripsAllFields) {
  QueryRequest q;
  q.tree_name = "corpus/small.term";
  q.program_text = "class tw\nstates q0 qf\nrule #top q0 [true] move stay qf";
  q.deadline_ms = 1234;
  Result<QueryRequest> back = DecodeQueryRequest(EncodeQueryRequest(q));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tree_name, q.tree_name);
  EXPECT_EQ(back->program_text, q.program_text);
  EXPECT_EQ(back->deadline_ms, q.deadline_ms);
}

TEST(QueryRequestCodec, RoundTripsEmptyStringsAndZeroDeadline) {
  QueryRequest q;  // all defaults
  Result<QueryRequest> back = DecodeQueryRequest(EncodeQueryRequest(q));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tree_name, "");
  EXPECT_EQ(back->program_text, "");
  EXPECT_EQ(back->deadline_ms, 0u);
}

TEST(QueryResultCodec, RoundTripsBothVerdicts) {
  for (bool accepted : {false, true}) {
    QueryResultMsg r;
    r.accepted = accepted;
    r.rung = 3;
    r.attempts = 4;
    r.steps = 123456789012345ll;
    r.atp_calls = 9876543210ll;
    Result<QueryResultMsg> back = DecodeQueryResult(EncodeQueryResult(r));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->accepted, accepted);
    EXPECT_EQ(back->rung, r.rung);
    EXPECT_EQ(back->attempts, r.attempts);
    EXPECT_EQ(back->steps, r.steps);
    EXPECT_EQ(back->atp_calls, r.atp_calls);
  }
}

TEST(ErrorCodec, RoundTripsEveryWireError) {
  for (int code = 1; code <= 10; ++code) {
    ErrorMsg e;
    e.code = static_cast<WireError>(code);
    e.message = "why: code " + std::to_string(code);
    Result<ErrorMsg> back = DecodeError(EncodeError(e));
    ASSERT_TRUE(back.ok()) << code;
    EXPECT_EQ(back->code, e.code);
    EXPECT_EQ(back->message, e.message);
  }
}

TEST(StatsCodec, RoundTripsOrderedEntries) {
  StatsMap stats;
  stats.entries = {{"server.requests_admitted", 41},
                   {"server.served_ok", 40},
                   {"server.drained", 1},
                   {"corpus.resident_bytes", 1ll << 40},
                   {"negative", -7}};
  Result<StatsMap> back = DecodeStats(EncodeStats(stats));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->entries.size(), stats.entries.size());
  for (std::size_t i = 0; i < stats.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].first, stats.entries[i].first) << i;
    EXPECT_EQ(back->entries[i].second, stats.entries[i].second) << i;
  }
  EXPECT_EQ(back->Value("server.drained"), 1);
  EXPECT_EQ(back->Value("absent", -1), -1);
}

TEST(ProbeCodec, RoundTripsBothFlags) {
  for (bool ok : {false, true}) {
    ProbeResultMsg probe;
    probe.ok = ok;
    std::string body = EncodeProbeResult(probe);
    ASSERT_EQ(body.size(), 1u);  // a probe answer is exactly one byte
    Result<ProbeResultMsg> back = DecodeProbeResult(body);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->ok, ok);
  }
}

TEST(ProbeCodec, ProbeFramesAreMinimal) {
  // Probe requests carry no body: the frame is the 4-byte prefix plus
  // the type byte, nothing else — a balancer can afford to send one
  // per routing decision.
  for (MessageType probe : {MessageType::kHealth, MessageType::kReady}) {
    std::string wire = EncodeFrame(probe, "");
    EXPECT_EQ(wire.size(), 5u);
    Result<Frame> frame = DecodeFramePayload(std::string_view(wire).substr(4));
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->type, probe);
    EXPECT_TRUE(frame->body.empty());
  }
}

// ---------------------------------------------------------------------------
// The malformation table.  Each case is a raw body handed to one
// decoder; every one must produce kInvalidArgument, never a crash and
// never a value.

enum class Codec { kQuery, kResult, kError, kStats, kProbe };

struct MalformedCase {
  const char* name;
  Codec codec;
  std::string body;
};

std::string Bytes(std::initializer_list<int> bytes) {
  std::string out;
  for (int b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

std::vector<MalformedCase> MalformationTable() {
  std::vector<MalformedCase> table;

  // --- QueryRequest ---
  // Truncate a valid encoding at every byte boundary.
  QueryRequest q;
  q.tree_name = "t";
  q.program_text = "p";
  q.deadline_ms = 7;
  std::string valid = EncodeQueryRequest(q);
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    table.push_back({"query/truncated", Codec::kQuery, valid.substr(0, cut)});
  }
  table.push_back({"query/trailing-byte", Codec::kQuery, valid + '\0'});
  // Name length runs past the buffer.
  table.push_back({"query/name-overruns", Codec::kQuery, Bytes({0x10, 0x00})});
  // Name length over the kMaxTreeNameBytes cap (buffer long enough).
  {
    std::string body = Bytes({0x01, 0x01});  // 257
    body.append(257, 'n');
    body += U32le(0);  // program length
    body += U32le(0);  // deadline
    table.push_back({"query/name-over-cap", Codec::kQuery, body});
  }
  // Program length field claims 4 GiB.
  {
    std::string body = Bytes({0x01, 0x00});
    body.push_back('n');
    body += U32le(0xffffffffu);
    table.push_back({"query/program-overruns", Codec::kQuery, body});
  }

  // --- QueryResultMsg ---
  QueryResultMsg r;
  r.accepted = true;
  std::string valid_result = EncodeQueryResult(r);
  for (std::size_t cut = 0; cut < valid_result.size(); ++cut) {
    table.push_back(
        {"result/truncated", Codec::kResult, valid_result.substr(0, cut)});
  }
  table.push_back({"result/trailing-byte", Codec::kResult, valid_result + 'x'});
  {
    std::string bad = valid_result;
    bad[0] = 2;  // accepted must be 0 or 1
    table.push_back({"result/accepted-out-of-range", Codec::kResult, bad});
  }

  // --- ErrorMsg ---
  ErrorMsg e;
  e.code = WireError::kOverloaded;
  e.message = "m";
  std::string valid_error = EncodeError(e);
  for (std::size_t cut = 0; cut < valid_error.size(); ++cut) {
    table.push_back(
        {"error/truncated", Codec::kError, valid_error.substr(0, cut)});
  }
  table.push_back({"error/trailing-byte", Codec::kError, valid_error + 'x'});
  {
    std::string bad = valid_error;
    bad[0] = 0;  // codes are 1..10 (kOverloaded..kQuarantined)
    table.push_back({"error/code-zero", Codec::kError, bad});
    bad[0] = 11;
    table.push_back({"error/code-eleven", Codec::kError, bad});
  }
  {
    std::string body = Bytes({0x01});
    body += U32le(0xffffffffu);  // message length overruns
    table.push_back({"error/message-overruns", Codec::kError, body});
  }

  // --- StatsMap ---
  StatsMap stats;
  stats.entries = {{"k", 1}};
  std::string valid_stats = EncodeStats(stats);
  for (std::size_t cut = 0; cut < valid_stats.size(); ++cut) {
    table.push_back(
        {"stats/truncated", Codec::kStats, valid_stats.substr(0, cut)});
  }
  table.push_back({"stats/trailing-byte", Codec::kStats, valid_stats + 'x'});
  // Implausible entry count: would decode to more bytes than a frame
  // can carry, so it is rejected before any entry loop runs.
  table.push_back({"stats/implausible-count", Codec::kStats,
                   U32le(0xffffffffu)});
  // Key length over the cap.
  {
    std::string body = U32le(1);
    body += Bytes({0x01, 0x01});  // keylen 257
    body.append(257, 'k');
    body.append(8, '\0');
    table.push_back({"stats/key-over-cap", Codec::kStats, body});
  }

  // --- ProbeResultMsg ---
  table.push_back({"probe/empty", Codec::kProbe, ""});
  table.push_back({"probe/flag-two", Codec::kProbe, Bytes({0x02})});
  table.push_back({"probe/flag-255", Codec::kProbe, Bytes({0xff})});
  table.push_back({"probe/trailing-byte", Codec::kProbe, Bytes({0x01, 0x00})});

  return table;
}

TEST(MalformationTable, EveryCaseYieldsInvalidArgument) {
  int index = 0;
  for (const MalformedCase& test : MalformationTable()) {
    SCOPED_TRACE(std::string(test.name) + " (#" + std::to_string(index++) +
                 ", " + std::to_string(test.body.size()) + " bytes)");
    Status status = Status::Ok();
    switch (test.codec) {
      case Codec::kQuery:
        status = DecodeQueryRequest(test.body).status();
        break;
      case Codec::kResult:
        status = DecodeQueryResult(test.body).status();
        break;
      case Codec::kError:
        status = DecodeError(test.body).status();
        break;
      case Codec::kStats:
        status = DecodeStats(test.body).status();
        break;
      case Codec::kProbe:
        status = DecodeProbeResult(test.body).status();
        break;
    }
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
}

// Every decoder must also survive arbitrary garbage of various sizes —
// a cheap deterministic mini-fuzz run on every tier-1 build.
TEST(MalformationTable, DeterministicGarbageNeverCrashes) {
  std::uint64_t rng = 0x6d5a56964b2c91d3ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 512; ++round) {
    std::string body(static_cast<std::size_t>(next() % 64), '\0');
    for (char& c : body) c = static_cast<char>(next() & 0xff);
    (void)DecodeQueryRequest(body);
    (void)DecodeQueryResult(body);
    (void)DecodeError(body);
    (void)DecodeStats(body);
    (void)DecodeProbeResult(body);
    (void)DecodeFramePayload(body);
    if (body.size() >= 4) {
      (void)DecodeFrameLength(
          reinterpret_cast<const unsigned char*>(body.data()));
    }
  }
}

// ---------------------------------------------------------------------------
// Status -> wire mapping: exhaustive, and never the OK placeholder.

TEST(WireErrorMapping, CoversEveryStatusCode) {
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kInvalidArgument),
            WireError::kInvalidRequest);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kNotFound), WireError::kNotFound);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kDeadlineExceeded),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kResourceExhausted),
            WireError::kResourceExhausted);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kCancelled), WireError::kCancelled);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kFailedPrecondition),
            WireError::kRejectedProgram);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kNondeterminism),
            WireError::kRejectedProgram);
  EXPECT_EQ(WireErrorFromStatus(StatusCode::kInternal), WireError::kInternal);
}

TEST(WireErrorMapping, NamesAreStable) {
  EXPECT_STREQ(WireErrorName(WireError::kOverloaded), "kOverloaded");
  EXPECT_STREQ(WireErrorName(WireError::kDraining), "kDraining");
  EXPECT_STREQ(WireErrorName(WireError::kQuarantined), "kQuarantined");
  EXPECT_STREQ(MessageTypeName(MessageType::kQuery), "query");
  EXPECT_STREQ(MessageTypeName(MessageType::kPong), "pong");
  EXPECT_STREQ(MessageTypeName(MessageType::kHealth), "health");
  EXPECT_STREQ(MessageTypeName(MessageType::kReady), "ready");
  EXPECT_STREQ(MessageTypeName(MessageType::kHealthResult), "health-result");
  EXPECT_STREQ(MessageTypeName(MessageType::kReadyResult), "ready-result");
}

}  // namespace
}  // namespace treewalk
