// Round-trip, corruption, resource-governance, and fault-injection
// coverage for the mmap-able tree snapshot format (src/tree/snapshot.h).
// The contract under test: a loaded tree is indistinguishable from the
// tree that was written — same navigation, labels, attributes, values,
// and postorder — and every way a file can be wrong (truncated, bit-
// flipped, version-skewed, injected fault) surfaces as a clean Status,
// never a crash and never a silently different tree.

#include "src/tree/snapshot.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/atomic_file.h"
#include "src/common/crc32c.h"
#include "src/common/failpoint.h"
#include "src/common/governor.h"
#include "src/common/metrics.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/tree/traversal.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

std::string TempPath(const char* tag) {
  return testing::TempDir() + "/snapshot_test_" + tag + "_" +
         std::to_string(::getpid()) + ".twsnap";
}

Tree SampleTree() {
  TreeBuilder b;
  auto r = b.AddRoot("doc");
  auto s1 = b.AddChild(r, "section");
  auto s2 = b.AddChild(r, "section");
  auto p1 = b.AddChild(s1, "para");
  auto p2 = b.AddChild(s1, "para");
  auto p3 = b.AddChild(s2, "para");
  b.SetAttr(p1, "id", 7);
  b.SetAttr(p2, "id", 9);
  b.SetAttrString(p3, "title", "héllo — κόσμε");
  b.SetAttrString(r, "title", "");
  return b.Build();
}

Tree RandomInput(int n, unsigned seed = 1234) {
  std::mt19937 rng(seed);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b", "c"};
  options.attributes = {"x", "y"};
  return RandomTree(rng, options);
}

/// Full structural equality: every navigation pointer, label name,
/// attribute value (resolved through the value interner so string
/// values compare by content), for every node.
void ExpectTreesEqual(const Tree& a, const Tree& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.num_attributes(), b.num_attributes());
  for (NodeId u = 0; u < static_cast<NodeId>(a.size()); ++u) {
    EXPECT_EQ(a.LabelName(a.label(u)), b.LabelName(b.label(u))) << u;
    EXPECT_EQ(a.Parent(u), b.Parent(u)) << u;
    EXPECT_EQ(a.FirstChild(u), b.FirstChild(u)) << u;
    EXPECT_EQ(a.LastChild(u), b.LastChild(u)) << u;
    EXPECT_EQ(a.NextSibling(u), b.NextSibling(u)) << u;
    EXPECT_EQ(a.PrevSibling(u), b.PrevSibling(u)) << u;
    EXPECT_EQ(a.SubtreeEnd(u), b.SubtreeEnd(u)) << u;
    EXPECT_EQ(a.ChildIndex(u), b.ChildIndex(u)) << u;
    EXPECT_EQ(a.ChildCount(u), b.ChildCount(u)) << u;
    for (AttrId at = 0; at < static_cast<AttrId>(a.num_attributes()); ++at) {
      EXPECT_EQ(a.attributes().NameOf(at), b.attributes().NameOf(at));
      const DataValue va = a.attr(at, u);
      const DataValue vb = b.attr(at, u);
      EXPECT_EQ(va, vb) << "attr " << at << " node " << u;
      // Resolve through the interner too: equal handles must also mean
      // equal text after a load.
      EXPECT_EQ(a.values().Render(va), b.values().Render(vb)) << u;
    }
  }
}

std::int64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().FindOrCreateCounter(name, "")->value();
}

TEST(SnapshotRoundTrip, HandBuiltTree) {
  const Tree original = SampleTree();
  const std::string path = TempPath("hand");
  SnapshotInfo written;
  auto w = WriteTreeSnapshot(original, path);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  written = *w;
  EXPECT_EQ(written.nodes, original.size());
  EXPECT_EQ(written.version, kSnapshotVersion);
  EXPECT_EQ(written.sections.size(), 7u);

  SnapshotInfo read;
  auto loaded = LoadTreeSnapshot(path, nullptr, &read);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(read.content_hash, written.content_hash);
  ExpectTreesEqual(original, *loaded);
  std::remove(path.c_str());
}

TEST(SnapshotRoundTrip, RandomTreeAndEncodedImageIsDeterministic) {
  const Tree original = RandomInput(500);
  const std::string image1 = EncodeTreeSnapshot(original);
  const std::string image2 = EncodeTreeSnapshot(original);
  EXPECT_EQ(image1, image2);

  auto loaded = TreeFromSnapshotImage(
      std::make_shared<const std::string>(image1));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectTreesEqual(original, *loaded);

  // Re-encoding the loaded tree reproduces the image byte-for-byte:
  // nothing (ids, interner handles, postorder) shifts across a load.
  EXPECT_EQ(EncodeTreeSnapshot(*loaded), image1);
}

TEST(SnapshotRoundTrip, ContentHashMatchesParsedTree) {
  const Tree original = RandomInput(200, 77);
  auto image = std::make_shared<const std::string>(
      EncodeTreeSnapshot(original));
  auto loaded = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(TreeContentHash(original), TreeContentHash(*loaded));

  // And through a text round trip: the hash keys the selector cache,
  // so parse(print(t)) must land on the same key as mmap(write(t)).
  auto reparsed = ParseTerm(PrintTerm(original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(TreeContentHash(original), TreeContentHash(*reparsed));
}

TEST(SnapshotRoundTrip, EmptyTree) {
  const Tree empty;
  auto image = std::make_shared<const std::string>(
      EncodeTreeSnapshot(empty));
  auto loaded = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->empty());
  EXPECT_EQ(loaded->root(), kNoNode);
}

TEST(SnapshotRoundTrip, PostorderIsAdoptedNotRecomputed) {
  const Tree original = RandomInput(300, 9);
  auto image = std::make_shared<const std::string>(
      EncodeTreeSnapshot(original));
  auto loaded = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded.ok());
  ASSERT_NE(loaded->snapshot_postorder(), nullptr);

  // The adopted ranks must equal a fresh postorder numbering.
  std::vector<NodeId> order = PostOrder(original);
  std::vector<NodeId> rank(original.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
  }
  const NodeId* adopted = loaded->snapshot_postorder();
  for (std::size_t u = 0; u < original.size(); ++u) {
    EXPECT_EQ(adopted[u], rank[u]) << "node " << u;
  }

  // A parsed tree has no snapshot section to adopt.
  EXPECT_EQ(original.snapshot_postorder(), nullptr);
}

TEST(SnapshotInterners, IdsStableAcrossWriteLoad) {
  // Duplicate-heavy, empty-string, and non-ASCII entries: the loaded
  // interner must resolve every original handle to the same text and
  // assign the same handle for new lookups.
  TreeBuilder b;
  auto r = b.AddRoot("λ");
  for (int i = 0; i < 40; ++i) {
    auto c = b.AddChild(r, i % 2 == 0 ? "λ" : "μ");
    b.SetAttrString(c, "k", i % 3 == 0 ? "" : "значение");
  }
  const Tree original = b.Build();
  auto loaded = TreeFromSnapshotImage(
      std::make_shared<const std::string>(EncodeTreeSnapshot(original)));
  ASSERT_TRUE(loaded.ok());

  ASSERT_EQ(original.labels().size(), loaded->labels().size());
  for (Symbol s = 0; s < static_cast<Symbol>(original.labels().size());
       ++s) {
    EXPECT_EQ(original.labels().NameOf(s), loaded->labels().NameOf(s));
  }
  EXPECT_EQ(loaded->FindLabel("λ"), original.FindLabel("λ"));
  EXPECT_EQ(loaded->FindLabel("μ"), original.FindLabel("μ"));
  EXPECT_EQ(loaded->FindAttribute("k"), original.FindAttribute("k"));
  EXPECT_EQ(loaded->values().size(), original.values().size());
}

TEST(SnapshotCopyOnWrite, MutatingLoadedTreeDetachesFromImage) {
  const Tree original = SampleTree();
  auto image = std::make_shared<const std::string>(
      EncodeTreeSnapshot(original));
  auto loaded = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded.ok());

  const AttrId id = loaded->FindAttribute("id");
  ASSERT_GE(id, 0);
  loaded->set_attr(id, 0, 42);
  EXPECT_EQ(loaded->attr(id, 0), 42);
  // The shared image is untouched: a second load still sees the
  // original value.
  auto loaded2 = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded2.ok());
  EXPECT_EQ(loaded2->attr(id, 0), original.attr(id, 0));
}

TEST(SnapshotCopies, CopyAndMoveOfMappedTreeStayValid) {
  const Tree original = RandomInput(64, 5);
  auto loaded = TreeFromSnapshotImage(
      std::make_shared<const std::string>(EncodeTreeSnapshot(original)));
  ASSERT_TRUE(loaded.ok());

  Tree copy = *loaded;       // deep copy of a view-backed tree
  Tree moved = std::move(*loaded);
  ExpectTreesEqual(original, copy);
  ExpectTreesEqual(original, moved);
  Tree reassigned;
  reassigned = std::move(moved);
  ExpectTreesEqual(original, reassigned);
}

TEST(SnapshotValidation, EveryTruncationFailsCleanly) {
  const Tree original = SampleTree();
  const std::string image = EncodeTreeSnapshot(original);
  for (std::size_t len = 0; len < image.size(); ++len) {
    auto cut = std::make_shared<const std::string>(image.substr(0, len));
    auto loaded = TreeFromSnapshotImage(cut);
    EXPECT_FALSE(loaded.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(SnapshotValidation, EveryByteCorruptionFailsCleanly) {
  // Flip one bit in every byte.  Each corruption must be rejected OR
  // (never in practice for CRC-protected bytes, but tolerated for the
  // padding) decode to a tree identical to the original.
  const Tree original = SampleTree();
  const std::string image = EncodeTreeSnapshot(original);
  int rejected = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    auto loaded = TreeFromSnapshotImage(
        std::make_shared<const std::string>(corrupt));
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    ExpectTreesEqual(original, *loaded);
  }
  // The format is almost entirely CRC-covered; only inter-section
  // padding can flip without detection.
  EXPECT_GT(rejected, static_cast<int>(image.size()) * 9 / 10);
}

TEST(SnapshotValidation, VersionSkewIsRejected) {
  const Tree original = SampleTree();
  std::string image = EncodeTreeSnapshot(original);
  // Bump the version field (offset 8) and re-stamp the header CRC so
  // only the version check can reject it.
  image[8] = static_cast<char>(image[8] + 1);
  const std::uint32_t crc = Crc32c(std::string_view(image.data(), 60));
  image[60] = static_cast<char>(crc);
  image[61] = static_cast<char>(crc >> 8);
  image[62] = static_cast<char>(crc >> 16);
  image[63] = static_cast<char>(crc >> 24);
  auto loaded = TreeFromSnapshotImage(
      std::make_shared<const std::string>(image));
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("version"), std::string::npos);
}

TEST(SnapshotValidation, MissingFileIsNotFound) {
  auto loaded = LoadTreeSnapshot(TempPath("missing"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotValidation, FailuresAreCounted) {
  const std::int64_t before =
      CounterValue("treewalk_snapshot_load_failures_total");
  (void)TreeFromSnapshotImage(
      std::make_shared<const std::string>("definitely not a snapshot"));
  EXPECT_EQ(CounterValue("treewalk_snapshot_load_failures_total"),
            before + 1);
}

TEST(SnapshotGovernor, ChargesAndReleasesMappedBytes) {
  const Tree original = RandomInput(128, 3);
  const std::string path = TempPath("gov");
  auto written = WriteTreeSnapshot(original, path);
  ASSERT_TRUE(written.ok());

  ResourceGovernor governor;
  governor.set_memory_budget(std::int64_t{1} << 30);
  {
    auto loaded = LoadTreeSnapshot(path, &governor);
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(governor.accountant()->used(MemoryCategory::kMappedSnapshot),
              static_cast<std::int64_t>(written->file_bytes));
    Tree copy = *loaded;  // shares the mapping; no double release later
    ExpectTreesEqual(original, copy);
  }
  EXPECT_EQ(governor.accountant()->used(MemoryCategory::kMappedSnapshot), 0);
  EXPECT_EQ(governor.accountant()->peak(MemoryCategory::kMappedSnapshot),
            static_cast<std::int64_t>(written->file_bytes));
  std::remove(path.c_str());
}

TEST(SnapshotGovernor, BudgetTripRejectsLoad) {
  const Tree original = RandomInput(128, 3);
  const std::string path = TempPath("budget");
  ASSERT_TRUE(WriteTreeSnapshot(original, path).ok());

  ResourceGovernor governor;
  governor.set_memory_budget(16);  // far below the file size
  auto loaded = LoadTreeSnapshot(path, &governor);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(governor.accountant()->used(MemoryCategory::kMappedSnapshot), 0);
  std::remove(path.c_str());
}

TEST(SnapshotFailpoints, InjectedLoadFaultFallsThroughAsStatus) {
  const Tree original = SampleTree();
  const std::string path = TempPath("fp");
  ASSERT_TRUE(WriteTreeSnapshot(original, path).ok());

  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  config.message = "injected";
  FailpointRegistry::Global().Enable("snapshot/load", config);
  const std::int64_t before =
      CounterValue("treewalk_snapshot_load_failures_total");
  auto first = LoadTreeSnapshot(path);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kInternal);
  EXPECT_EQ(CounterValue("treewalk_snapshot_load_failures_total"),
            before + 1);
  // The site fires once; the retry succeeds with an identical tree.
  auto second = LoadTreeSnapshot(path);
  ASSERT_TRUE(second.ok());
  ExpectTreesEqual(original, *second);
  FailpointRegistry::Global().DisableAll();
  std::remove(path.c_str());
}

TEST(SnapshotInspect, ReportsSectionsAndRejectsGarbage) {
  const Tree original = SampleTree();
  const std::string path = TempPath("inspect");
  ASSERT_TRUE(WriteTreeSnapshot(original, path).ok());
  auto info = InspectTreeSnapshot(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->nodes, original.size());
  ASSERT_EQ(info->sections.size(), 7u);
  for (const auto& sec : info->sections) {
    EXPECT_NE(std::string(SnapshotSectionName(sec.kind)), "?");
  }
  ASSERT_TRUE(WriteFileAtomic(path, "garbage").ok());
  EXPECT_FALSE(InspectTreeSnapshot(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace treewalk
