// Metamorphic and structural tests for the interval-encoded axis layer
// (src/tree/axis_index.h, src/tree/interval_matrix.h) and the
// interval-backed compiled evaluator on top of it:
//
//   - the pre/post-order numbering invariant desc(u, v) <=> u < v and
//     post[v] < post[u] that every interval row is derived from;
//   - interval axis rows versus the dense NodeMatrix oracle;
//   - linear span counts on adversarial shapes (chains, full trees,
//     document-shaped trees) — the O(n) claim, not just correctness;
//   - selector stability under label-preserving sibling reorder for
//     order-axis-free formulas, with answers mapped through the exact
//     old-id -> new-id permutation;
//   - monotone shrinkage of positive-existential selectors under leaf
//     deletion;
//   - the million-node budget wall: interval compilation fits a linear
//     memory budget where the dense representation trips
//     kResourceExhausted on its first axis-matrix charge;
//   - per-thread AxisIndex isolation under concurrent compilation.
#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/logic/compile.h"
#include "src/logic/formula.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/interval_matrix.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

Formula Parse(const std::string& source) {
  Result<Formula> parsed = ParseFormula(source);
  EXPECT_TRUE(parsed.ok()) << source << ": " << parsed.status();
  return std::move(parsed).value();
}

std::vector<NodeId> Children(const Tree& t, NodeId u) {
  std::vector<NodeId> kids;
  for (NodeId c = t.FirstChild(u); c != kNoNode; c = t.NextSibling(c)) {
    kids.push_back(c);
  }
  return kids;
}

Tree RandomUnattributedTree(std::mt19937& rng, int num_nodes,
                            int max_children = 4) {
  RandomTreeOptions options;
  options.num_nodes = num_nodes;
  options.max_children = max_children;
  options.attributes = {};
  return RandomTree(rng, options);
}

// ---------------------------------------------------------------------
// Pre/post-order numbering.

TEST(AxisIntervalNumbering, PostorderRanksCharacterizeAncestry) {
  std::mt19937 rng(11);
  std::vector<Tree> trees;
  trees.push_back(FullTree(1, 40));  // chain
  trees.push_back(FullTree(3, 4));
  trees.push_back(XmlLikeTree(rng, 120));
  for (int i = 0; i < 8; ++i) {
    trees.push_back(RandomUnattributedTree(rng, 5 + 20 * i));
  }

  for (const Tree& t : trees) {
    const NodeId n = static_cast<NodeId>(t.size());
    AxisIndex index(t);
    Result<const std::vector<NodeId>*> governed = index.TryPostorderRanks();
    ASSERT_TRUE(governed.ok()) << governed.status();
    const std::vector<NodeId>& rank = **governed;
    ASSERT_EQ(rank, index.PostorderRanks());
    ASSERT_EQ(rank.size(), t.size());

    // The ranks are a permutation of [0, n).
    std::vector<NodeId> sorted = rank;
    std::sort(sorted.begin(), sorted.end());
    for (NodeId i = 0; i < n; ++i) ASSERT_EQ(sorted[i], i);

    // desc(u, v) <=> u < v (pre-order) and rank[v] < rank[u]
    // (post-order): the two-numbering ancestry criterion every
    // interval row rests on.  NodeIds are pre-order ranks already.
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        const bool by_ranks = u < v && rank[v] < rank[u];
        ASSERT_EQ(by_ranks, t.IsStrictAncestor(u, v))
            << "u=" << u << " v=" << v << " n=" << n;
      }
      // And the descendant interval is exactly (u, SubtreeEnd(u)).
      for (NodeId v = u + 1; v < t.SubtreeEnd(u); ++v) {
        ASSERT_TRUE(t.IsStrictAncestor(u, v));
      }
      if (t.SubtreeEnd(u) < n) {
        ASSERT_FALSE(t.IsStrictAncestor(u, t.SubtreeEnd(u)));
      }
    }
  }
}

// ---------------------------------------------------------------------
// Interval axis rows versus the dense oracle.

TEST(AxisIntervalAxes, IntervalRowsMatchDenseMatrices) {
  std::mt19937 rng(23);
  std::vector<Tree> trees;
  trees.push_back(FullTree(1, 15));
  trees.push_back(FullTree(4, 3));
  trees.push_back(XmlLikeTree(rng, 90));
  for (int i = 0; i < 12; ++i) {
    trees.push_back(RandomUnattributedTree(rng, 3 + 11 * i, 2 + i % 5));
  }

  for (const Tree& t : trees) {
    AxisIndex index(t);
    const NodeId n = static_cast<NodeId>(t.size());
    const std::pair<Result<const IntervalMatrix*>, const NodeMatrix*>
        axes[] = {
            {index.TryEdgeIntervals(), &index.EdgeMatrix()},
            {index.TryDescendantIntervals(), &index.DescendantMatrix()},
            {index.TrySiblingIntervals(), &index.SiblingMatrix()},
            {index.TrySuccIntervals(), &index.SuccMatrix()},
            {index.TryIdentityIntervals(), &index.IdentityMatrix()},
        };
    for (const auto& [intervals, dense] : axes) {
      ASSERT_TRUE(intervals.ok()) << intervals.status();
      const IntervalMatrix& im = **intervals;
      ASSERT_EQ(im.ToDense(), *dense);
      for (NodeId u = 0; u < n; ++u) {
        ASSERT_EQ(im.RowSet(u), dense->RowSet(u)) << "row " << u;
      }
    }
  }
}

TEST(AxisIntervalAxes, SpanCountsStayLinearOnAdversarialShapes) {
  std::mt19937 rng(31);
  std::vector<Tree> trees;
  trees.push_back(FullTree(1, 1999));        // chain: worst case for desc
  trees.push_back(FullTree(2, 10));          // 2047 nodes, bushy
  trees.push_back(XmlLikeTree(rng, 2000));   // long flat sibling runs
  trees.push_back(RandomUnattributedTree(rng, 2000, 6));

  for (const Tree& t : trees) {
    AxisIndex index(t);
    const std::size_t n = t.size();
    const Result<const IntervalMatrix*> axes[] = {
        index.TryEdgeIntervals(),     index.TryDescendantIntervals(),
        index.TrySiblingIntervals(),  index.TrySuccIntervals(),
        index.TryIdentityIntervals(),
    };
    for (const auto& intervals : axes) {
      ASSERT_TRUE(intervals.ok()) << intervals.status();
      const IntervalMatrix& im = **intervals;
      // Every tau axis is span-sparse on the pre-order arena: at most
      // a couple of spans per row amortized, independent of shape.
      EXPECT_LE(im.StoredSpans(), 2 * n + 4);
      // And the footprint beats one dense matrix outright at n=2000.
      EXPECT_LT(im.ApproxBytes(), index.MatrixBytes());
    }
  }
}

// ---------------------------------------------------------------------
// Metamorphic: sibling reorder.

// Rebuilds `t` with each node's child list rotated by a random amount,
// returning the new tree and the exact old-NodeId -> new-NodeId map
// (TreeBuilder::Build exposes the builder-Ref -> document-order-id
// mapping, so no structural matching is needed).
std::pair<Tree, std::vector<NodeId>> ReorderSiblings(const Tree& t,
                                                     std::mt19937& rng) {
  TreeBuilder builder;
  std::vector<TreeBuilder::Ref> ref_of(t.size());
  ref_of[0] = builder.AddRoot(t.LabelName(t.label(0)));
  auto emit = [&](auto&& self, NodeId u) -> void {
    std::vector<NodeId> kids = Children(t, u);
    if (kids.empty()) return;
    std::uniform_int_distribution<std::size_t> pick(0, kids.size() - 1);
    std::rotate(kids.begin(), kids.begin() + pick(rng), kids.end());
    for (NodeId c : kids) {
      ref_of[static_cast<std::size_t>(c)] =
          builder.AddChild(ref_of[static_cast<std::size_t>(u)],
                           t.LabelName(t.label(c)));
      self(self, c);
    }
  };
  emit(emit, 0);

  std::vector<NodeId> ref_to_node;
  Tree reordered = builder.Build(&ref_to_node);
  std::vector<NodeId> old_to_new(t.size());
  for (std::size_t u = 0; u < t.size(); ++u) {
    old_to_new[u] = ref_to_node[static_cast<std::size_t>(ref_of[u])];
  }
  return {std::move(reordered), std::move(old_to_new)};
}

TEST(AxisIntervalMetamorphic, SelectorsStableUnderSiblingReorder) {
  // Order-axis-free selectors (E, desc, lab, leaf, root only — no sib,
  // succ, first, last): their answer set is invariant under any
  // label-preserving permutation of child lists, up to the induced
  // renumbering.
  const std::vector<Formula> selectors = {
      Parse("desc(x, y) & lab(y, #a)"),
      Parse("exists z (E(x, z) & E(z, y))"),
      Parse("exists z (desc(x, z) & lab(z, #b) & E(z, y))"),
      Parse("forall z (E(y, z) -> lab(z, #a))"),
      Parse("leaf(y) & desc(x, y)"),
  };

  std::mt19937 rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = RandomUnattributedTree(rng, 4 + (trial % 10) * 5,
                                    2 + trial % 4);
    auto [reordered, old_to_new] = ReorderSiblings(t, rng);
    ASSERT_EQ(reordered.size(), t.size());
    // The map is a permutation preserving labels.
    for (std::size_t u = 0; u < t.size(); ++u) {
      ASSERT_EQ(t.LabelName(t.label(static_cast<NodeId>(u))),
                reordered.LabelName(reordered.label(old_to_new[u])));
    }

    AxisIndex index(t);
    AxisIndex reordered_index(reordered);
    for (const Formula& phi : selectors) {
      Result<CompiledSelector> before =
          CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
      Result<CompiledSelector> after = CompileSelector(
          reordered_index, phi, "x", "y", AxisRepr::kInterval);
      ASSERT_TRUE(before.ok()) << before.status();
      ASSERT_TRUE(after.ok()) << after.status();
      for (NodeId origin = 0; origin < static_cast<NodeId>(t.size());
           ++origin) {
        std::vector<NodeId> expected;
        for (NodeId v : before.value().SelectFrom(origin)) {
          expected.push_back(old_to_new[static_cast<std::size_t>(v)]);
        }
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(after.value().SelectFrom(
                      old_to_new[static_cast<std::size_t>(origin)]),
                  expected)
            << "trial " << trial << " origin " << origin;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Metamorphic: leaf deletion.

// Rebuilds `t` without leaf `victim` (child order preserved), returning
// the new tree and the old-id -> new-id map (kNoNode for the victim).
std::pair<Tree, std::vector<NodeId>> DeleteLeaf(const Tree& t,
                                                NodeId victim) {
  TreeBuilder builder;
  std::vector<TreeBuilder::Ref> ref_of(t.size(), -1);
  ref_of[0] = builder.AddRoot(t.LabelName(t.label(0)));
  auto emit = [&](auto&& self, NodeId u) -> void {
    for (NodeId c : Children(t, u)) {
      if (c == victim) continue;
      ref_of[static_cast<std::size_t>(c)] =
          builder.AddChild(ref_of[static_cast<std::size_t>(u)],
                           t.LabelName(t.label(c)));
      self(self, c);
    }
  };
  emit(emit, 0);

  std::vector<NodeId> ref_to_node;
  Tree pruned = builder.Build(&ref_to_node);
  std::vector<NodeId> old_to_new(t.size(), kNoNode);
  for (std::size_t u = 0; u < t.size(); ++u) {
    if (ref_of[u] >= 0) {
      old_to_new[u] = ref_to_node[static_cast<std::size_t>(ref_of[u])];
    }
  }
  return {std::move(pruned), std::move(old_to_new)};
}

TEST(AxisIntervalMetamorphic, PositiveSelectorsShrinkUnderLeafDeletion) {
  // Positive-existential selectors over E, desc, sib, lab: removing a
  // leaf can only remove witnesses, never add them (sib survives
  // because deleting a sibling preserves the relative order of the
  // rest; succ and leaf would not — deletion creates new successor
  // pairs and can turn the parent into a leaf).
  const std::vector<Formula> selectors = {
      Parse("desc(x, y) & lab(y, #a)"),
      Parse("exists z (E(x, z) & sib(z, y))"),
      Parse("exists z (E(x, z) & E(z, y))"),
      Parse("exists z (desc(x, z) & desc(z, y))"),
  };

  std::mt19937 rng(59);
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = RandomUnattributedTree(rng, 6 + (trial % 8) * 6,
                                    2 + trial % 4);
    std::vector<NodeId> leaves;
    for (NodeId u = 1; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.IsLeaf(u)) leaves.push_back(u);
    }
    ASSERT_FALSE(leaves.empty());
    std::uniform_int_distribution<std::size_t> pick(0, leaves.size() - 1);
    const NodeId victim = leaves[pick(rng)];
    auto [pruned, old_to_new] = DeleteLeaf(t, victim);
    ASSERT_EQ(pruned.size(), t.size() - 1);

    AxisIndex index(t);
    AxisIndex pruned_index(pruned);
    for (const Formula& phi : selectors) {
      Result<CompiledSelector> before =
          CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
      Result<CompiledSelector> after =
          CompileSelector(pruned_index, phi, "x", "y", AxisRepr::kInterval);
      ASSERT_TRUE(before.ok()) << before.status();
      ASSERT_TRUE(after.ok()) << after.status();
      for (NodeId origin = 0; origin < static_cast<NodeId>(t.size());
           ++origin) {
        if (origin == victim) continue;
        std::vector<NodeId> surviving;
        for (NodeId v : before.value().SelectFrom(origin)) {
          if (v != victim) {
            surviving.push_back(old_to_new[static_cast<std::size_t>(v)]);
          }
        }
        std::sort(surviving.begin(), surviving.end());
        const std::vector<NodeId> selected = after.value().SelectFrom(
            old_to_new[static_cast<std::size_t>(origin)]);
        // Shrinkage: everything selected after the deletion was
        // selected before it.
        EXPECT_TRUE(std::includes(surviving.begin(), surviving.end(),
                                  selected.begin(), selected.end()))
            << "trial " << trial << " origin " << origin;
      }
    }
  }
}

// ---------------------------------------------------------------------
// The million-node budget wall (ASan-focus: this is the allocation-
// heavy path ASan watches; the governor keeps it linear).

TEST(AxisIntervalBudget, MillionNodeChainFitsLinearBudgetDenseDoesNot) {
  constexpr int kNodes = 1000000;
  constexpr std::int64_t kBudget = std::int64_t{512} << 20;  // 512 MiB
  std::mt19937 rng(7001);
  const Tree t = RandomString(rng, kNodes, 4);
  const Formula phi = Parse("exists z (E(x, z) & E(z, y))");

  // Interval representation: the whole compilation — axis intervals,
  // the guarded join, the retained selector — fits a linear budget.
  ResourceGovernor interval_governor;
  interval_governor.set_memory_budget(kBudget);
  AxisIndex interval_index(t, &interval_governor);
  ASSERT_TRUE(interval_index.status().ok()) << interval_index.status();
  Result<CompiledSelector> compiled =
      CompileSelector(interval_index, phi, "x", "y", AxisRepr::kInterval);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled.value().repr(), AxisRepr::kInterval);
  // Grandchild on a chain: node u selects exactly {u + 2}.
  EXPECT_EQ(compiled.value().SelectFrom(0), std::vector<NodeId>{2});
  EXPECT_EQ(compiled.value().SelectFrom(kNodes / 2),
            std::vector<NodeId>{kNodes / 2 + 2});
  EXPECT_EQ(compiled.value().SelectFrom(kNodes - 2), std::vector<NodeId>{});
  EXPECT_EQ(compiled.value().SelectFrom(kNodes - 1), std::vector<NodeId>{});
  ASSERT_NE(interval_governor.accountant(), nullptr);
  EXPECT_FALSE(interval_governor.accountant()->tripped());
  EXPECT_GT(interval_governor.accountant()->peak(), 0);
  EXPECT_LE(interval_governor.accountant()->peak(), kBudget);

  // Dense representation: the very first axis matrix wants
  // n^2 / 8 bytes (~116 GiB) and trips the same budget up front, with
  // the axis-index charge named in the breakdown.
  ResourceGovernor dense_governor;
  dense_governor.set_memory_budget(kBudget);
  AxisIndex dense_index(t, &dense_governor);
  ASSERT_TRUE(dense_index.status().ok()) << dense_index.status();
  Result<CompiledSelector> dense =
      CompileSelector(dense_index, phi, "x", "y", AxisRepr::kDense);
  ASSERT_FALSE(dense.ok());
  EXPECT_EQ(dense.status().code(), StatusCode::kResourceExhausted)
      << dense.status();
  EXPECT_NE(dense.status().message().find("axis-index"), std::string::npos)
      << dense.status();
  EXPECT_TRUE(dense_governor.accountant()->tripped());
}

// ---------------------------------------------------------------------
// Concurrency: one AxisIndex per thread over one shared tree.

TEST(AxisIntervalThreads, PerThreadIndexesCompileConcurrently) {
  std::mt19937 rng(83);
  const Tree t = RandomUnattributedTree(rng, 1500, 5);
  const Formula phi = Parse("exists z (E(x, z) & E(z, y))");
  const NodeId origins[] = {0, 1, 700, static_cast<NodeId>(t.size()) - 1};

  // Reference answers, computed single-threaded.
  std::vector<std::vector<NodeId>> expected;
  for (NodeId origin : origins) {
    Result<std::vector<NodeId>> reference =
        SelectNodes(t, phi, origin, "x", "y");
    ASSERT_TRUE(reference.ok()) << reference.status();
    expected.push_back(std::move(reference).value());
  }

  // AxisIndex is documented not thread-safe; the supported pattern is
  // one index per runner.  Each thread builds its own over the shared
  // (read-only) tree and compiles both representations.
  constexpr int kThreads = 8;
  std::vector<int> failures(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        AxisIndex index(t);
        const AxisRepr repr =
            i % 2 == 0 ? AxisRepr::kInterval : AxisRepr::kDense;
        Result<CompiledSelector> compiled =
            CompileSelector(index, phi, "x", "y", repr);
        if (!compiled.ok()) {
          ++failures[i];
          return;
        }
        for (std::size_t k = 0; k < std::size(origins); ++k) {
          if (compiled.value().SelectFrom(origins[k]) != expected[k]) {
            ++failures[i];
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(failures[i], 0) << "thread " << i;
  }
}

}  // namespace
}  // namespace treewalk
