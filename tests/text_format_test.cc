#include <gtest/gtest.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/automata/text_format.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

TEST(ParseProgramText, MinimalProgram) {
  auto p = ParseProgramText(R"twp(
# accept every tree
class tw
states q0 qf
rule #top q0 [true] move stay qf
)twp");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program_class(), ProgramClass::kTw);
  EXPECT_EQ(p->rules().size(), 1u);
  auto t = ParseTerm("a(b)");
  ASSERT_TRUE(t.ok());
  auto verdict = Accepts(*p, *t);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
}

TEST(ParseProgramText, AllDirectivesAndActions) {
  auto p = ParseProgramText(R"twp(
class twrl
states q0 qf
register X1 1
register R 2
init X1 { (5) (6) }
init R { (1 2) (3 4) }
rule #top q0 [exists u X1(u)] atp X1 "desc(x, y) & leaf(y)" call q1
rule *    call [true] update X1(u) "u = attr(a)" ret
rule *    ret [true] move stay qf
rule #top q1 [true] move down q2
rule #open q2 [true] move right qf
)twp");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program_class(), ProgramClass::kTwRL);
  EXPECT_EQ(p->initial_store().num_relations(), 2u);
  EXPECT_EQ(p->initial_store().At(0).tuples(),
            (std::vector<Tuple>{{5}, {6}}));
  EXPECT_EQ(p->initial_store().At(1).tuples(),
            (std::vector<Tuple>{{1, 2}, {3, 4}}));
  EXPECT_EQ(p->rules().size(), 5u);
  EXPECT_EQ(p->rules()[0].action.kind, Action::Kind::kLookAhead);
  EXPECT_EQ(p->rules()[1].action.kind, Action::Kind::kUpdate);
}

TEST(ParseProgramText, Errors) {
  EXPECT_FALSE(ParseProgramText("rule a q0 [true] move stay qf").ok());
  EXPECT_FALSE(ParseProgramText("class bogus").ok());
  EXPECT_FALSE(ParseProgramText("class tw\nstates q0").ok());
  EXPECT_FALSE(
      ParseProgramText("class tw\nstates q0 qf\nrule a q0 [true] move "
                       "sideways qf")
          .ok());
  EXPECT_FALSE(
      ParseProgramText("class tw\nstates q0 qf\nrule a q0 [true] explode")
          .ok());
  EXPECT_FALSE(
      ParseProgramText("class tw\nstates q0 qf\nbogus directive").ok());
  EXPECT_FALSE(ParseProgramText("class tw\nstates q0 qf\nrule a q0 "
                                "[unterminated move stay qf")
                   .ok());
  // Class restrictions still apply through the text path.
  EXPECT_FALSE(ParseProgramText(R"twp(
class tw
states q0 qf
register X 1
)twp")
                   .ok());
}

TEST(ParseProgramText, CommentsAndBlankLines) {
  auto p = ParseProgramText(R"twp(
# leading comment

class tw
   # indented comment
states q0 qf
rule #top q0 [true] move stay qf
)twp");
  EXPECT_TRUE(p.ok()) << p.status();
}

TEST(ProgramToText, RoundTripsLibraryPrograms) {
  std::mt19937 rng(43);
  RandomTreeOptions options;
  options.num_nodes = 12;
  options.labels = {"sigma", "delta"};
  options.attributes = {"a"};
  options.value_range = 3;

  struct Named {
    const char* name;
    Result<Program> program;
  } programs[] = {
      {"example32", Example32Program()},
      {"has-label", HasLabelProgram("sigma")},
      {"parity", ParityProgram("delta")},
      {"root-value", RootValueAtSomeLeafProgram()},
      {"set-eq", SetEqualityProgram(-1)},
      {"set-eq-atp", SetEqualityViaLookaheadProgram(-1)},
  };
  for (auto& [name, program] : programs) {
    ASSERT_TRUE(program.ok()) << name << ": " << program.status();
    std::string text = ProgramToText(*program);
    auto round = ParseProgramText(text);
    ASSERT_TRUE(round.ok()) << name << ": " << round.status() << "\n" << text;
    // Same observable behaviour on random inputs.
    for (int trial = 0; trial < 5; ++trial) {
      Tree t = RandomTree(rng, options);
      auto a = Accepts(*program, t);
      auto b = Accepts(*round, t);
      ASSERT_TRUE(a.ok() && b.ok()) << name;
      EXPECT_EQ(*a, *b) << name << " trial " << trial;
    }
    // And the text itself is a fixpoint.
    EXPECT_EQ(ProgramToText(*round), text) << name;
  }
}

TEST(ProgramToText, EmitsInitialRegisters) {
  auto p = ParseProgramText(R"twp(
class twr
states q0 qf
register X 1
init X { (7) }
rule #top q0 [exists u (X(u) & u = 7)] move stay qf
)twp");
  ASSERT_TRUE(p.ok()) << p.status();
  std::string text = ProgramToText(*p);
  EXPECT_NE(text.find("init X { (7) }"), std::string::npos) << text;
  auto t = ParseTerm("a");
  auto verdict = Accepts(*p, *t);
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_TRUE(*verdict);
}

}  // namespace
}  // namespace treewalk
