#include <gtest/gtest.h>

#include "src/tree/term_io.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

TEST(ParseTerm, SingleNode) {
  auto r = ParseTerm("a");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
  EXPECT_EQ(r->LabelName(r->label(0)), "a");
}

TEST(ParseTerm, NestedChildren) {
  auto r = ParseTerm("a(b, c(d, e), f)");
  ASSERT_TRUE(r.ok()) << r.status();
  const Tree& t = *r;
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.ChildCount(0), 3);
  EXPECT_EQ(t.LabelName(t.label(t.FirstChild(2))), "d");
}

TEST(ParseTerm, NumericAttributes) {
  auto r = ParseTerm("a[id=0](b[id=1, a=-5])");
  ASSERT_TRUE(r.ok()) << r.status();
  AttrId id = r->FindAttribute("id");
  AttrId a = r->FindAttribute("a");
  EXPECT_EQ(r->attr(id, 1), 1);
  EXPECT_EQ(r->attr(a, 1), -5);
}

TEST(ParseTerm, StringAttributes) {
  auto r = ParseTerm(R"(item[name="nut", kind="bolt\"x"])");
  ASSERT_TRUE(r.ok()) << r.status();
  AttrId name = r->FindAttribute("name");
  EXPECT_EQ(r->values().Render(r->attr(name, 0)), "nut");
  AttrId kind = r->FindAttribute("kind");
  EXPECT_EQ(r->values().Render(r->attr(kind, 0)), "bolt\"x");
}

TEST(ParseTerm, WhitespaceInsensitive) {
  auto r = ParseTerm("  a (\n b\t[ x = 3 ] ,c )  ");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParseTerm, EmptyAttributeList) {
  auto r = ParseTerm("a[]");
  ASSERT_TRUE(r.ok()) << r.status();
}

TEST(ParseTerm, DelimiterLabels) {
  auto r = ParseTerm("#top(#open, a, #close)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->LabelName(r->label(0)), "#top");
}

TEST(ParseTerm, Errors) {
  EXPECT_FALSE(ParseTerm("").ok());
  EXPECT_FALSE(ParseTerm("a(").ok());
  EXPECT_FALSE(ParseTerm("a(b,)").ok());
  EXPECT_FALSE(ParseTerm("a)b").ok());
  EXPECT_FALSE(ParseTerm("a[x]").ok());
  EXPECT_FALSE(ParseTerm("a[x=]").ok());
  EXPECT_FALSE(ParseTerm("a[x=\"unterminated]").ok());
  EXPECT_FALSE(ParseTerm("a b").ok());
  EXPECT_FALSE(ParseTerm("1a").ok());
}

TEST(PrintTerm, RoundTripsShape) {
  const std::string src = "a[id=1](b[id=2], c[id=3](d[id=4]))";
  auto t = ParseTerm(src);
  ASSERT_TRUE(t.ok());
  std::string printed = PrintTerm(*t);
  auto t2 = ParseTerm(printed);
  ASSERT_TRUE(t2.ok()) << printed << " -> " << t2.status();
  EXPECT_EQ(PrintTerm(*t2), printed);
  EXPECT_EQ(t2->size(), t->size());
}

TEST(PrintTerm, SkipsZeroAttributesByDefault) {
  auto t = ParseTerm("a[x=0](b[x=7])");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(PrintTerm(*t), "a(b[x=7])");
  EXPECT_EQ(PrintTerm(*t, /*skip_zero_attrs=*/false), "a[x=0](b[x=7])");
}

TEST(StringTree, BuildsMonadicTree) {
  Tree t = StringTree({3, 1, 4, 1});
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.ChildCount(0), 1);
  EXPECT_EQ(t.ChildCount(3), 0);
  EXPECT_EQ(StringValues(t), (std::vector<DataValue>{3, 1, 4, 1}));
}

TEST(StringTree, SingleElement) {
  Tree t = StringTree({9});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(StringValues(t), (std::vector<DataValue>{9}));
}

TEST(StringValues, MissingAttributeGivesEmpty) {
  Tree t = StringTree({1, 2});
  EXPECT_TRUE(StringValues(t, "nope").empty());
}

}  // namespace
}  // namespace treewalk
