// Tests for the span tracer (src/common/trace.h): parent links via
// span nesting, bounded per-thread ring buffers with drop counting,
// multi-thread collection, re-enabling (generation bump), and the
// Chrome trace-event JSON shape.

#include "src/common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace treewalk {
namespace {

#ifndef TREEWALK_METRICS_DISABLED

const TraceEvent* FindByName(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Tracer, DisabledByDefaultAndRecordsNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Disable();
  { ScopedSpan span("ignored"); }
  tracer.Enable();
  tracer.Disable();
  EXPECT_TRUE(tracer.Collect().empty());
}

TEST(Tracer, NestedSpansCarryParentLinks) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan middle("middle");
      { ScopedSpan inner("inner", "\"k\":1"); }
    }
    { ScopedSpan sibling("sibling"); }
  }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 4u);
  const TraceEvent* outer = FindByName(events, "outer");
  const TraceEvent* middle = FindByName(events, "middle");
  const TraceEvent* inner = FindByName(events, "inner");
  const TraceEvent* sibling = FindByName(events, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(sibling, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(middle->parent_id, outer->id);
  EXPECT_EQ(inner->parent_id, middle->id);
  EXPECT_EQ(sibling->parent_id, outer->id);
  EXPECT_EQ(inner->args, "\"k\":1");
  // A child's window nests inside its parent's.
  EXPECT_GE(inner->ts_us, middle->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, middle->ts_us + middle->dur_us + 1);
}

TEST(Tracer, FullBufferCountsDropsInsteadOfGrowing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    ScopedSpan span("burst");
  }
  tracer.Disable();
  EXPECT_EQ(tracer.Collect().size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
}

TEST(Tracer, EnableResetsEventsAndDropCount) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(2);
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span("old");
  }
  EXPECT_GT(tracer.dropped(), 0u);
  tracer.Enable(64);  // re-enable: new generation, old events gone
  { ScopedSpan span("new"); }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "new");
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ThreadsGetDistinctTidsAndAllEventsCollect) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([]() {
      for (int i = 0; i < 10; ++i) {
        ScopedSpan span("worker");
      }
    });
  }
  for (std::thread& t : pool) t.join();
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * 10);
  std::vector<bool> seen_tid;
  for (const TraceEvent& e : events) {
    if (e.tid >= seen_tid.size()) seen_tid.resize(e.tid + 1, false);
    seen_tid[e.tid] = true;
  }
  int distinct = 0;
  for (bool b : seen_tid) distinct += b ? 1 : 0;
  EXPECT_EQ(distinct, kThreads);
  // Collect() is sorted by start timestamp.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(Tracer, RecordCompleteUsesCallerTimestamps) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  tracer.RecordComplete("premeasured", "\"job\":7", 100, 250);
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "premeasured");
  EXPECT_EQ(events[0].ts_us, 100u);
  EXPECT_EQ(events[0].dur_us, 250u);
  EXPECT_EQ(events[0].args, "\"job\":7");
}

// Golden shape of one rendered Chrome trace event.  Byte-exact modulo
// the measured numbers, which are pinned by RecordComplete.
TEST(Tracer, ChromeTraceJsonGolden) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  tracer.RecordComplete("step", "\"job\":3", 10, 20);
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  const std::string expected =
      "[\n{\"name\":\"step\",\"cat\":\"treewalk\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":" +
      std::to_string(events[0].tid) + ",\"ts\":10,\"dur\":20,\"args\":{"
      "\"span\":" +
      std::to_string(events[0].id) + ",\"parent\":0,\"job\":3}}\n]\n";
  EXPECT_EQ(tracer.ChromeTraceJson(), expected);
}

TEST(Tracer, ChromeTraceJsonEmptyIsAnEmptyArray) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  tracer.Disable();
  EXPECT_EQ(tracer.ChromeTraceJson(), "[\n]\n");
}

#else  // TREEWALK_METRICS_DISABLED

TEST(TracerDisabled, CompilesToInertStubs) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  { ScopedSpan span("nothing"); }
  EXPECT_FALSE(tracer.enabled());
  EXPECT_TRUE(tracer.Collect().empty());
  EXPECT_EQ(tracer.ChromeTraceJson(), "[]\n");
}

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace
}  // namespace treewalk
