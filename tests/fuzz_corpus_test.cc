// Replays the fuzz seed corpus (tests/fuzz/corpus) through the same
// entry points the libFuzzer harnesses drive, so tier-1 GCC builds —
// which cannot compile the -fsanitize=fuzzer targets — still execute
// every seed on every run.  Each file must produce a Result without
// crashing, and each corpus keeps at least one well-formed seed so
// mutation starts from valid inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/automata/text_format.h"
#include "tests/fuzz/axis_interval_driver.h"
#include "src/common/journal.h"
#include "src/engine/batch_journal.h"
#include "src/logic/parser.h"
#include "src/logic/selector_cache.h"
#include "src/server/frame.h"
#include "src/tree/snapshot.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"

#ifndef TREEWALK_SOURCE_DIR
#error "build must define TREEWALK_SOURCE_DIR"
#endif

namespace treewalk {
namespace {

std::vector<std::filesystem::path> CorpusFiles(const std::string& corpus) {
  std::filesystem::path dir =
      std::filesystem::path(TREEWALK_SOURCE_DIR) / "tests" / "fuzz" /
      "corpus" / corpus;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string Slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

template <typename Parse>
void ReplayCorpus(const std::string& corpus, Parse parse) {
  std::vector<std::filesystem::path> files = CorpusFiles(corpus);
  ASSERT_FALSE(files.empty()) << "empty corpus: " << corpus;
  int well_formed = 0;
  for (const std::filesystem::path& file : files) {
    std::string source = Slurp(file);
    if (parse(source)) ++well_formed;
    // Reaching here at all is the assertion: no crash, no overflow.
  }
  EXPECT_GT(well_formed, 0) << "no seed in corpus '" << corpus
                            << "' parses cleanly";
}

TEST(FuzzCorpus, FormulaSeedsReplayWithoutCrashing) {
  ReplayCorpus("formula",
               [](const std::string& s) { return ParseFormula(s).ok(); });
}

TEST(FuzzCorpus, TermSeedsReplayWithoutCrashing) {
  ReplayCorpus("term",
               [](const std::string& s) { return ParseTerm(s).ok(); });
}

TEST(FuzzCorpus, XmlSeedsReplayWithoutCrashing) {
  ReplayCorpus("xml",
               [](const std::string& s) { return ParseXml(s).ok(); });
}

TEST(FuzzCorpus, ProgramSeedsReplayWithoutCrashing) {
  ReplayCorpus("program", [](const std::string& s) {
    return ParseProgramText(s).ok();
  });
}

TEST(FuzzCorpus, JournalSeedsReplayWithoutCrashing) {
  // Mirrors fuzz_journal.cc: parse the image, feed whatever parses into
  // the resume planner, and also try the image as a bare batch record.
  ReplayCorpus("journal", [](const std::string& s) {
    Result<JournalContents> parsed = ParseJournal(s);
    bool clean = false;
    if (parsed.ok()) {
      EXPECT_LE(parsed->valid_bytes, s.size());
      Result<ResumePlan> plan = BuildResumePlan(*parsed);
      if (plan.ok()) {
        for (std::uint64_t id : plan->completed) {
          EXPECT_EQ(plan->in_flight.count(id), 0u);
        }
      }
      clean = !parsed->torn && plan.ok();
    }
    (void)DecodeBatchRecord(s);
    return clean;
  });
}

TEST(FuzzCorpus, SnapshotSeedsReplayWithoutCrashing) {
  // Mirrors fuzz_snapshot.cc: decode the image as a tree snapshot
  // (walking every node's O(1) accessors on success) and as a
  // selector-cache entry.  The corpus holds one intact snapshot plus
  // truncations and bit-flips of it; only the intact one may decode.
  ReplayCorpus("snapshot", [](const std::string& s) {
    auto image = std::make_shared<const std::string>(s);
    SnapshotInfo info;
    auto tree = TreeFromSnapshotImage(image, &info);
    if (tree.ok()) {
      EXPECT_EQ(tree->size(), info.nodes);
      const auto n = static_cast<NodeId>(tree->size());
      for (NodeId u = 0; u < n; ++u) {
        auto in_range = [n](NodeId v) {
          return v == kNoNode || (v >= 0 && v < n);
        };
        EXPECT_TRUE(in_range(tree->Parent(u)));
        EXPECT_TRUE(in_range(tree->FirstChild(u)));
        EXPECT_TRUE(in_range(tree->NextSibling(u)));
        EXPECT_LE(tree->SubtreeEnd(u), n);
        EXPECT_LE(tree->Depth(u), static_cast<int>(tree->size()));
      }
    }
    auto selector = DecodeSelectorCacheEntry(s, nullptr);
    if (selector.ok() && selector->tree_size() > 0) {
      (void)selector->SelectFrom(0);
    }
    return tree.ok() || selector.ok();
  });
}

TEST(FuzzCorpus, ServeFrameSeedsReplayWithoutCrashing) {
  // Mirrors fuzz_serve_frame.cc: the first byte selects a wire decoder
  // (src/server/frame.h), the rest is its body; whatever decodes must
  // re-encode to a decoding fixpoint.
  ReplayCorpus("serve_frame", [](const std::string& s) {
    if (s.empty()) return false;
    std::string_view body(s.data() + 1, s.size() - 1);
    auto fixpoint = [](auto decoded, auto encode, auto decode) {
      if (!decoded.ok()) return false;
      std::string wire = encode(*decoded);
      auto again = decode(wire);
      EXPECT_TRUE(again.ok());
      if (again.ok()) EXPECT_EQ(encode(*again), wire);
      return true;
    };
    switch (static_cast<std::uint8_t>(s[0]) % 7) {
      case 0: {
        if (body.size() >= 4) {
          auto len = DecodeFrameLength(
              reinterpret_cast<const unsigned char*>(body.data()));
          if (len.ok()) {
            EXPECT_GT(*len, 0u);
            EXPECT_LE(*len, kMaxFrameBytes);
          }
        }
        return DecodeFramePayload(body).ok();
      }
      case 1:
        return fixpoint(DecodeQueryRequest(body), EncodeQueryRequest,
                        DecodeQueryRequest);
      case 2:
        return fixpoint(DecodeQueryResult(body), EncodeQueryResult,
                        DecodeQueryResult);
      case 3:
        return fixpoint(DecodeError(body), EncodeError, DecodeError);
      case 4:
        return fixpoint(DecodeStats(body), EncodeStats, DecodeStats);
      case 5: {
        std::string wire = EncodeFrame(MessageType::kMetricsResult, body);
        auto frame = DecodeFramePayload(std::string_view(wire).substr(4));
        EXPECT_TRUE(frame.ok());
        return frame.ok() && frame->body == body;
      }
      default:
        return fixpoint(DecodeProbeResult(body), EncodeProbeResult,
                        DecodeProbeResult);
    }
  });
}

TEST(FuzzCorpus, AxisIntervalSeedsReplayWithoutCrashing) {
  // Mirrors fuzz_axis_interval.cc.  Unlike the parser corpora, every
  // byte string decodes to a valid tree, so "well-formed" here means
  // the interval/dense differential check agreed — which must be true
  // of every seed, not just one.
  std::vector<std::filesystem::path> files = CorpusFiles("axis_interval");
  ASSERT_FALSE(files.empty());
  for (const std::filesystem::path& file : files) {
    std::string bytes = Slurp(file);
    EXPECT_TRUE(AxisIntervalAgrees(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size(),
        512))
        << file;
  }
}

}  // namespace
}  // namespace treewalk
