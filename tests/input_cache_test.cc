// ResidentTreeCache (src/engine/input_cache.h): the byte-capped LRU
// that makes `twq serve` safe to point at a corpus larger than RAM.
// Covered here: LRU eviction order, accountant-charged occupancy and
// the eviction metric, refusal of entries larger than the whole cap,
// load-failure propagation, shared_ptr survival of an evicted entry
// under an in-flight query, and the never-loading Lookup() hot path.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/engine/input_cache.h"
#include "src/tree/delimited.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

Result<Tree> SmallTree() { return ParseTerm("a(b(c), d[x=1])"); }

// A cache sized to hold `n` copies of SmallTree() (delimited), with a
// little slack but not enough for n + 1.
std::int64_t CapacityFor(int n) {
  Tree delimited = std::move(Delimit(std::move(SmallTree()).value())).tree;
  std::int64_t per = ResidentTreeCache::ApproxTreeBytes(delimited);
  return per * n + per / 2;
}

TEST(ResidentTreeCache, GetOrLoadCachesAndLookupNeverLoads) {
  ResidentTreeCache cache(0);  // unlimited
  int loads = 0;
  auto load = [&loads]() {
    ++loads;
    return SmallTree();
  };
  auto first = cache.GetOrLoad("t", load);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ((*first)->name, "t");
  EXPECT_GT((*first)->source_nodes, 0u);
  EXPECT_GT((*first)->delimited.size(), (*first)->source_nodes);  // delimiters

  // A hit neither loads nor copies: same underlying entry.
  auto second = cache.GetOrLoad("t", load);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(first->get(), second->get());

  // Lookup serves the resident entry and refuses to load a missing one.
  EXPECT_EQ(cache.Lookup("t").get(), first->get());
  EXPECT_EQ(cache.Lookup("missing"), nullptr);
  EXPECT_EQ(loads, 1);

  EXPECT_EQ(cache.resident_trees(), 1);
  EXPECT_GT(cache.resident_bytes(), 0);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(ResidentTreeCache, LoadFailuresPropagateAndCacheNothing) {
  ResidentTreeCache cache(0);
  auto failed = cache.GetOrLoad(
      "bad", []() -> Result<Tree> { return InvalidArgument("no such tree"); });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.resident_trees(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
  EXPECT_EQ(cache.Lookup("bad"), nullptr);
}

TEST(ResidentTreeCache, EvictsLeastRecentlyUsedWhenOverCap) {
  if (kMetricsEnabled) MetricsRegistry::Global().ResetForTest();
  ResidentTreeCache cache(CapacityFor(2));
  ASSERT_TRUE(cache.GetOrLoad("a", SmallTree).ok());
  ASSERT_TRUE(cache.GetOrLoad("b", SmallTree).ok());
  EXPECT_EQ(cache.resident_trees(), 2);
  EXPECT_EQ(cache.evictions(), 0);

  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_NE(cache.Lookup("a"), nullptr);
  ASSERT_TRUE(cache.GetOrLoad("c", SmallTree).ok());
  EXPECT_EQ(cache.resident_trees(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);

  // Occupancy stays under the cap, and the high water saw both phases.
  EXPECT_LE(cache.resident_bytes(), cache.capacity_bytes());
  EXPECT_GE(cache.peak_bytes(), cache.resident_bytes());

  if (kMetricsEnabled) {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(snap.Value("treewalk_input_cache_evictions_total"), 1);
    EXPECT_EQ(snap.Value("treewalk_input_cache_resident_trees"), 2);
    EXPECT_EQ(snap.Value("treewalk_input_cache_resident_bytes"),
              cache.resident_bytes());
  }
}

TEST(ResidentTreeCache, EvictionNeverDropsAnInFlightEntry) {
  ResidentTreeCache cache(CapacityFor(1));
  auto pinned = std::move(cache.GetOrLoad("a", SmallTree)).value();
  std::size_t pinned_size = pinned->delimited.size();

  // Loading "b" evicts "a" from the cache…
  ASSERT_TRUE(cache.GetOrLoad("b", SmallTree).ok());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.evictions(), 1);

  // …but the in-flight handle keeps the tree alive and intact.
  EXPECT_EQ(pinned->delimited.size(), pinned_size);
  EXPECT_EQ(pinned->name, "a");
}

TEST(ResidentTreeCache, RefusesASingleTreeLargerThanTheWholeCap) {
  ResidentTreeCache cache(1024);  // far below any real tree's charge
  auto result = cache.GetOrLoad("huge", []() -> Result<Tree> {
    return Result<Tree>(FullTree(2, 10));
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  // Nothing was cached, and nothing already resident was evicted for it.
  EXPECT_EQ(cache.resident_trees(), 0);
  EXPECT_EQ(cache.resident_bytes(), 0);
}

TEST(ResidentTreeCache, ApproxBytesGrowsWithTreeSize) {
  Tree small = std::move(Delimit(FullTree(2, 3)).tree);
  Tree large = std::move(Delimit(FullTree(2, 8)).tree);
  EXPECT_GT(ResidentTreeCache::ApproxTreeBytes(large),
            ResidentTreeCache::ApproxTreeBytes(small));
  EXPECT_GT(ResidentTreeCache::ApproxTreeBytes(small), 0);
}

TEST(ResidentTreeCache, EmptyTreeIsRejected) {
  ResidentTreeCache cache(0);
  auto result =
      cache.GetOrLoad("empty", []() -> Result<Tree> { return Tree(); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(cache.resident_trees(), 0);
}

}  // namespace
}  // namespace treewalk
