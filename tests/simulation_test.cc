#include <gtest/gtest.h>

#include <random>

#include "src/automata/builder.h"
#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/simulation/config_graph.h"
#include "src/simulation/logspace_sim.h"
#include "src/simulation/pspace_compile.h"
#include "src/simulation/string_tm.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/xtm/library.h"
#include "src/xtm/run.h"

namespace treewalk {
namespace {

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

// --- E7: the LOGSPACE pebble simulation (Theorem 7.1(1)). --------------

TEST(LogspaceSim, RejectsMachinesOutsideTheRegime) {
  Xtm with_regs = XtmBooleanCircuit();
  EXPECT_EQ(RunLogspaceSimulation(with_regs, T("lit[v=1]")).status().code(),
            StatusCode::kFailedPrecondition);
  Xtm universal = XtmParity("a");
  universal.universal_states = {"fwd_e"};
  EXPECT_EQ(RunLogspaceSimulation(universal, T("a")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LogspaceSim, AgreesWithDirectRunOnParity) {
  Xtm m = XtmParity("b");
  for (const char* term : {"a", "b", "a(b, b)", "b(a(b), b)"}) {
    auto direct = RunXtm(m, T(term));
    auto sim = RunLogspaceSimulation(m, T(term));
    ASSERT_TRUE(direct.ok() && sim.ok()) << term << ": " << sim.status();
    EXPECT_EQ(direct->accepted, sim->accepted) << term;
  }
}

TEST(LogspaceSim, AgreesWithDirectRunOnBinaryCounter) {
  Xtm m = XtmCountMod4("x");
  // Trees large enough that the counter bits fit the rank capacity:
  // the delimited tree of n nodes has > 2n nodes, and the counter rank
  // stays below 4 * #x-nodes.
  std::mt19937 rng(9);
  RandomTreeOptions options;
  options.num_nodes = 40;
  options.labels = {"a", "a", "a", "a", "a", "a", "a", "x"};  // ~12% x nodes
  // keeps the counter rank safely below the delimited tree's capacity
  options.attributes = {};
  for (int trial = 0; trial < 8; ++trial) {
    Tree t = RandomTree(rng, options);
    auto direct = RunXtm(m, t);
    auto sim = RunLogspaceSimulation(m, t);
    ASSERT_TRUE(direct.ok()) << direct.status();
    ASSERT_TRUE(sim.ok()) << sim.status();
    EXPECT_EQ(direct->accepted, sim->accepted) << "trial " << trial;
    EXPECT_EQ(direct->space, sim->tape_cells) << "trial " << trial;
  }
}

TEST(LogspaceSim, WalkStepsArePolynomiallyBounded) {
  Xtm m = XtmCountMod4("x");
  // A chain of n nodes with x at every 4th position.
  auto make = [](int n) {
    TreeBuilder b;
    auto node = b.AddRoot("a");
    for (int i = 1; i < n; ++i) {
      node = b.AddChild(node, i % 4 == 0 ? "x" : "a");
    }
    return b.Build();
  };
  auto cost = [&](int n) {
    auto sim = RunLogspaceSimulation(m, make(n), XtmOptions{10'000'000, 0});
    EXPECT_TRUE(sim.ok()) << sim.status();
    return sim.ok() ? sim->walk_steps : 0;
  };
  std::int64_t c40 = cost(40);
  std::int64_t c80 = cost(80);
  ASSERT_GT(c40, 0);
  // Each of O(n) TM steps costs at most O(n log n) pebble moves; the
  // ratio between n=80 and n=40 must stay well under cubic.
  EXPECT_LT(c80, 8 * c40);
}

TEST(LogspaceSim, OverflowIsResourceExhausted) {
  // Counting every node of a long chain overflows the log2(n) capacity:
  // the counter rank reaches n but the delimited tree only has ~2n+4
  // nodes, so it fits; instead force overflow with a tiny tree and a
  // machine that writes a high bit forever... simplest: count every node
  // on a 3-node tree still fits, so spin the counter: reuse Dyck's
  // unary pebble on deep nesting where rank == nesting fits too.  The
  // robust trigger: alphabet 4 uses the plane-1 pebble whose rank can
  // exceed capacity on dense counts.  Count every node of a chain of 64:
  // counter value 64 -> rank 64+ on plane 0... the delimited chain has
  // ~130 nodes, still fits.  Overflow genuinely needs value > delimited
  // size: use XtmDyck (unary counter = rank grows by 1 per open) --
  // nesting n/2 fits as well.  So exercise the error path directly with
  // a machine that keeps incrementing a unary value forever.
  Xtm runaway;
  runaway.initial_state = "q0";
  runaway.accept_state = "acc";
  runaway.tape_alphabet_size = 2;
  XtmTransition t;
  t.state = "q0";
  t.label = "*";
  t.next_state = "q0";
  t.write = 1;
  t.tape_move = TapeMove::kRight;
  runaway.transitions = {t};
  auto r = RunLogspaceSimulation(runaway, T("a(b)"));
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// --- E8: configuration-graph evaluation of tw^l (Theorem 7.1(2)). ------

TEST(ConfigGraph, AgreesWithInterpreterOnLibraryPrograms) {
  std::mt19937 rng(21);
  auto check = [&](const Result<Program>& p, const Tree& t,
                   const char* what) {
    ASSERT_TRUE(p.ok()) << what << ": " << p.status();
    auto direct = Accepts(*p, t);
    auto graph = EvaluateViaConfigGraph(*p, t);
    ASSERT_TRUE(direct.ok()) << what << ": " << direct.status();
    ASSERT_TRUE(graph.ok()) << what << ": " << graph.status();
    EXPECT_EQ(*direct, graph->accepted) << what;
  };
  for (int trial = 0; trial < 6; ++trial) {
    RandomTreeOptions options;
    options.num_nodes = 15;
    options.value_range = 3;
    Tree t = RandomTree(rng, options);
    check(HasLabelProgram("b"), t, "has-label");
    check(ParityProgram("a"), t, "parity");
    check(RootValueAtSomeLeafProgram(), t, "root-value");
  }
  for (int trial = 0; trial < 4; ++trial) {
    Tree good = Example32Tree(rng, 12, true);
    Tree bad = Example32Tree(rng, 12, false);
    check(Example32Program(), good, "example32-good");
    check(Example32Program(), bad, "example32-bad");
  }
}

TEST(ConfigGraph, ConfigCountPolynomialForTwL) {
  auto p = RootValueAtSomeLeafProgram();
  ASSERT_TRUE(p.ok());
  auto count = [&](int n) {
    std::mt19937 rng(static_cast<unsigned>(n));
    RandomTreeOptions options;
    options.num_nodes = n;
    options.value_range = 2;
    Tree t = RandomTree(rng, options);
    auto r = EvaluateViaConfigGraph(*p, t);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->configs : 0u;
  };
  std::size_t c20 = count(20);
  std::size_t c40 = count(40);
  ASSERT_GT(c20, 0u);
  // |Q| * |delim(t)| configurations at most for this program (register
  // content is fixed after initialization): growth is ~linear.
  EXPECT_LT(c40, 5 * c20);
}

TEST(ConfigGraph, MemoizesRepeatedSubcomputations) {
  // Example 3.2 launches one subcomputation per delta node; each is
  // resolved exactly once through the memo table.
  auto p = Example32Program();
  ASSERT_TRUE(p.ok());
  Tree t = T("delta[a=1](delta[a=2](sigma[a=5]), sigma[a=5])");
  auto r = EvaluateViaConfigGraph(*p, t);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  // main + 2 delta checkers + 3 leaf-value calls... at least those.
  EXPECT_GE(r->memoized_calls, 4u);
}

TEST(ConfigGraph, SelfReferentialSubcomputationRejects) {
  // A program whose look-ahead restarts itself at the same node with the
  // same store: the direct interpreter would hit the depth budget; the
  // graph evaluator proves divergence and rejects.
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  b.OnLookAhead("#top", "q0", "true", "qf", "X", "y = x", "q0");
  auto p = b.Build();
  ASSERT_TRUE(p.ok()) << p.status();
  auto r = EvaluateViaConfigGraph(*p, T("a"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->accepted);
  // The direct interpreter diverges into the depth budget instead.
  auto direct = Accepts(*p, T("a"));
  EXPECT_EQ(direct.status().code(), StatusCode::kResourceExhausted);
}

// --- String TMs (the PSPACE substrate). ---------------------------------

std::vector<int> Wrap(std::vector<int> bits) {
  std::vector<int> out = {3};
  out.insert(out.end(), bits.begin(), bits.end());
  out.push_back(4);
  return out;
}

TEST(StringTm, ValidateCatchesErrors) {
  StringTm tm;
  EXPECT_FALSE(tm.Validate().ok());
  tm.initial_state = "q0";
  tm.accept_state = "acc";
  EXPECT_TRUE(tm.Validate().ok());
  tm.delta[{"acc", 0}] = {"q0", -1, StringTm::Dir::kStay};
  EXPECT_FALSE(tm.Validate().ok());
  tm.delta.clear();
  tm.delta[{"q0", 9}] = {"q0", -1, StringTm::Dir::kStay};
  EXPECT_FALSE(tm.Validate().ok());
}

TEST(StringTm, Palindrome) {
  StringTm tm = PalindromeTm();
  struct Case {
    std::vector<int> bits;
    bool accept;
  } cases[] = {
      {{}, true},         {{0}, true},        {{1}, true},
      {{0, 0}, true},     {{0, 1}, false},    {{1, 0, 1}, true},
      {{1, 1, 0}, false}, {{0, 1, 1, 0}, true},
      {{0, 1, 0, 1}, false}, {{1, 0, 0, 1, 0, 0, 1}, true},
  };
  for (const Case& c : cases) {
    auto r = RunStringTm(tm, Wrap(c.bits));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->accepted, c.accept) << ::testing::PrintToString(c.bits);
  }
}

TEST(StringTm, EqualCount) {
  StringTm tm = EqualCountTm();
  struct Case {
    std::vector<int> bits;
    bool accept;
  } cases[] = {
      {{}, true},          {{0}, false},       {{0, 1}, true},
      {{1, 0}, true},      {{1, 1, 0}, false}, {{0, 1, 1, 0}, true},
      {{1, 1, 1, 0}, false}, {{0, 0, 1, 1, 1, 0}, true},
  };
  for (const Case& c : cases) {
    auto r = RunStringTm(tm, Wrap(c.bits));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->accepted, c.accept) << ::testing::PrintToString(c.bits);
  }
}

TEST(StringTm, FallingOffRejects) {
  StringTm tm;
  tm.initial_state = "q0";
  tm.accept_state = "acc";
  tm.delta[{"q0", 0}] = {"q0", -1, StringTm::Dir::kLeft};
  auto r = RunStringTm(tm, {0, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  tm.delta[{"q0", 0}] = {"q0", -1, StringTm::Dir::kRight};
  auto r2 = RunStringTm(tm, {0, 0});
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->accepted);
}

TEST(StringTm, StepBudget) {
  StringTm tm;
  tm.initial_state = "q0";
  tm.accept_state = "acc";
  tm.delta[{"q0", 0}] = {"q1", -1, StringTm::Dir::kStay};
  tm.delta[{"q1", 0}] = {"q0", -1, StringTm::Dir::kStay};
  auto r = RunStringTm(tm, {0}, /*max_steps=*/50);
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// --- E9: the Theorem 7.1(3) compiler. -----------------------------------

TEST(PspaceCompile, CompiledProgramIsValidTwR) {
  auto p = CompileStringTmToTwR(PalindromeTm());
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->program_class(), ProgramClass::kTwR);
  // Registers: Next, P, Head + 5 tape relations.
  EXPECT_EQ(p->initial_store().num_relations(), 8u);
}

TEST(PspaceCompile, PalindromeAgreesWithDirectTm) {
  StringTm tm = PalindromeTm();
  auto p = CompileStringTmToTwR(tm);
  ASSERT_TRUE(p.ok()) << p.status();
  std::vector<std::vector<int>> inputs = {
      {}, {0}, {1, 0, 1}, {0, 1}, {1, 1}, {0, 1, 0, 1},
  };
  for (const auto& bits : inputs) {
    std::vector<int> wrapped = Wrap(bits);
    auto direct = RunStringTm(tm, wrapped);
    ASSERT_TRUE(direct.ok());
    Tree input = StringTmInputTree(wrapped);
    RunOptions options;
    options.max_steps = 10'000'000;
    auto compiled = Accepts(*p, input, options);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    EXPECT_EQ(*compiled, direct->accepted)
        << ::testing::PrintToString(bits);
  }
}

TEST(PspaceCompile, EqualCountAgreesWithDirectTm) {
  StringTm tm = EqualCountTm();
  auto p = CompileStringTmToTwR(tm);
  ASSERT_TRUE(p.ok()) << p.status();
  std::mt19937 rng(17);
  std::uniform_int_distribution<int> bit(0, 1);
  std::uniform_int_distribution<int> len(0, 5);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<int> bits(static_cast<std::size_t>(len(rng)));
    for (int& b : bits) b = bit(rng);
    std::vector<int> wrapped = Wrap(bits);
    auto direct = RunStringTm(tm, wrapped);
    ASSERT_TRUE(direct.ok());
    RunOptions options;
    options.max_steps = 10'000'000;
    auto compiled = Accepts(*p, StringTmInputTree(wrapped), options);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    EXPECT_EQ(*compiled, direct->accepted)
        << "trial " << trial << " " << ::testing::PrintToString(bits);
  }
}

TEST(PspaceCompile, StoreStaysPolynomial) {
  StringTm tm = PalindromeTm();
  auto p = CompileStringTmToTwR(tm);
  ASSERT_TRUE(p.ok());
  std::vector<int> wrapped = Wrap({1, 0, 0, 1});
  Interpreter interp(*p, RunOptions{10'000'000, 64, false, 0});
  auto r = interp.Run(StringTmInputTree(wrapped));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->accepted);
  // Next has n-1 pairs, each T<s> partitions n cells, Head/P 1 each:
  // total tuples stay O(n).
  EXPECT_LE(r->stats.max_store_tuples, 3 * wrapped.size() + 4);
}

}  // namespace
}  // namespace treewalk
