// End-to-end scenarios crossing module boundaries: XML in, XPath +
// tree-walking programs + caterpillars over one document; the evaluator
// stack (interpreter / configuration graph / protocol) agreeing on one
// language; text-format programs driving XML documents.

#include <gtest/gtest.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/automata/text_format.h"
#include "src/caterpillar/caterpillar.h"
#include "src/hyperset/hyperset.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/protocol/protocol.h"
#include "src/simulation/config_graph.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"
#include "src/xpath/xpath.h"

namespace treewalk {
namespace {

constexpr char kCatalog[] = R"(<catalog version="2">
  <bundle currency="1">
    <item currency="1" price="10"/>
    <item currency="1" price="20"/>
  </bundle>
  <bundle currency="3">
    <item currency="3" price="5"/>
  </bundle>
  <archive>
    <bundle currency="2">
      <item currency="2" price="7"/>
      <item currency="2" price="9"/>
    </bundle>
  </archive>
</catalog>)";

TEST(Integration, XmlThroughFourQueryEngines) {
  auto doc = ParseXml(kCatalog);
  ASSERT_TRUE(doc.ok()) << doc.status();

  // 1. XPath: bundles anywhere.
  auto xpath = ParseXPath("//bundle");
  ASSERT_TRUE(xpath.ok());
  auto via_xpath = EvalXPath(*doc, *xpath, doc->root());
  ASSERT_TRUE(via_xpath.ok());
  EXPECT_EQ(via_xpath->size(), 3u);

  // 2. The same query through the FO(exists*) compilation.
  auto formula = CompileXPathToFo(*xpath);
  ASSERT_TRUE(formula.ok());
  auto via_fo = SelectNodes(*doc, *formula, doc->root());
  ASSERT_TRUE(via_fo.ok());
  EXPECT_EQ(*via_fo, *via_xpath);

  // 3. A caterpillar finds bundle nodes too (as an acceptance query).
  auto cat = ParseCaterpillar("(down | right)* bundle");
  ASSERT_TRUE(cat.ok());
  auto via_cat = CaterpillarSelect(*doc, *cat, doc->root());
  ASSERT_TRUE(via_cat.ok());
  EXPECT_EQ(*via_cat, *via_xpath);

  // 4. A tree-walking program checks the integrity constraint the
  // bundles satisfy here: per-bundle currency uniformity (Example 3.2
  // shape with label "bundle" is not the library program, so check the
  // root-version constraint instead).
  auto version = AllLabelValuesEqualRootProgram("catalog", "version");
  ASSERT_TRUE(version.ok());
  auto ok = Accepts(*version, *doc);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(*ok);  // only the root carries label "catalog"
}

TEST(Integration, EvaluatorStackAgreesOnSplitStrings) {
  // One language (set equality around '#'), four evaluation paths:
  // direct interpreter, configuration graph, the Lemma 4.5 protocol,
  // and the text-format round trip of the program.
  constexpr DataValue kHash = -1;
  auto program = SetEqualityProgram(kHash);
  ASSERT_TRUE(program.ok());
  auto round = ParseProgramText(ProgramToText(*program));
  ASSERT_TRUE(round.ok()) << round.status();

  std::mt19937 rng(77);
  std::uniform_int_distribution<DataValue> value(5, 7);
  std::uniform_int_distribution<int> len(0, 4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<DataValue> f(static_cast<std::size_t>(len(rng)));
    std::vector<DataValue> g(static_cast<std::size_t>(len(rng)));
    for (auto& v : f) v = value(rng);
    for (auto& v : g) v = value(rng);
    Tree t = StringTree(SplitString(f, g, kHash));

    auto direct = Accepts(*program, t);
    auto graph = EvaluateViaConfigGraph(*program, t);
    auto protocol = RunSplitProtocol(*program, f, g, kHash);
    auto reparsed = Accepts(*round, t);
    ASSERT_TRUE(direct.ok() && graph.ok() && protocol.ok() && reparsed.ok());
    EXPECT_EQ(*direct, graph->accepted) << trial;
    EXPECT_EQ(*direct, protocol->accepted) << trial;
    EXPECT_EQ(*direct, *reparsed) << trial;
  }
}

TEST(Integration, XmlRoundTripPreservesProgramVerdicts) {
  auto doc = ParseXml(kCatalog);
  ASSERT_TRUE(doc.ok());
  auto xml = WriteXml(*doc);
  ASSERT_TRUE(xml.ok());
  auto doc2 = ParseXml(*xml);
  ASSERT_TRUE(doc2.ok());

  auto example32 = Example32Program("currency");
  ASSERT_TRUE(example32.ok());
  // The catalog has no "delta" labels, so the check passes vacuously on
  // both; relabel through a term round trip to get deltas.
  auto a = Accepts(*example32, *doc);
  auto b = Accepts(*example32, *doc2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  auto has_archive = HasLabelProgram("archive");
  ASSERT_TRUE(has_archive.ok());
  auto c = Accepts(*has_archive, *doc2);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(*c);
}

TEST(Integration, FoSentenceMatchesProgramOnHypersetStrings) {
  // Lemma 4.2's FO sentence, the set-equality program, and the decoder
  // all agree on L^1-format strings.
  constexpr DataValue kHash = -1;
  auto sentence = ParseFormula(L1Sentence(kHash));
  ASSERT_TRUE(sentence.ok());
  auto program = SetEqualityProgram(kHash);
  ASSERT_TRUE(program.ok());

  std::vector<Hyperset> all = EnumerateHypersets(1, {5, 6});
  for (const Hyperset& x : all) {
    for (const Hyperset& y : all) {
      std::vector<DataValue> fx = EncodeHyperset(x);
      std::vector<DataValue> fy = EncodeHyperset(y);
      std::vector<DataValue> s = SplitString(fx, fy, kHash);
      Tree t = StringTree(s);
      auto fo = EvalTreeSentence(t, *sentence);
      auto walk = Accepts(*program, t);
      ASSERT_TRUE(fo.ok() && walk.ok());
      // The program compares flat sets; on well-formed level-1 encodings
      // that coincides with L^1 membership (both halves carry the
      // marker 1, so the flat sets match iff the hypersets do).
      EXPECT_EQ(*fo, InLm(1, s, kHash));
      EXPECT_EQ(*walk, *fo) << x.ToString() << " # " << y.ToString();
    }
  }
}

}  // namespace
}  // namespace treewalk
