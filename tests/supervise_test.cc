// Kill-loop supervision harness (docs/SERVER.md, "Supervision"): the
// crash-only acceptance gate.  A real `twq serve` daemon runs under
// tools/twq_supervise.sh in a child process while a fleet of resilient
// QueryClients (src/client) drives live load, and this test SIGKILLs
// the daemon at random points, 25+ times, asserting after every cycle:
//
//   - the supervisor restarts the daemon and a kReady probe comes back
//     ok within a bounded window;
//   - the resilient fleet sees ZERO wrong answers — a restart may cost
//     retries, never a flipped verdict;
//   - error bursts are bounded: each worker's consecutive-failure
//     streak stays small because retries ride through the restart;
//   - the server's books stay coherent under live load
//     (admitted >= ok + error + drained, slack bounded by the
//     admission gate), and reconcile *exactly* once the fleet stops.
//
// A final SIGTERM to the supervisor must forward to the daemon, drain
// it (exit 75), and exit 75 itself.  Runs under TSan via the
// `threaded` label; fork/exec keeps the sanitizer runtimes out of the
// supervised processes themselves.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "tests/serve_test_util.h"

namespace treewalk {
namespace {

using serve_test::kAcceptAllProgram;
using serve_test::kScanProgram;

constexpr int kKillCycles = 25;
constexpr int kFleet = 4;

std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dull;
}

/// Binds an ephemeral port, reads it back, releases it.  The usual
/// pick-a-free-port race is acceptable here: the daemon rebinds it
/// within milliseconds and nothing else in the test suite listens.
int PickFreePort() {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  int port = getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr),
                         &len) == 0
                 ? ntohs(addr.sin_port)
                 : -1;
  close(fd);
  return port;
}

struct FleetTally {
  std::atomic<std::int64_t> accepted{0};
  std::atomic<std::int64_t> rejected{0};
  std::atomic<std::int64_t> wrong_answers{0};
  std::atomic<std::int64_t> failures{0};
  std::atomic<std::int64_t> max_failure_burst{0};
};

/// One resilient worker: alternates an accept-all query (oracle:
/// ACCEPT) with a needle scan (oracle: REJECT) until stopped, riding
/// restarts on the client's retry/backoff loop.
void FleetWorker(int port, int seed, const std::atomic<bool>& stop,
                 FleetTally& tally) {
  ClientOptions options;
  options.endpoint.port = port;
  options.retry.max_attempts = 12;
  options.retry.initial_backoff_ms = 5;
  options.retry.max_backoff_ms = 100;
  options.connect_timeout_ms = 300;
  options.io_timeout_ms = 2000;
  options.backoff_seed = 0xf1ee7ULL * static_cast<std::uint64_t>(seed + 1);
  QueryClient client(std::move(options));
  std::uint64_t rng = 0x12345ULL * static_cast<std::uint64_t>(seed + 7);
  std::int64_t burst = 0;
  while (!stop.load(std::memory_order_acquire)) {
    const bool scan = (NextRand(rng) % 3) == 0;
    QueryOutcome outcome =
        client.Query("small.term", scan ? kScanProgram : kAcceptAllProgram);
    if (outcome.status.ok()) {
      burst = 0;
      if (outcome.result.accepted == scan) {
        // accept-all must accept, the needle scan must reject — a
        // flipped verdict across a crash/restart is the one thing this
        // harness exists to catch.
        tally.wrong_answers.fetch_add(1, std::memory_order_relaxed);
      } else if (outcome.result.accepted) {
        tally.accepted.fetch_add(1, std::memory_order_relaxed);
      } else {
        tally.rejected.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      tally.failures.fetch_add(1, std::memory_order_relaxed);
      ++burst;
      std::int64_t prev = tally.max_failure_burst.load();
      while (burst > prev &&
             !tally.max_failure_burst.compare_exchange_weak(prev, burst)) {
      }
      // Do not spin hot while the daemon is down mid-restart.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

class SuperviseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/twq_supervise_test_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    work_ = tmpl;
    ASSERT_EQ(mkdir((work_ + "/corpus").c_str(), 0755), 0);
    std::ofstream tree(work_ + "/corpus/small.term");
    tree << "a[x=1](b(c, d), e[x=2])";
    ASSERT_TRUE(tree.good());
    tree.close();
    pidfile_ = work_ + "/daemon.pid";
    log_ = work_ + "/incarnations.log";
  }

  void TearDown() override {
    if (supervisor_pid_ > 0) {
      kill(supervisor_pid_, SIGKILL);
      waitpid(supervisor_pid_, nullptr, 0);
    }
    pid_t daemon = ReadPidfile();
    if (daemon > 0) kill(daemon, SIGKILL);
    std::string cmd = "rm -rf '" + work_ + "'";
    ASSERT_EQ(system(cmd.c_str()), 0);
  }

  pid_t ReadPidfile() {
    std::ifstream in(pidfile_);
    long pid = 0;
    if (!(in >> pid)) return -1;
    return static_cast<pid_t>(pid);
  }

  /// fork/exec the shell supervisor around `twq serve` on `port`.
  void StartSupervisor(int port) {
    const std::string supervise =
        std::string(TREEWALK_SOURCE_DIR) + "/tools/twq_supervise.sh";
    const std::string port_str = std::to_string(port);
    const std::string corpus = work_ + "/corpus";
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: silence the daemon, point the supervisor's knobs at the
      // workspace, exec the script.  _exit on failure — no gtest here.
      std::string pidfile_env = "TWQ_SUPERVISE_PIDFILE=" + pidfile_;
      std::string log_env = "TWQ_SUPERVISE_LOG=" + log_;
      std::string backoff_env = "TWQ_SUPERVISE_BACKOFF_MS=20";
      char* envp[] = {pidfile_env.data(), log_env.data(), backoff_env.data(),
                      nullptr};
      char* argv[] = {const_cast<char*>("/bin/sh"),
                      const_cast<char*>(supervise.c_str()),
                      const_cast<char*>(TREEWALK_TWQ_PATH),
                      const_cast<char*>("serve"),
                      const_cast<char*>(corpus.c_str()),
                      const_cast<char*>("--port"),
                      const_cast<char*>(port_str.c_str()),
                      const_cast<char*>("--workers"),
                      const_cast<char*>("2"),
                      const_cast<char*>("--drain-ms"),
                      const_cast<char*>("2000"),
                      const_cast<char*>("--quiet"),
                      nullptr};
      int devnull = open("/dev/null", O_WRONLY);
      if (devnull >= 0) {
        dup2(devnull, STDOUT_FILENO);
        dup2(devnull, STDERR_FILENO);
      }
      execve("/bin/sh", argv, envp);
      _exit(127);
    }
    supervisor_pid_ = pid;
  }

  /// Polls a fresh ready probe until the daemon answers ok.  Fresh
  /// client each attempt: the previous incarnation's connection died
  /// with it.
  bool AwaitReady(int port, std::chrono::milliseconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      ClientOptions options;
      options.endpoint.port = port;
      options.connect_timeout_ms = 200;
      options.io_timeout_ms = 500;
      QueryClient probe(std::move(options));
      Result<bool> ready = probe.Ready();
      if (ready.ok() && *ready) return true;
      if (supervisor_pid_ > 0 &&
          waitpid(supervisor_pid_, nullptr, WNOHANG) != 0) {
        supervisor_pid_ = -1;  // supervisor itself died — unrecoverable
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  std::string work_;
  std::string pidfile_;
  std::string log_;
  pid_t supervisor_pid_ = -1;
};

TEST_F(SuperviseTest, KillLoopRestartsCleanlyWithZeroWrongAnswers) {
  const int port = PickFreePort();
  ASSERT_GT(port, 0);
  StartSupervisor(port);
  ASSERT_TRUE(AwaitReady(port, std::chrono::seconds(20)))
      << "daemon never became ready under the supervisor";

  std::atomic<bool> stop{false};
  FleetTally tally;
  std::vector<std::thread> fleet;
  fleet.reserve(kFleet);
  for (int i = 0; i < kFleet; ++i) {
    fleet.emplace_back(FleetWorker, port, i, std::cref(stop),
                       std::ref(tally));
  }

  std::uint64_t rng = 0xdeadULL;
  int restarts_observed = 0;
  for (int cycle = 0; cycle < kKillCycles; ++cycle) {
    // Let the fleet run a random slice so the SIGKILL lands at varied
    // points: mid-query, mid-write, mid-accept, idle.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(10 + NextRand(rng) % 120));
    pid_t daemon = ReadPidfile();
    ASSERT_GT(daemon, 0) << "no pidfile before kill #" << cycle;
    ASSERT_EQ(kill(daemon, SIGKILL), 0) << "kill #" << cycle;
    ASSERT_TRUE(AwaitReady(port, std::chrono::seconds(30)))
        << "daemon not ready again after SIGKILL #" << cycle;
    ++restarts_observed;

    // Books under live load: never over-accounted, in-flight slack
    // bounded by the admission gate (exact reconciliation happens
    // after the fleet stops — a live snapshot legitimately has
    // admitted-but-unanswered requests).
    ClientOptions stats_options;
    stats_options.endpoint.port = port;
    stats_options.connect_timeout_ms = 500;
    QueryClient stats_client(std::move(stats_options));
    Result<StatsMap> stats = stats_client.Stats();
    if (stats.ok()) {
      const std::int64_t admitted = stats->Value("server.admitted");
      const std::int64_t accounted = stats->Value("server.served_ok") +
                                     stats->Value("server.served_error") +
                                     stats->Value("server.drained");
      EXPECT_LE(accounted, admitted) << "over-accounted after cycle " << cycle;
      EXPECT_LE(admitted - accounted, 64 + 64)
          << "in-flight slack beyond the admission gate after cycle "
          << cycle;
    }
  }
  EXPECT_EQ(restarts_observed, kKillCycles);

  // Quiesce the fleet, then the books must reconcile exactly on the
  // final incarnation.
  stop.store(true, std::memory_order_release);
  for (std::thread& t : fleet) t.join();
  {
    ClientOptions stats_options;
    stats_options.endpoint.port = port;
    QueryClient stats_client(std::move(stats_options));
    Result<StatsMap> stats = stats_client.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->Value("server.admitted"),
              stats->Value("server.served_ok") +
                  stats->Value("server.served_error") +
                  stats->Value("server.drained"));
  }

  // The gates the harness exists for.
  EXPECT_EQ(tally.wrong_answers.load(), 0);
  EXPECT_GT(tally.accepted.load(), 0);
  EXPECT_GT(tally.rejected.load(), 0);
  // Bounded unavailability: a worker's worst consecutive-failure burst
  // stays far below what an unsupervised crash would cost.  Each
  // Query() already rides up to 12 attempts; 50 outcome-level failures
  // in a row would mean multi-second blackouts the supervisor is
  // supposed to prevent.
  EXPECT_LE(tally.max_failure_burst.load(), 50)
      << "unbounded error burst (failures=" << tally.failures.load() << ")";

  // Deliberate stop: SIGTERM forwards, the daemon drains (75), the
  // supervisor exits 75.
  ASSERT_EQ(kill(supervisor_pid_, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(supervisor_pid_, &status, 0), supervisor_pid_);
  supervisor_pid_ = -1;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 75);

  // The incarnation log agrees: kKillCycles SIGKILL exits (137), one
  // drained exit 75.
  std::ifstream log(log_);
  int kills = 0, drains = 0, lines = 0;
  std::string line;
  while (std::getline(log, line)) {
    ++lines;
    if (line.find("exit 137") != std::string::npos) ++kills;
    if (line.find("exit 75") != std::string::npos) ++drains;
  }
  EXPECT_EQ(kills, kKillCycles);
  EXPECT_EQ(drains, 1);
  EXPECT_EQ(lines, kKillCycles + 1);
}

}  // namespace
}  // namespace treewalk
