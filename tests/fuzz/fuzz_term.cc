// libFuzzer harness for the term-syntax tree reader (term_io.h).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/tree/term_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  auto parsed = treewalk::ParseTerm(source);
  (void)parsed;
  return 0;
}
