// libFuzzer harness for the XML subset reader (xml_io.h).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/tree/xml_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  auto parsed = treewalk::ParseXml(source);
  (void)parsed;
  return 0;
}
