// libFuzzer harness for the .twp program text reader (text_format.h);
// covers the line tokenizer, the rule grammar, and — through guards and
// selectors — the formula parser and program validation in Build().

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/automata/text_format.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  auto parsed = treewalk::ParseProgramText(source);
  (void)parsed;
  return 0;
}
