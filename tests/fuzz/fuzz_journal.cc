// libFuzzer harness for the write-ahead journal reader (journal.h) and
// the batch-record resume planner stacked on it (batch_journal.h): an
// arbitrary byte image must parse to an intact prefix or a clean error,
// never crash, and whatever parses must round-trip through the resume
// planner without violating its invariants.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/common/journal.h"
#include "src/engine/batch_journal.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view image(reinterpret_cast<const char*>(data), size);
  auto parsed = treewalk::ParseJournal(image);
  if (parsed.ok()) {
    // valid_bytes never exceeds the image and bounds the intact prefix.
    if (parsed->valid_bytes > size) __builtin_trap();
    auto plan = treewalk::BuildResumePlan(*parsed);
    if (plan.ok()) {
      // completed and in_flight partition the journaled ids.
      for (std::uint64_t id : plan->completed) {
        if (plan->in_flight.count(id) != 0) __builtin_trap();
      }
    }
  }
  // Each record payload is also an independent decoder input.
  auto record = treewalk::DecodeBatchRecord(image);
  (void)record;
  return 0;
}
