// libFuzzer harness for the interval-encoded axis layer: any byte
// string decodes to a valid tree (TreeFromBytes), and on every tree the
// interval axes must densify to their NodeMatrix oracles, the pre/post-
// order numbering must characterize ancestry, and a compiled selector
// must agree across representations.  A disagreement is a bug, so trap.

#include <cstddef>
#include <cstdint>

#include "tests/fuzz/axis_interval_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (!treewalk::AxisIntervalAgrees(data, size, 512)) __builtin_trap();
  return 0;
}
