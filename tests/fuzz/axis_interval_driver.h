#ifndef TREEWALK_TESTS_FUZZ_AXIS_INTERVAL_DRIVER_H_
#define TREEWALK_TESTS_FUZZ_AXIS_INTERVAL_DRIVER_H_

// Shared body of the axis-interval differential fuzzer: decode any byte
// string into a valid tree (TreeFromBytes), build the axis index, and
// cross-check every interval-encoded axis against its dense oracle plus
// the pre/post-order numbering invariant and one compiled selector in
// both representations.  Driven by fuzz_axis_interval.cc under
// libFuzzer and replayed over the seed corpus by fuzz_corpus_test.cc in
// tier-1 builds.  Returns true iff every cross-check agrees; the tree
// decode itself can never fail, so any false is a found bug.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/interval_matrix.h"
#include "src/tree/tree.h"

namespace treewalk {

inline bool AxisIntervalAgrees(const std::uint8_t* data, std::size_t size,
                               int max_nodes = 512) {
  const Tree t = TreeFromBytes(data, size, max_nodes);
  const NodeId n = static_cast<NodeId>(t.size());
  AxisIndex index(t);

  // Every interval axis must densify to exactly its NodeMatrix oracle.
  const auto agrees = [](Result<const IntervalMatrix*> intervals,
                         const NodeMatrix& dense) {
    return intervals.ok() && (*intervals.value()).ToDense() == dense;
  };
  if (!agrees(index.TryEdgeIntervals(), index.EdgeMatrix())) return false;
  if (!agrees(index.TryDescendantIntervals(), index.DescendantMatrix())) {
    return false;
  }
  if (!agrees(index.TrySiblingIntervals(), index.SiblingMatrix())) {
    return false;
  }
  if (!agrees(index.TrySuccIntervals(), index.SuccMatrix())) return false;
  if (!agrees(index.TryIdentityIntervals(), index.IdentityMatrix())) {
    return false;
  }

  // Pre/post-order numbering: desc(u, v) <=> u < v and rank[v] < rank[u].
  const std::vector<NodeId>& rank = index.PostorderRanks();
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if ((u < v && rank[v] < rank[u]) != t.IsStrictAncestor(u, v)) {
        return false;
      }
    }
  }

  // One compiled selector through the guarded join, both
  // representations, against direct navigation.
  Result<Formula> phi = ParseFormula("exists z (E(x, z) & E(z, y))");
  if (!phi.ok()) return false;
  Result<CompiledSelector> interval =
      CompileSelector(index, *phi, "x", "y", AxisRepr::kInterval);
  Result<CompiledSelector> dense =
      CompileSelector(index, *phi, "x", "y", AxisRepr::kDense);
  if (!interval.ok() || !dense.ok()) return false;
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> grandchildren;
    for (NodeId c = t.FirstChild(u); c != kNoNode; c = t.NextSibling(c)) {
      for (NodeId g = t.FirstChild(c); g != kNoNode; g = t.NextSibling(g)) {
        grandchildren.push_back(g);
      }
    }
    std::sort(grandchildren.begin(), grandchildren.end());
    if (interval.value().SelectFrom(u) != grandchildren) return false;
    if (dense.value().SelectFrom(u) != grandchildren) return false;
  }
  return true;
}

}  // namespace treewalk

#endif  // TREEWALK_TESTS_FUZZ_AXIS_INTERVAL_DRIVER_H_
