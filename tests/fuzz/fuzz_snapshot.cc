// libFuzzer harness for the tree-snapshot reader (src/tree/snapshot.h)
// and the selector-cache entry decoder (src/logic/selector_cache.h):
// an arbitrary byte image must decode to a valid tree / selector or a
// clean Status — never a crash, never an out-of-bounds read, never a
// tree whose navigation can walk outside [0, n) or fail to terminate.
//
// The decoded-tree walk below exercises exactly the O(1) accessors plus
// Depth() (the parent-chain loop whose termination the validator's
// parent < u invariant guarantees); anything heavier belongs in the
// deterministic tests, not the fuzz loop.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/logic/selector_cache.h"
#include "src/tree/snapshot.h"
#include "src/tree/tree.h"

namespace {

void CheckNode(const treewalk::Tree& t, treewalk::NodeId u) {
  const auto n = static_cast<treewalk::NodeId>(t.size());
  auto in_range = [n](treewalk::NodeId v) {
    return v == treewalk::kNoNode || (v >= 0 && v < n);
  };
  if (!in_range(t.Parent(u)) || !in_range(t.FirstChild(u)) ||
      !in_range(t.LastChild(u)) || !in_range(t.NextSibling(u)) ||
      !in_range(t.PrevSibling(u))) {
    __builtin_trap();
  }
  if (t.SubtreeEnd(u) < u + 1 || t.SubtreeEnd(u) > n) __builtin_trap();
  if (t.Depth(u) > static_cast<int>(t.size())) __builtin_trap();
  (void)t.LabelName(t.label(u));
  for (treewalk::AttrId a = 0;
       a < static_cast<treewalk::AttrId>(t.num_attributes()); ++a) {
    (void)t.attr(a, u);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  auto image = std::make_shared<const std::string>(
      reinterpret_cast<const char*>(data), size);

  treewalk::SnapshotInfo info;
  auto tree = treewalk::TreeFromSnapshotImage(image, &info);
  if (tree.ok()) {
    if (tree->size() != info.nodes) __builtin_trap();
    for (treewalk::NodeId u = 0;
         u < static_cast<treewalk::NodeId>(tree->size()); ++u) {
      CheckNode(*tree, u);
    }
    if (!tree->empty() && tree->snapshot_postorder() == nullptr) {
      __builtin_trap();
    }
  }

  // The same bytes double as a selector-cache entry input.
  auto selector = treewalk::DecodeSelectorCacheEntry(*image, nullptr);
  if (selector.ok() && selector->tree_size() > 0) {
    (void)selector->SelectFrom(0);
    (void)selector->RetainedBytes();
  }
  return 0;
}
