// libFuzzer harness for the `twq serve` wire protocol
// (src/server/frame.h): every decoder is total — an arbitrary byte
// string produces a value or a typed error, never a crash, an
// overflow, or an allocation sized by attacker-controlled bytes.  The
// first byte of the input selects the decoder so one corpus covers the
// whole surface; whatever decodes must re-encode to bytes that decode
// to the same value (a full round-trip law, not just no-crash).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/server/frame.h"

namespace {

template <typename Msg, typename Decode, typename Encode>
void RoundTrip(std::string_view body, Decode decode, Encode encode) {
  auto first = decode(body);
  if (!first.ok()) return;
  std::string wire = encode(*first);
  auto second = decode(wire);
  if (!second.ok()) __builtin_trap();  // encoder emitted an undecodable body
  if (encode(*second) != wire) __builtin_trap();  // not a fixpoint
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  std::string_view body(reinterpret_cast<const char*>(data + 1), size - 1);

  switch (selector % 7) {
    case 0: {
      if (body.size() >= 4) {
        auto len = treewalk::DecodeFrameLength(
            reinterpret_cast<const unsigned char*>(body.data()));
        // The cap is the whole point: a huge prefix may never validate.
        if (len.ok() && (*len == 0 || *len > treewalk::kMaxFrameBytes)) {
          __builtin_trap();
        }
      }
      auto frame = treewalk::DecodeFramePayload(body);
      if (frame.ok() && frame->body.size() + 1 != body.size()) {
        __builtin_trap();
      }
      break;
    }
    case 1:
      RoundTrip<treewalk::QueryRequest>(body, treewalk::DecodeQueryRequest,
                                        treewalk::EncodeQueryRequest);
      break;
    case 2:
      RoundTrip<treewalk::QueryResultMsg>(body, treewalk::DecodeQueryResult,
                                          treewalk::EncodeQueryResult);
      break;
    case 3:
      RoundTrip<treewalk::ErrorMsg>(body, treewalk::DecodeError,
                                    treewalk::EncodeError);
      break;
    case 4:
      RoundTrip<treewalk::StatsMap>(body, treewalk::DecodeStats,
                                    treewalk::EncodeStats);
      break;
    case 5: {
      // Framing round trip: any body under the cap frames and reparses.
      if (body.size() < treewalk::kMaxFrameBytes) {
        std::string wire =
            treewalk::EncodeFrame(treewalk::MessageType::kMetricsResult, body);
        auto len = treewalk::DecodeFrameLength(
            reinterpret_cast<const unsigned char*>(wire.data()));
        if (!len.ok() || *len != wire.size() - 4) __builtin_trap();
        auto frame = treewalk::DecodeFramePayload(
            std::string_view(wire).substr(4));
        if (!frame.ok() || frame->body != body) __builtin_trap();
      }
      break;
    }
    case 6:
      RoundTrip<treewalk::ProbeResultMsg>(body, treewalk::DecodeProbeResult,
                                          treewalk::EncodeProbeResult);
      break;
  }
  return 0;
}
