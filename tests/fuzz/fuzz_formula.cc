// libFuzzer harness for the FO formula parser: any byte string must
// come back as a Result (parse tree or kInvalidArgument) — never a
// crash, hang, or stack overflow (the depth cap in parser.h is the
// interesting boundary here).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/logic/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view source(reinterpret_cast<const char*>(data), size);
  auto parsed = treewalk::ParseFormula(source);
  (void)parsed;
  return 0;
}
