#include <gtest/gtest.h>

#include <random>

#include "src/logic/atomic_types.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

const std::vector<DataValue> kDomain = {0, 1, 2};

TEST(AtomicTypeOf, EncodesValuesAndBoundaries) {
  std::vector<DataValue> s = {0, 1, 1};
  AtomicType t0 = AtomicTypeOf(s, kDomain, {0});
  AtomicType t2 = AtomicTypeOf(s, kDomain, {2});
  EXPECT_NE(t0, t2);
  // position 0: value 0, root, not leaf.
  EXPECT_EQ(t0, (AtomicType{0, 1, 0}));
  // position 2: value 1, not root, leaf.
  EXPECT_EQ(t2, (AtomicType{1, 0, 1}));
}

TEST(AtomicTypeOf, PairOrderCodes) {
  std::vector<DataValue> s = {0, 1, 2, 0};
  auto rel = [&](std::size_t a, std::size_t b) {
    AtomicType t = AtomicTypeOf(s, kDomain, {a, b});
    return t.back();
  };
  EXPECT_EQ(rel(0, 0), static_cast<std::int64_t>(OrderRel::kEqual));
  EXPECT_EQ(rel(0, 1), static_cast<std::int64_t>(OrderRel::kPredecessor));
  EXPECT_EQ(rel(1, 0), static_cast<std::int64_t>(OrderRel::kSuccessor));
  EXPECT_EQ(rel(0, 3), static_cast<std::int64_t>(OrderRel::kFarLess));
  EXPECT_EQ(rel(3, 0), static_cast<std::int64_t>(OrderRel::kFarGreater));
}

TEST(AtomicTypeOf, OutOfDomainValuesKeepEqualityPatternOnly) {
  // 100 and 200 are not in the domain; only their equality pattern counts.
  std::vector<DataValue> s1 = {100, 100, 200};
  std::vector<DataValue> s2 = {300, 300, 400};
  EXPECT_EQ(AtomicTypeOf(s1, kDomain, {0, 1, 2}),
            AtomicTypeOf(s2, kDomain, {0, 1, 2}));
  std::vector<DataValue> s3 = {300, 400, 400};
  EXPECT_NE(AtomicTypeOf(s1, kDomain, {0, 1, 2}),
            AtomicTypeOf(s3, kDomain, {0, 1, 2}));
}

TEST(AtomicTypeSet, CountsForTinyStrings) {
  std::vector<DataValue> s = {0, 1};
  TypeSet t1 = AtomicTypeSet(s, 1, kDomain);
  EXPECT_EQ(t1.size(), 2u);  // two distinguishable positions
  TypeSet t2 = AtomicTypeSet(s, 2, kDomain);
  EXPECT_EQ(t2.size(), 4u);  // (0,0) (0,1) (1,0) (1,1) all distinct
}

TEST(AtomicTypeSet, EmptyString) {
  EXPECT_TRUE(AtomicTypeSet({}, 2, kDomain).empty());
}

TEST(AtomicTypeSet, ZeroVariablesWithConstants) {
  std::vector<DataValue> s = {0, 1, 0};
  TypeSet t = AtomicTypeSet(s, 0, kDomain, {1});
  EXPECT_EQ(t.size(), 1u);
}

TEST(KEquivalent, HomogeneousStringsOfDifferentLongLengths) {
  // For k = 1, all-zero strings of length >= 3 are 1-equivalent (interior
  // positions exist in both) but a length-2 string is not (no interior).
  std::vector<DataValue> s3 = {0, 0, 0};
  std::vector<DataValue> s4 = {0, 0, 0, 0};
  std::vector<DataValue> s2 = {0, 0};
  EXPECT_TRUE(KEquivalent(s3, s4, 1, kDomain));
  EXPECT_FALSE(KEquivalent(s2, s3, 1, kDomain));
}

TEST(KEquivalent, DistinguishesValueMultisetsUpToK) {
  std::vector<DataValue> s1 = {0, 1, 0, 1};
  std::vector<DataValue> s2 = {0, 1, 1, 0};
  // k = 2 sees the adjacent (1,1) pair in s2 but not in s1.
  EXPECT_FALSE(KEquivalent(s1, s2, 2, kDomain));
}

TEST(KEquivalent, ReflexiveAndSymmetric) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<DataValue> dist(0, 2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<DataValue> s(8);
    for (auto& v : s) v = dist(rng);
    EXPECT_TRUE(KEquivalent(s, s, 2, kDomain));
  }
}

/// Cross-validation against the FO evaluator: if two strings have equal
/// atomic-2-type sets then they agree on every existential 2-variable
/// sentence we can throw at them (the invariant is exactly the
/// FO(exists*) theory, Lemma 4.3's underpinning).
TEST(KEquivalent, AgreesWithExistentialSentences) {
  const char* sentences[] = {
      "exists x exists y (E(x, y) & val(a, x) = val(a, y))",
      "exists x exists y (desc(x, y) & val(a, x) = 1)",
      "exists x (root(x) & val(a, x) = 0)",
      "exists x (leaf(x) & val(a, x) = 2)",
      "exists x exists y (E(x, y) & val(a, x) = 0 & val(a, y) = 0)",
      "exists x exists y (desc(x, y) & !(E(x, y)))",
  };
  std::mt19937 rng(17);
  std::uniform_int_distribution<DataValue> dist(0, 2);
  std::uniform_int_distribution<int> len(1, 6);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<DataValue> v1(static_cast<std::size_t>(len(rng)));
    std::vector<DataValue> v2(static_cast<std::size_t>(len(rng)));
    for (auto& v : v1) v = dist(rng);
    for (auto& v : v2) v = dist(rng);
    if (!KEquivalent(v1, v2, 2, kDomain)) continue;
    Tree t1 = StringTree(v1);
    Tree t2 = StringTree(v2);
    for (const char* src : sentences) {
      auto f = ParseFormula(src);
      ASSERT_TRUE(f.ok());
      auto r1 = EvalTreeSentence(t1, *f);
      auto r2 = EvalTreeSentence(t2, *f);
      ASSERT_TRUE(r1.ok() && r2.ok());
      EXPECT_EQ(*r1, *r2) << src;
    }
  }
}

TEST(AtomicTypeSet, ConstantsRefineTheType) {
  // tp(s; 0) and tp(s; 2) differ on s = 010 even though tp_1 alone cannot
  // name a position.
  std::vector<DataValue> s = {0, 1, 0};
  EXPECT_NE(AtomicTypeSet(s, 1, kDomain, {0}),
            AtomicTypeSet(s, 1, kDomain, {2}));
  EXPECT_EQ(AtomicTypeSet(s, 1, kDomain, {1}),
            AtomicTypeSet(s, 1, kDomain, {1}));
}

TEST(TypeSetFingerprint, DiscriminatesAndIsStable) {
  std::vector<DataValue> s1 = {0, 1, 0};
  std::vector<DataValue> s2 = {1, 0, 1};
  TypeSet t1 = AtomicTypeSet(s1, 2, kDomain);
  TypeSet t2 = AtomicTypeSet(s2, 2, kDomain);
  EXPECT_EQ(TypeSetFingerprint(t1), TypeSetFingerprint(t1));
  EXPECT_NE(TypeSetFingerprint(t1), TypeSetFingerprint(t2));
  EXPECT_NE(TypeSetFingerprint(TypeSet{}), TypeSetFingerprint(t1));
}

TEST(KEquivalent, Lemma43CompositionSmoke) {
  // Lemma 4.3(1) instance: if tp(f1) = tp(f2) and tp(g1) = tp(g2) then
  // tp(f1#g1) = tp(f2#g2).  '#' is encoded as the value 9.
  const std::vector<DataValue> domain = {0, 1, 9};
  // Random strings of length <= 6 are rarely 2-equivalent without being
  // identical, so build pairs from two known sources of 2-equivalence:
  // identity (f2 = f1) and homogeneous strings of different lengths >= 5
  // (g1, g2): length 5 is the first with a non-adjacent interior pair.
  std::mt19937 rng(23);
  std::uniform_int_distribution<DataValue> dist(0, 1);
  std::uniform_int_distribution<int> len(1, 5);
  auto splice = [](const std::vector<DataValue>& f,
                   const std::vector<DataValue>& g) {
    std::vector<DataValue> out = f;
    out.push_back(9);
    out.insert(out.end(), g.begin(), g.end());
    return out;
  };
  int checked = 0;
  for (int la = 5; la <= 7; ++la) {
    for (int lb = 5; lb <= 7; ++lb) {
      for (DataValue c : {0, 1}) {
        std::vector<DataValue> f1(static_cast<std::size_t>(len(rng)));
        for (auto& v : f1) v = dist(rng);
        std::vector<DataValue> f2 = f1;
        std::vector<DataValue> g1(static_cast<std::size_t>(la), c);
        std::vector<DataValue> g2(static_cast<std::size_t>(lb), c);
        ASSERT_TRUE(KEquivalent(g1, g2, 2, domain)) << la << " vs " << lb;
        EXPECT_TRUE(KEquivalent(splice(f1, g1), splice(f2, g2), 2, domain));
        // And with the equivalent pair on the left of '#'.
        EXPECT_TRUE(KEquivalent(splice(g1, f1), splice(g2, f2), 2, domain));
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 18);
}

}  // namespace
}  // namespace treewalk
