// Randomized round-trip properties for the textual formats: random ASTs
// print into parseable text whose re-print is a fixpoint, and random
// trees survive term serialization structurally intact.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/automata/builder.h"
#include "src/automata/text_format.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"
#include "src/xpath/xpath.h"

namespace treewalk {
namespace {

// --- Random formula generator. -----------------------------------------

class FormulaGen {
 public:
  explicit FormulaGen(unsigned seed) : rng_(seed) {}

  /// A random tree-vocabulary formula of the given depth with free
  /// variables drawn from vars_.
  Formula Gen(int depth) {
    std::uniform_int_distribution<int> pick(0, depth > 0 ? 7 : 1);
    switch (pick(rng_)) {
      case 0:
        return Atom();
      case 1:
        return Atom();
      case 2:
        return Formula::Not(Gen(depth - 1));
      case 3:
        return Formula::And(Gen(depth - 1), Gen(depth - 1));
      case 4:
        return Formula::Or(Gen(depth - 1), Gen(depth - 1));
      case 5:
        return Formula::Implies(Gen(depth - 1), Gen(depth - 1));
      case 6:
        return Formula::Exists(Var(), Gen(depth - 1));
      default:
        return Formula::Forall(Var(), Gen(depth - 1));
    }
  }

 private:
  std::string Var() {
    std::uniform_int_distribution<int> pick(0, 3);
    static const char* kVars[] = {"x", "y", "z", "w"};
    return kVars[pick(rng_)];
  }

  Formula Atom() {
    std::uniform_int_distribution<int> pick(0, 9);
    switch (pick(rng_)) {
      case 0:
        return Formula::Edge(Var(), Var());
      case 1:
        return Formula::Sibling(Var(), Var());
      case 2:
        return Formula::Descendant(Var(), Var());
      case 3:
        return Formula::Label(Var(), "sigma");
      case 4:
        return Formula::Root(Var());
      case 5:
        return Formula::Leaf(Var());
      case 6:
        return Formula::Succ(Var(), Var());
      case 7:
        return Formula::VarEq(Var(), Var());
      case 8:
        return Formula::Eq(Term::AttrOf("a", Var()), Term::Int(3));
      default:
        return Formula::Eq(Term::AttrOf("a", Var()),
                           Term::AttrOf("b", Var()));
    }
  }

  std::mt19937 rng_;
};

TEST(RoundTrip, RandomFormulasPrintParseStably) {
  for (unsigned seed = 0; seed < 60; ++seed) {
    FormulaGen gen(seed);
    Formula f = gen.Gen(4);
    std::string printed = f.ToString();
    auto parsed = ParseFormula(printed);
    ASSERT_TRUE(parsed.ok()) << printed << ": " << parsed.status();
    EXPECT_EQ(parsed->ToString(), printed) << "seed " << seed;
    // Tree-vocabulary validity survives the round trip.
    EXPECT_EQ(ValidateTreeFormula(f).ok(),
              ValidateTreeFormula(*parsed).ok());
  }
}

TEST(RoundTrip, RandomFormulasEvaluateIdentically) {
  std::mt19937 tree_rng(5);
  RandomTreeOptions options;
  options.num_nodes = 6;
  options.labels = {"sigma", "delta"};
  options.attributes = {"a", "b"};
  options.value_range = 3;
  for (unsigned seed = 0; seed < 25; ++seed) {
    FormulaGen gen(1000 + seed);
    Formula f = gen.Gen(3);
    auto parsed = ParseFormula(f.ToString());
    ASSERT_TRUE(parsed.ok());
    Tree t = RandomTree(tree_rng, options);
    NodeEnv env = {{"x", 0}, {"y", 1}, {"z", 2}, {"w", 3}};
    auto a = EvalTreeFormula(t, f, env);
    auto b = EvalTreeFormula(t, *parsed, env);
    ASSERT_TRUE(a.ok() && b.ok()) << f.ToString();
    EXPECT_EQ(*a, *b) << f.ToString();
  }
}

// --- Random XPath generator. ---------------------------------------------

class XPathGen {
 public:
  explicit XPathGen(unsigned seed) : rng_(seed) {}

  XPath Gen(int depth) {
    XPath out;
    std::uniform_int_distribution<int> branches(1, 2);
    int n = branches(rng_);
    for (int i = 0; i < n; ++i) out.paths.push_back(GenPath(depth));
    return out;
  }

 private:
  XPathPath GenPath(int depth) {
    XPathPath path;
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> steps(1, 3);
    path.absolute = coin(rng_) != 0;
    int n = steps(rng_);
    for (int i = 0; i < n; ++i) path.steps.push_back(GenStep(depth));
    // A relative path whose first step uses the descendant axis has no
    // concrete syntax (a leading '//' is absolute), so it cannot round
    // trip; the printable fragment forces kChild there.
    if (!path.absolute) path.steps.front().axis = XPathStep::Axis::kChild;
    return path;
  }

  XPathStep GenStep(int depth) {
    XPathStep step;
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<int> label(0, 2);
    static const char* kLabels[] = {"a", "b", "c"};
    step.axis = coin(rng_) != 0 ? XPathStep::Axis::kChild
                                : XPathStep::Axis::kDescendant;
    if (coin(rng_) != 0) step.label = kLabels[label(rng_)];
    if (depth > 0 && coin(rng_) != 0) {
      step.predicates.push_back(GenPredicate(depth - 1));
    }
    return step;
  }

  XPathPredicate GenPredicate(int depth) {
    XPathPredicate pred;
    std::uniform_int_distribution<int> pick(0, 2);
    switch (pick(rng_)) {
      case 0: {
        pred.kind = XPathPredicate::Kind::kPath;
        XPath nested = Gen(depth);
        for (XPathPath& p : nested.paths) {
          p.absolute = false;
          p.steps.front().axis = XPathStep::Axis::kChild;
        }
        pred.path = std::make_shared<const XPath>(std::move(nested));
        break;
      }
      case 1:
        pred.kind = XPathPredicate::Kind::kAttrEqAttr;
        pred.attr = "p";
        pred.other_attr = "q";
        break;
      default:
        pred.kind = XPathPredicate::Kind::kAttrEqConst;
        pred.attr = "p";
        pred.literal = Term::Int(1);
        break;
    }
    return pred;
  }

  std::mt19937 rng_;
};

TEST(RoundTrip, RandomXPathsPrintParseStably) {
  for (unsigned seed = 0; seed < 60; ++seed) {
    XPathGen gen(seed);
    XPath p = gen.Gen(2);
    std::string printed = XPathToString(p);
    auto parsed = ParseXPath(printed);
    ASSERT_TRUE(parsed.ok()) << printed << ": " << parsed.status();
    EXPECT_EQ(XPathToString(*parsed), printed) << "seed " << seed;
  }
}

TEST(RoundTrip, RandomXPathsEvaluateIdenticallyAfterRoundTrip) {
  std::mt19937 tree_rng(9);
  RandomTreeOptions options;
  options.num_nodes = 10;
  options.labels = {"a", "b", "c"};
  options.attributes = {"p", "q"};
  options.value_range = 2;
  for (unsigned seed = 0; seed < 20; ++seed) {
    XPathGen gen(500 + seed);
    XPath p = gen.Gen(1);
    auto parsed = ParseXPath(XPathToString(p));
    ASSERT_TRUE(parsed.ok());
    Tree t = RandomTree(tree_rng, options);
    auto a = EvalXPath(t, p, t.root());
    auto b = EvalXPath(t, *parsed, t.root());
    ASSERT_TRUE(a.ok() && b.ok()) << XPathToString(p);
    EXPECT_EQ(*a, *b) << XPathToString(p);
  }
}

// --- Random program generator (.twp round trips). ------------------------

/// Builds a random but always-valid program of a random device class.
/// Formulas are drawn from pools that respect the Build() validation
/// rules (class restrictions of Definition 5.1, update arities, selector
/// shape) and contain no string constants — the .twp line format cannot
/// nest double quotes.
Result<Program> RandomProgram(unsigned seed) {
  std::mt19937 rng(seed);
  static const ProgramClass kClasses[] = {
      ProgramClass::kTw, ProgramClass::kTwL, ProgramClass::kTwR,
      ProgramClass::kTwRL};
  ProgramClass cls = kClasses[rng() % 4];
  bool has_registers = cls != ProgramClass::kTw;
  bool has_lookahead =
      cls == ProgramClass::kTwL || cls == ProgramClass::kTwRL;
  bool binary_ok = cls == ProgramClass::kTwR || cls == ProgramClass::kTwRL;

  ProgramBuilder b(cls);
  b.SetStates("q0", "qf");
  int arity2 = 1;
  if (has_registers) {
    b.DeclareRegister("X1", 1);
    if (rng() % 2 == 0) b.InitRegister("X1", static_cast<DataValue>(rng() % 5));
    if (rng() % 2 == 0) {
      arity2 = binary_ok && rng() % 2 == 0 ? 2 : 1;
      b.DeclareRegister("X2", arity2);
    }
  }

  static const char* kStates[] = {"q0", "q1", "q2", "p"};
  static const char* kLabels[] = {"*", "sigma", "delta", "#top", "#leaf"};
  static const char* kGuards[] = {
      "true", "exists u X1(u)", "!(exists u X1(u))",
      "forall u forall v (X1(u) & X1(v) -> u = v)"};
  static const char* kUpdates[] = {"u = attr(a)", "X1(u)",
                                   "X1(u) | u = attr(a)"};
  static const char* kSelectors[] = {
      "desc(x, y)", "E(x, y)", "desc(x, y) & lab(y, #leaf)",
      "exists z (desc(x, y) & E(y, z))"};
  static const Move kMoves[] = {Move::kStay, Move::kLeft, Move::kRight,
                                Move::kUp, Move::kDown};

  auto state = [&] { return kStates[rng() % 4]; };
  auto guard = [&] {
    return has_registers ? kGuards[rng() % 4] : "true";
  };

  // Build() verifies determinism, so each (label, state) pair may carry
  // at most one rule with a given guard; giving every rule a distinct
  // pair sidesteps guard-overlap analysis entirely.
  std::vector<std::pair<const char*, const char*>> pairs;
  for (const char* l : kLabels) {
    for (const char* s : kStates) pairs.emplace_back(l, s);
  }
  std::shuffle(pairs.begin(), pairs.end(), rng);

  int num_rules = 4 + static_cast<int>(rng() % 5);
  for (int i = 0; i < num_rules; ++i) {
    const auto& [label, from] = pairs[static_cast<std::size_t>(i)];
    switch (rng() % 3) {
      case 0:
        b.OnMove(label, from, guard(), state(), kMoves[rng() % 5]);
        break;
      case 1:
        if (has_registers) {
          if (arity2 == 2 && rng() % 2 == 0) {
            b.OnUpdate(label, from, guard(), state(), "X2",
                       "X2(u, v) | (u = attr(a) & v = attr(b))", {"u", "v"});
          } else {
            b.OnUpdate(label, from, guard(), state(), "X1",
                       kUpdates[rng() % 3], {"u"});
          }
          break;
        }
        b.OnMove(label, from, guard(), state(), kMoves[rng() % 5]);
        break;
      default:
        if (has_lookahead) {
          // Target must share the first register's arity (it receives the
          // subcomputation's X1).
          b.OnLookAhead(label, from, guard(), state(), "X1",
                        kSelectors[rng() % 4], state());
          break;
        }
        b.OnMove(label, from, guard(), state(), kMoves[rng() % 5]);
        break;
    }
  }
  return b.Build();
}

TEST(RoundTrip, RandomProgramsPrintParseStably) {
  for (unsigned seed = 0; seed < 60; ++seed) {
    auto p = RandomProgram(seed);
    ASSERT_TRUE(p.ok()) << "seed " << seed << ": " << p.status();
    std::string printed = ProgramToText(*p);
    auto reparsed = ParseProgramText(printed);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status() << "\n" << printed;
    EXPECT_EQ(ProgramToText(*reparsed), printed) << "seed " << seed;
    EXPECT_EQ(reparsed->program_class(), p->program_class())
        << "seed " << seed;
    EXPECT_EQ(reparsed->rules().size(), p->rules().size()) << "seed " << seed;
    EXPECT_EQ(reparsed->initial_store().num_relations(),
              p->initial_store().num_relations())
        << "seed " << seed;
  }
}

// --- Tree term round trips. ----------------------------------------------

TEST(RoundTrip, RandomTreesSurviveTermSerialization) {
  std::mt19937 rng(13);
  RandomTreeOptions options;
  options.num_nodes = 25;
  options.labels = {"alpha", "beta", "g_1"};
  options.attributes = {"a", "count"};
  options.value_range = 100;
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng, options);
    std::string printed = PrintTerm(t, /*skip_zero_attrs=*/false);
    auto parsed = ParseTerm(printed);
    ASSERT_TRUE(parsed.ok()) << printed;
    ASSERT_EQ(parsed->size(), t.size());
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      EXPECT_EQ(parsed->LabelName(parsed->label(u)),
                t.LabelName(t.label(u)));
      EXPECT_EQ(parsed->Parent(u), t.Parent(u));
      for (AttrId a = 0; a < static_cast<AttrId>(t.num_attributes()); ++a) {
        AttrId pa = parsed->FindAttribute(t.attributes().NameOf(a));
        ASSERT_NE(pa, kNoAttr);
        EXPECT_EQ(parsed->attr(pa, u), t.attr(a, u));
      }
    }
  }
}

// --- Tree XML round trips. -----------------------------------------------

TEST(RoundTrip, RandomTreesSurviveXmlSerialization) {
  std::mt19937 rng(21);
  RandomTreeOptions options;
  options.num_nodes = 20;
  options.labels = {"a", "b", "item"};  // XML-name-safe labels only
  options.attributes = {"p", "q"};
  options.value_range = 50;
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng, options);
    auto xml = WriteXml(t);
    ASSERT_TRUE(xml.ok()) << "trial " << trial << ": " << xml.status();
    auto parsed = ParseXml(*xml);
    ASSERT_TRUE(parsed.ok())
        << "trial " << trial << ": " << parsed.status() << "\n" << *xml;
    ASSERT_EQ(parsed->size(), t.size()) << "trial " << trial;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      EXPECT_EQ(parsed->LabelName(parsed->label(u)), t.LabelName(t.label(u)))
          << "trial " << trial << " node " << u;
      EXPECT_EQ(parsed->Parent(u), t.Parent(u))
          << "trial " << trial << " node " << u;
      for (AttrId a = 0; a < static_cast<AttrId>(t.num_attributes()); ++a) {
        AttrId pa = parsed->FindAttribute(t.attributes().NameOf(a));
        ASSERT_NE(pa, kNoAttr) << "trial " << trial;
        EXPECT_EQ(parsed->attr(pa, u), t.attr(a, u))
            << "trial " << trial << " node " << u;
      }
    }
  }
}

/// String-valued attributes land in each tree's own ValueInterner, so
/// raw handles differ across a round trip; values must be compared
/// through Render().  Also exercises entity escaping in both directions.
TEST(RoundTrip, StringAttributesSurviveXmlSerialization) {
  TreeBuilder b;
  TreeBuilder::Ref root = b.AddRoot("doc");
  TreeBuilder::Ref first = b.AddChild(root, "item");
  b.SetAttrString(first, "name", "alpha");
  TreeBuilder::Ref second = b.AddChild(root, "item");
  b.SetAttrString(second, "name", "beta & <gamma> \"quoted\"");
  b.SetAttr(second, "n", 42);
  Tree t = b.Build();

  auto xml = WriteXml(t);
  ASSERT_TRUE(xml.ok()) << xml.status();
  auto parsed = ParseXml(*xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << *xml;
  ASSERT_EQ(parsed->size(), t.size());
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    for (AttrId a = 0; a < static_cast<AttrId>(t.num_attributes()); ++a) {
      AttrId pa = parsed->FindAttribute(t.attributes().NameOf(a));
      ASSERT_NE(pa, kNoAttr);
      EXPECT_EQ(parsed->values().Render(parsed->attr(pa, u)),
                t.values().Render(t.attr(a, u)))
          << "node " << u << " attr " << t.attributes().NameOf(a);
    }
  }
}

}  // namespace
}  // namespace treewalk
