#include <gtest/gtest.h>

#include "src/logic/parser.h"

namespace treewalk {
namespace {

Formula MustParse(const char* src) {
  auto r = ParseFormula(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return r.ok() ? *r : Formula();
}

TEST(ParseFormula, Constants) {
  EXPECT_EQ(MustParse("true").node().kind, FormulaKind::kTrue);
  EXPECT_EQ(MustParse("false").node().kind, FormulaKind::kFalse);
}

TEST(ParseFormula, PrecedenceAndBeforeOr) {
  Formula f = MustParse("root(x) | leaf(x) & first(x)");
  ASSERT_EQ(f.node().kind, FormulaKind::kOr);
  EXPECT_EQ(f.node().children[1].node().kind, FormulaKind::kAnd);
}

TEST(ParseFormula, ImpliesIsRightAssociative) {
  Formula f = MustParse("root(x) -> leaf(x) -> first(x)");
  ASSERT_EQ(f.node().kind, FormulaKind::kImplies);
  EXPECT_EQ(f.node().children[1].node().kind, FormulaKind::kImplies);
}

TEST(ParseFormula, IffBindsLoosest) {
  Formula f = MustParse("root(x) -> leaf(x) <-> first(x)");
  EXPECT_EQ(f.node().kind, FormulaKind::kIff);
}

TEST(ParseFormula, QuantifierChains) {
  Formula f = MustParse("exists y exists z (E(x, y) & E(y, z))");
  ASSERT_EQ(f.node().kind, FormulaKind::kExists);
  EXPECT_EQ(f.node().var, "y");
  EXPECT_EQ(f.node().children[0].node().kind, FormulaKind::kExists);
  EXPECT_TRUE(f.IsExistentialPrenex());
}

TEST(ParseFormula, QuantifierScopeIsOneUnary) {
  // 'exists y leaf(y) & root(x)': the quantifier grabs only leaf(y).
  Formula f = MustParse("exists y leaf(y) & root(x)");
  EXPECT_EQ(f.node().kind, FormulaKind::kAnd);
  EXPECT_EQ(f.node().children[0].node().kind, FormulaKind::kExists);
}

TEST(ParseFormula, TreeAtoms) {
  Formula f = MustParse("E(x, y)");
  EXPECT_EQ(f.node().atom, AtomKind::kEdge);
  EXPECT_EQ(MustParse("sib(x, y)").node().atom, AtomKind::kSibling);
  EXPECT_EQ(MustParse("desc(x, y)").node().atom, AtomKind::kDescendant);
  EXPECT_EQ(MustParse("succ(x, y)").node().atom, AtomKind::kSucc);
  EXPECT_EQ(MustParse("root(x)").node().atom, AtomKind::kRoot);
  EXPECT_EQ(MustParse("leaf(x)").node().atom, AtomKind::kLeaf);
  EXPECT_EQ(MustParse("first(x)").node().atom, AtomKind::kFirst);
  EXPECT_EQ(MustParse("last(x)").node().atom, AtomKind::kLast);
  Formula lab = MustParse("lab(x, sigma)");
  EXPECT_EQ(lab.node().atom, AtomKind::kLabel);
  EXPECT_EQ(lab.node().symbol, "sigma");
}

TEST(ParseFormula, EqualityVariants) {
  Formula node_eq = MustParse("x = y");
  EXPECT_EQ(node_eq.node().atom, AtomKind::kEq);
  EXPECT_EQ(node_eq.node().terms[0].kind, Term::Kind::kVar);

  Formula val_eq = MustParse("val(a, x) = val(b, y)");
  EXPECT_EQ(val_eq.node().terms[0].kind, Term::Kind::kAttrOfVar);
  EXPECT_EQ(val_eq.node().terms[0].attr, "a");
  EXPECT_EQ(val_eq.node().terms[1].var, "y");

  Formula val_const = MustParse("val(a, x) = -12");
  EXPECT_EQ(val_const.node().terms[1].kind, Term::Kind::kIntConst);
  EXPECT_EQ(val_const.node().terms[1].value, -12);

  Formula val_str = MustParse("val(a, x) = \"hello\"");
  EXPECT_EQ(val_str.node().terms[1].kind, Term::Kind::kStrConst);
  EXPECT_EQ(val_str.node().terms[1].text, "hello");
}

TEST(ParseFormula, NotEqualDesugars) {
  Formula f = MustParse("x != y");
  ASSERT_EQ(f.node().kind, FormulaKind::kNot);
  EXPECT_EQ(f.node().children[0].node().atom, AtomKind::kEq);
}

TEST(ParseFormula, StoreAtoms) {
  Formula f = MustParse("X1(u, v)");
  EXPECT_EQ(f.node().atom, AtomKind::kRelation);
  EXPECT_EQ(f.node().symbol, "X1");
  ASSERT_EQ(f.node().terms.size(), 2u);

  Formula nullary = MustParse("Flag()");
  EXPECT_EQ(nullary.node().terms.size(), 0u);

  Formula with_const = MustParse("X(3, \"s\", attr(a), u)");
  ASSERT_EQ(with_const.node().terms.size(), 4u);
  EXPECT_EQ(with_const.node().terms[0].kind, Term::Kind::kIntConst);
  EXPECT_EQ(with_const.node().terms[1].kind, Term::Kind::kStrConst);
  EXPECT_EQ(with_const.node().terms[2].kind, Term::Kind::kCurrentAttr);
  EXPECT_EQ(with_const.node().terms[3].kind, Term::Kind::kVar);
}

TEST(ParseFormula, CurrentAttrEquality) {
  Formula f = MustParse("u = attr(a)");
  EXPECT_EQ(f.node().terms[1].kind, Term::Kind::kCurrentAttr);
  EXPECT_EQ(f.node().terms[1].attr, "a");
}

TEST(ParseFormula, NotBindsTighterThanAnd) {
  Formula f = MustParse("!root(x) & leaf(x)");
  EXPECT_EQ(f.node().kind, FormulaKind::kAnd);
  EXPECT_EQ(f.node().children[0].node().kind, FormulaKind::kNot);
}

TEST(ParseFormula, PrimedVariables) {
  Formula f = MustParse("x' = y''");
  EXPECT_EQ(f.node().terms[0].var, "x'");
  EXPECT_EQ(f.node().terms[1].var, "y''");
}

TEST(ParseFormula, Errors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("E(x)").ok());
  EXPECT_FALSE(ParseFormula("E(x, y) &").ok());
  EXPECT_FALSE(ParseFormula("exists leaf(x)").ok());   // reserved var
  EXPECT_FALSE(ParseFormula("exists 3 leaf(x)").ok());
  EXPECT_FALSE(ParseFormula("(root(x)").ok());
  EXPECT_FALSE(ParseFormula("root(x) leaf(x)").ok());
  EXPECT_FALSE(ParseFormula("val(a x) = 1").ok());
  EXPECT_FALSE(ParseFormula("x =").ok());
  EXPECT_FALSE(ParseFormula("= x").ok());
  EXPECT_FALSE(ParseFormula("val = 3").ok());          // reserved as term
  EXPECT_FALSE(ParseFormula("x ~ y").ok());
  EXPECT_FALSE(ParseFormula("\"unclosed").ok());
}

TEST(ParseFormula, PaperExampleSection23) {
  // phi(x,y) of Section 2.3: exists y2 exists y3 (desc(x,y) & desc(y,y2)
  // & E(y,y3) & lab(x,a) & lab(y,b) & lab(y2,c) & lab(y3,d)).
  auto f = ParseFormula(
      "exists y2 exists y3 (desc(x, y) & desc(y, y2) & E(y, y3) & "
      "lab(x, a) & lab(y, b) & lab(y2, c) & lab(y3, d))");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_TRUE(f->IsExistentialPrenex());
  EXPECT_EQ(f->FreeVariables(), (std::set<std::string>{"x", "y"}));
}

}  // namespace
}  // namespace treewalk
