// Engine-level fault-injection and resource-governance tests: per-job
// deadlines and budgets, the retry/degradation ladder, mid-batch fault
// isolation, and determinism of whole random failpoint schedules.  The
// acceptance scenario of docs/ROBUSTNESS.md — one batch containing a
// non-terminating job, a memory hog, and a malformed job, whose healthy
// siblings succeed identically to a no-governor run — lives here.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "src/automata/builder.h"
#include "src/automata/library.h"
#include "src/common/failpoint.h"
#include "src/engine/engine.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

class EngineFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Global().DisableAll(); }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

/// A program whose atp() selector the compiler accepts and whose
/// compiled evaluation wants a full descendant matrix.
Program SelectorProgram() {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  b.OnLookAhead("#top", "q0", "true", "q1", "X1",
                "desc(x, y) & lab(y, #leaf)", "p");
  b.OnMove("#top", "q1", "true", "qf", Move::kStay);
  b.OnMove("*", "p", "true", "qf", Move::kStay);
  return std::move(b.Build()).value();
}

TEST_F(EngineFaultTest, PerJobDeadlineFailsOnlyThatJob) {
  Program counter = std::move(ExponentialCounterProgram()).value();
  Program fast = std::move(HasLabelProgram("a")).value();
  Tree chain = FullTree(1, 29);
  AssignUniqueIds(chain);
  Tree small = FullTree(2, 3);

  std::vector<BatchJob> jobs(3);
  jobs[0].program = &fast;
  jobs[0].tree = &small;
  jobs[1].program = &counter;
  jobs[1].tree = &chain;
  jobs[1].options.max_steps = std::int64_t{1} << 60;
  jobs[1].options.detect_cycles = false;
  jobs[1].deadline_ms = 100;
  jobs[2].program = &fast;
  jobs[2].tree = &small;

  BatchResult batch =
      std::move(BatchEngine({.num_threads = 2}).RunBatch(jobs)).value();
  EXPECT_TRUE(batch.results[0].status.ok());
  EXPECT_EQ(batch.results[1].status.code(), StatusCode::kDeadlineExceeded)
      << batch.results[1].status;
  EXPECT_TRUE(batch.results[2].status.ok());
  EXPECT_EQ(batch.stats.failed, 1);
  EXPECT_EQ(batch.stats.deadline_hits, 1);
}

TEST_F(EngineFaultTest, RetriesWithoutDegradationRepeatRungZero) {
  Program counter = std::move(ExponentialCounterProgram()).value();
  Tree chain = FullTree(1, 29);
  AssignUniqueIds(chain);
  std::vector<BatchJob> jobs(1);
  jobs[0].program = &counter;
  jobs[0].tree = &chain;
  jobs[0].options.max_steps = std::int64_t{1} << 60;
  jobs[0].options.detect_cycles = false;
  jobs[0].deadline_ms = 50;
  jobs[0].retry.max_attempts = 2;
  jobs[0].retry.degrade = false;

  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  const JobResult& r = batch.results[0];
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].rung, 0);
  EXPECT_EQ(r.attempts[1].rung, 0);
  EXPECT_EQ(r.attempts[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(batch.stats.deadline_hits, 2);
  EXPECT_EQ(batch.stats.retries, 1);
  EXPECT_EQ(batch.stats.degraded_successes, 0);
}

/// Ladder recovery: a persistent axis-index allocation fault kills the
/// compiled path (a budget-class failure is a hard error there), and
/// the first degradation rung — compile_selectors off — avoids the site
/// entirely, so the retry succeeds with the exact reference verdict.
TEST_F(EngineFaultTest, DegradationLadderRecoversFromAxisIndexFaults) {
  Program p = SelectorProgram();
  Tree t = FullTree(2, 4);

  // Reference verdict, no faults.
  BatchJob clean;
  clean.program = &p;
  clean.tree = &t;
  BatchResult reference =
      std::move(BatchEngine({.num_threads = 1}).RunBatch({clean})).value();
  ASSERT_TRUE(reference.results[0].status.ok());

  FailpointRegistry::Config config;
  config.code = StatusCode::kResourceExhausted;
  config.max_fires = 0;  // keep firing: only degradation can get past it
  FailpointRegistry::Global().Enable("axis_index/alloc", config);

  BatchJob job = clean;
  job.retry.max_attempts = 3;
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch({job})).value();
  const JobResult& r = batch.results[0];
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_EQ(r.attempts.size(), 2u);
  EXPECT_EQ(r.attempts[0].rung, 0);
  EXPECT_EQ(r.attempts[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.attempts[1].rung, 1);
  EXPECT_TRUE(r.attempts[1].status.ok());
  EXPECT_EQ(r.run.accepted, reference.results[0].run.accepted);
  EXPECT_EQ(batch.stats.retries, 1);
  EXPECT_EQ(batch.stats.degraded_successes, 1);
}

/// A mid-batch injected fault fails exactly the job that hits the site;
/// siblings in the same batch are untouched and match a clean run.
TEST_F(EngineFaultTest, MidBatchFaultIsIsolatedToTheFaultedJob) {
  Program walker = std::move(HasLabelProgram("a")).value();
  Program lookahead = SelectorProgram();
  Tree t = FullTree(2, 3);
  std::vector<BatchJob> jobs(3);
  jobs[0].program = &walker;
  jobs[0].tree = &t;
  jobs[1].program = &lookahead;  // the only job that evaluates atp()
  jobs[1].tree = &t;
  jobs[2].program = &walker;
  jobs[2].tree = &t;

  BatchResult clean =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  ASSERT_TRUE(clean.results[1].status.ok());

  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  config.max_fires = 0;
  FailpointRegistry::Global().Enable("interpreter/select", config);
  BatchResult faulted =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  FailpointRegistry::Global().DisableAll();

  EXPECT_EQ(faulted.results[1].status.code(), StatusCode::kInternal);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(faulted.results[i].status.ok()) << "job " << i;
    EXPECT_EQ(faulted.results[i].run.accepted, clean.results[i].run.accepted);
    EXPECT_EQ(faulted.results[i].run.stats.steps,
              clean.results[i].run.stats.steps);
  }
  EXPECT_EQ(faulted.stats.failed, 1);
}

/// The acceptance scenario: one batch holding a non-terminating job
/// (cycle detection off, saved by its deadline), a job whose selector
/// compilation would materialize far more than its byte budget, and a
/// malformed job — while the healthy siblings succeed with results
/// identical to a run without any governor.
TEST_F(EngineFaultTest, AcceptanceScenarioFailsSickJobsAndSparesSiblings) {
  Program fast = std::move(HasLabelProgram("a")).value();
  Program parity = std::move(ParityProgram("a")).value();
  Program counter = std::move(ExponentialCounterProgram()).value();
  Program hog = SelectorProgram();
  Tree small = FullTree(2, 3);
  Tree chain = FullTree(1, 29);
  AssignUniqueIds(chain);
  std::mt19937 rng(5);
  RandomTreeOptions wide;
  wide.num_nodes = 2000;
  wide.labels = {"a", "b"};
  Tree big = RandomTree(rng, wide);

  std::vector<BatchJob> jobs(5);
  jobs[0].program = &fast;  // healthy
  jobs[0].tree = &small;
  jobs[1].program = &counter;  // non-terminating: deadline must fire
  jobs[1].tree = &chain;
  jobs[1].options.max_steps = std::int64_t{1} << 60;
  jobs[1].options.detect_cycles = false;
  jobs[1].deadline_ms = 150;
  jobs[2].program = &hog;  // wants ~500KiB matrices against a 64KiB budget
  jobs[2].tree = &big;
  jobs[2].memory_budget_bytes = 64 << 10;
  // Pin the legacy always-compile path: this scenario exercises the
  // governor tripping on the matrix materialization, and the cost-based
  // planner (kAuto) would sidestep it by picking the reference
  // evaluator for this selector.
  jobs[2].options.plan_mode = PlanMode::kFixed;
  jobs[3].program = nullptr;  // malformed
  jobs[3].tree = &small;
  jobs[4].program = &parity;  // healthy
  jobs[4].tree = &small;

  BatchResult governed =
      std::move(BatchEngine({.num_threads = 2}).RunBatch(jobs)).value();

  EXPECT_TRUE(governed.results[0].status.ok());
  EXPECT_EQ(governed.results[1].status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(governed.results[2].status.code(),
            StatusCode::kResourceExhausted);
  ASSERT_EQ(governed.results[2].attempts.size(), 1u);
  EXPECT_TRUE(governed.results[2].attempts[0].memory_tripped);
  EXPECT_EQ(governed.results[3].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(governed.results[4].status.ok());
  EXPECT_EQ(governed.stats.failed, 3);
  EXPECT_GE(governed.stats.deadline_hits, 1);
  EXPECT_GE(governed.stats.memory_trips, 1);

  // The healthy siblings are bit-identical to a no-governor batch.
  std::vector<BatchJob> plain_jobs = {jobs[0], jobs[4]};
  for (BatchJob& job : plain_jobs) {
    job.deadline_ms = 0;
    job.memory_budget_bytes = 0;
  }
  BatchResult plain =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(plain_jobs)).value();
  for (int k : {0, 1}) {
    const JobResult& g = governed.results[k == 0 ? 0 : 4];
    const JobResult& u = plain.results[static_cast<std::size_t>(k)];
    EXPECT_EQ(g.run.accepted, u.run.accepted);
    EXPECT_EQ(g.run.reason, u.run.reason);
    EXPECT_EQ(g.run.stats, u.run.stats);
  }
}

/// Whole-schedule determinism: for each seed, arming the same random
/// failpoint schedule twice and running the same serial batch gives
/// identical per-job outcomes, attempt ladders, and verdicts — and any
/// job that ultimately succeeds (possibly degraded) reports the same
/// verdict as a fault-free reference run.
TEST_F(EngineFaultTest, RandomFailpointSchedulesAreDeterministicPerSeed) {
  Program walker = std::move(HasLabelProgram("a")).value();
  Program parity = std::move(ParityProgram("a")).value();
  Program lookahead = SelectorProgram();
  Tree t = FullTree(2, 3);
  std::vector<BatchJob> jobs(4);
  jobs[0].program = &walker;
  jobs[1].program = &lookahead;
  jobs[2].program = &parity;
  jobs[3].program = &lookahead;
  for (BatchJob& job : jobs) {
    job.tree = &t;
    job.retry.max_attempts = 4;
    job.retry.initial_backoff_ms = 0;
  }

  BatchResult reference =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  for (const JobResult& r : reference.results) ASSERT_TRUE(r.status.ok());

  auto fingerprint = [&](const BatchResult& batch) {
    std::string out;
    for (const JobResult& r : batch.results) {
      out += std::string(StatusCodeName(r.status.code())) + "/";
      if (r.status.ok()) out += r.run.accepted ? "A" : "R";
      for (const JobResult::Attempt& a : r.attempts) {
        out += ";" + std::to_string(a.rung) + ":" +
               StatusCodeName(a.status.code());
      }
      out += "|";
    }
    return out;
  };

  int faulted_runs = 0;
  int degraded_successes = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FailpointRegistry::Global().ArmRandomSchedule(seed);
    BatchResult first =
        std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
    FailpointRegistry::Global().ArmRandomSchedule(seed);
    BatchResult second =
        std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
    FailpointRegistry::Global().DisableAll();

    EXPECT_EQ(fingerprint(first), fingerprint(second)) << "seed " << seed;
    for (std::size_t i = 0; i < first.results.size(); ++i) {
      const JobResult& r = first.results[i];
      if (r.attempts.size() > 1) ++faulted_runs;
      if (r.status.ok()) {
        // Degraded or not, a success must report the true verdict.
        EXPECT_EQ(r.run.accepted, reference.results[i].run.accepted)
            << "seed " << seed << " job " << i;
        if (r.attempts.back().rung > 0) ++degraded_successes;
      }
    }
  }
  // The schedules actually exercised recovery paths.
  EXPECT_GT(faulted_runs, 0);
  EXPECT_GT(degraded_successes, 0);
}

/// EngineStats bookkeeping under concurrency: for 100 random failpoint
/// schedules run on 4 workers, every aggregate counter must equal the
/// value recomputed from the per-job attempt ladders — retries,
/// deadline hits, degraded successes, and the accepted/rejected/failed
/// partition all sum consistently no matter how attempts interleave.
TEST_F(EngineFaultTest, StatsSumConsistentlyUnderConcurrentFaults) {
  Program walker = std::move(HasLabelProgram("a")).value();
  Program parity = std::move(ParityProgram("a")).value();
  Program lookahead = SelectorProgram();
  Tree t = FullTree(2, 3);
  std::vector<BatchJob> jobs(6);
  jobs[0].program = &walker;
  jobs[1].program = &lookahead;
  jobs[2].program = &parity;
  jobs[3].program = &lookahead;
  jobs[4].program = &walker;
  jobs[5].program = &parity;
  for (BatchJob& job : jobs) {
    job.tree = &t;
    job.retry.max_attempts = 4;
    job.retry.initial_backoff_ms = 1;  // exercise the jittered sleep path
    job.retry.max_backoff_ms = 4;
  }

  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    FailpointRegistry::Global().ArmRandomSchedule(seed);
    BatchResult batch = std::move(BatchEngine({.num_threads = 4,
                                               .backoff_seed = seed})
                                      .RunBatch(jobs))
                            .value();
    FailpointRegistry::Global().DisableAll();

    EngineStats expect;
    for (const JobResult& r : batch.results) {
      ++expect.jobs;
      ASSERT_GE(r.attempts.size(), 1u) << "seed " << seed;
      ASSERT_LE(r.attempts.size(), 4u) << "seed " << seed;
      EXPECT_EQ(r.attempts.back().status, r.status) << "seed " << seed;
      for (const JobResult::Attempt& a : r.attempts) {
        if (a.status.code() == StatusCode::kDeadlineExceeded) {
          ++expect.deadline_hits;
        }
        if (a.memory_tripped) ++expect.memory_trips;
      }
      expect.retries += static_cast<std::int64_t>(r.attempts.size()) - 1;
      if (r.status.ok()) {
        if (r.attempts.back().rung > 0) ++expect.degraded_successes;
        ++(r.run.accepted ? expect.accepted : expect.rejected);
      } else {
        ++expect.failed;
        if (r.status.code() == StatusCode::kCancelled) ++expect.cancelled;
      }
    }
    EXPECT_EQ(batch.stats.jobs, expect.jobs) << "seed " << seed;
    EXPECT_EQ(batch.stats.retries, expect.retries) << "seed " << seed;
    EXPECT_EQ(batch.stats.deadline_hits, expect.deadline_hits)
        << "seed " << seed;
    EXPECT_EQ(batch.stats.memory_trips, expect.memory_trips)
        << "seed " << seed;
    EXPECT_EQ(batch.stats.degraded_successes, expect.degraded_successes)
        << "seed " << seed;
    EXPECT_EQ(batch.stats.accepted, expect.accepted) << "seed " << seed;
    EXPECT_EQ(batch.stats.rejected, expect.rejected) << "seed " << seed;
    EXPECT_EQ(batch.stats.failed, expect.failed) << "seed " << seed;
    EXPECT_EQ(batch.stats.cancelled, expect.cancelled) << "seed " << seed;
    // The verdict partition covers every job exactly once.
    EXPECT_EQ(batch.stats.accepted + batch.stats.rejected +
                  batch.stats.failed,
              batch.stats.jobs)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace treewalk
