#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

bool MustAccept(const Program& p, const Tree& t) {
  auto r = Accepts(p, t);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() && *r;
}

// --- Example 3.2. -----------------------------------------------------

class Example32Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto p = Example32Program();
    ASSERT_TRUE(p.ok()) << p.status();
    program_ = std::make_unique<Program>(std::move(p).value());
  }
  std::unique_ptr<Program> program_;
};

TEST_F(Example32Test, AcceptsUniformDelta) {
  EXPECT_TRUE(MustAccept(*program_, T("delta[a=9](sigma[a=5], sigma[a=5])")));
}

TEST_F(Example32Test, RejectsNonUniformDelta) {
  EXPECT_FALSE(MustAccept(*program_,
                          T("delta[a=9](sigma[a=5], sigma[a=6])")));
}

TEST_F(Example32Test, SigmaNodesAreUnconstrained) {
  EXPECT_TRUE(MustAccept(*program_, T("sigma[a=0](sigma[a=1], sigma[a=2])")));
}

TEST_F(Example32Test, NestedDeltasCheckedIndependently) {
  // Outer delta sees leaves {5, 5}; inner delta sees {5}.
  EXPECT_TRUE(MustAccept(
      *program_,
      T("delta[a=0](delta[a=1](sigma[a=5]), sigma[a=5])")));
  // Inner delta uniform but outer is not.
  EXPECT_FALSE(MustAccept(
      *program_,
      T("delta[a=0](delta[a=1](sigma[a=5]), sigma[a=6])")));
  // Outer uniform values, inner not... impossible: inner leaves are a
  // subset of outer leaves; instead: deep delta with mixed leaves under a
  // sigma root is still caught (deltas anywhere are checked).
  EXPECT_FALSE(MustAccept(
      *program_,
      T("sigma[a=0](delta[a=1](sigma[a=5], sigma[a=6]))")));
}

TEST_F(Example32Test, DeltaLeafIsVacuouslyFine) {
  EXPECT_TRUE(MustAccept(*program_, T("sigma[a=0](delta[a=7])")));
}

TEST_F(Example32Test, MatchesGeneratorOracle) {
  std::mt19937 rng(99);
  for (int trial = 0; trial < 15; ++trial) {
    Tree good = Example32Tree(rng, 20, /*uniform=*/true);
    EXPECT_TRUE(MustAccept(*program_, good)) << "trial " << trial;
    Tree bad = Example32Tree(rng, 20, /*uniform=*/false);
    EXPECT_FALSE(MustAccept(*program_, bad)) << "trial " << trial;
  }
}

TEST_F(Example32Test, CustomAttributeName) {
  auto p = Example32Program("price");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(
      MustAccept(*p, T("delta[price=1](sigma[price=3], sigma[price=3])")));
  EXPECT_FALSE(
      MustAccept(*p, T("delta[price=1](sigma[price=3], sigma[price=4])")));
}

// --- HasLabelProgram (plain tw DFS). -----------------------------------

TEST(HasLabelProgram, FindsLabelAnywhere) {
  auto p = HasLabelProgram("needle");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(MustAccept(*p, T("needle")));
  EXPECT_TRUE(MustAccept(*p, T("a(b, c(needle), d)")));
  EXPECT_TRUE(MustAccept(*p, T("a(b, c, d(e(f(needle))))")));
  EXPECT_FALSE(MustAccept(*p, T("a(b, c(x), d)")));
  EXPECT_FALSE(MustAccept(*p, T("a")));
}

TEST(HasLabelProgram, WalksWholeTreeBeforeRejecting) {
  auto p = HasLabelProgram("needle");
  ASSERT_TRUE(p.ok());
  Interpreter interp(*p);
  Tree t = FullTree(2, 4);  // 31 nodes, no needle
  auto r = interp.Run(t);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->accepted);
  // The DFS must have taken at least one step per delimited node.
  EXPECT_GT(r->stats.steps, static_cast<std::int64_t>(t.size()));
}

TEST(HasLabelProgram, OracleOnRandomTrees) {
  auto p = HasLabelProgram("b");
  ASSERT_TRUE(p.ok());
  std::mt19937 rng(5);
  RandomTreeOptions options;
  options.num_nodes = 25;
  options.labels = {"a", "b", "c"};
  options.attributes = {};
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng, options);
    bool expected = t.FindLabel("b") >= 0;
    // FindLabel can return a symbol no node uses only if interned without
    // use; RandomTree interns on use, so this is exact.
    EXPECT_EQ(MustAccept(*p, t), expected) << "trial " << trial;
  }
}

// --- ParityProgram. -----------------------------------------------------

TEST(ParityProgram, CountsLabelOccurrences) {
  auto p = ParityProgram("b");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(MustAccept(*p, T("a")));              // zero b's
  EXPECT_FALSE(MustAccept(*p, T("b")));             // one
  EXPECT_TRUE(MustAccept(*p, T("b(b)")));           // two
  EXPECT_FALSE(MustAccept(*p, T("a(b, c(b), b)"))); // three
  EXPECT_TRUE(MustAccept(*p, T("a(b, c(b), b(b))")));  // four
}

TEST(ParityProgram, OracleOnRandomTrees) {
  auto p = ParityProgram("a");
  ASSERT_TRUE(p.ok());
  std::mt19937 rng(7);
  RandomTreeOptions options;
  options.num_nodes = 30;
  options.labels = {"a", "b"};
  options.attributes = {};
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = RandomTree(rng, options);
    Symbol a = t.FindLabel("a");
    int count = 0;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.label(u) == a) ++count;
    }
    EXPECT_EQ(MustAccept(*p, t), count % 2 == 0) << "trial " << trial;
  }
}

// --- RootValueAtSomeLeafProgram (tw^l). ---------------------------------

TEST(RootValueAtSomeLeaf, Basics) {
  auto p = RootValueAtSomeLeafProgram();
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(MustAccept(*p, T("r[a=5](x[a=1], y[a=5])")));
  EXPECT_FALSE(MustAccept(*p, T("r[a=5](x[a=1], y[a=2])")));
  // Inner nodes with the value don't count; only leaves.
  EXPECT_FALSE(MustAccept(*p, T("r[a=5](x[a=5](y[a=1]))")));
  // A single-node tree: the root is its own leaf.
  EXPECT_TRUE(MustAccept(*p, T("r[a=5]")));
}

TEST(RootValueAtSomeLeaf, OracleOnRandomTrees) {
  auto p = RootValueAtSomeLeafProgram();
  ASSERT_TRUE(p.ok());
  std::mt19937 rng(11);
  RandomTreeOptions options;
  options.num_nodes = 20;
  options.value_range = 4;  // collisions likely
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = RandomTree(rng, options);
    AttrId a = t.FindAttribute("a");
    DataValue root_value = t.attr(a, t.root());
    bool expected = false;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.IsLeaf(u) && t.attr(a, u) == root_value) expected = true;
    }
    EXPECT_EQ(MustAccept(*p, t), expected) << "trial " << trial;
  }
}

// --- AllLabelValuesEqualRootProgram (tw^r). -----------------------------

TEST(AllLabelValuesEqualRoot, Basics) {
  auto p = AllLabelValuesEqualRootProgram("item");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_TRUE(MustAccept(*p, T("r[a=5](item[a=5], x[a=9](item[a=5]))")));
  EXPECT_FALSE(MustAccept(*p, T("r[a=5](item[a=5], x[a=9](item[a=6]))")));
  // No item nodes: vacuously true.
  EXPECT_TRUE(MustAccept(*p, T("r[a=5](x[a=1])")));
}

TEST(AllLabelValuesEqualRoot, OracleOnRandomTrees) {
  auto p = AllLabelValuesEqualRootProgram("b");
  ASSERT_TRUE(p.ok());
  std::mt19937 rng(13);
  RandomTreeOptions options;
  options.num_nodes = 18;
  options.labels = {"a", "b"};
  options.value_range = 3;
  for (int trial = 0; trial < 25; ++trial) {
    Tree t = RandomTree(rng, options);
    AttrId a = t.FindAttribute("a");
    Symbol b = t.FindLabel("b");
    DataValue root_value = t.attr(a, t.root());
    bool expected = true;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.label(u) == b && t.attr(a, u) != root_value) expected = false;
    }
    EXPECT_EQ(MustAccept(*p, t), expected) << "trial " << trial;
  }
}


// --- ExponentialCounterProgram (Theorem 7.1(4) regime). -----------------

TEST(ExponentialCounter, TakesExactlyTwoToTheNMinusOneIncrements) {
  auto p = ExponentialCounterProgram();
  ASSERT_TRUE(p.ok()) << p.status();
  for (int n : {1, 2, 3, 4, 5}) {
    Tree t = StringTree(std::vector<DataValue>(static_cast<std::size_t>(n),
                                               0));
    AssignUniqueIds(t);
    RunOptions options;
    options.max_steps = 10'000'000;
    Interpreter interp(*p, options);
    auto r = interp.Run(t);
    ASSERT_TRUE(r.ok()) << n << ": " << r.status();
    EXPECT_TRUE(r->accepted) << n;
    // Steps: setup walk (linear) + 2^n - 1 increments.
    std::int64_t increments = (std::int64_t{1} << n) - 1;
    EXPECT_GE(r->stats.steps, increments) << n;
    EXPECT_LE(r->stats.steps, increments + 8 * n + 16) << n;
    // The store stays polynomial: Less has n(n-1)/2 pairs, Seen and X
    // at most n values each.
    EXPECT_LE(r->stats.max_store_tuples,
              static_cast<std::size_t>(n * (n - 1) / 2 + 2 * n));
  }
}

TEST(ExponentialCounter, WorksOnBranchyShapes) {
  auto p = ExponentialCounterProgram();
  ASSERT_TRUE(p.ok());
  auto t = ParseTerm("a(b, c(d), e)");
  ASSERT_TRUE(t.ok());
  Tree tree = *t;
  AssignUniqueIds(tree);
  RunOptions options;
  options.max_steps = 10'000'000;
  auto r = Accepts(*p, tree, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(*r);
}

}  // namespace
}  // namespace treewalk
