// End-to-end observability tests (docs/OBSERVABILITY.md): the batch
// engine's registry counters reconcile exactly with EngineStats, spans
// cover the engine's phases with correct nesting, and the twq CLI
// exporters (--metrics-out / --trace-out) plus the batch progress line
// work through a real subprocess over examples/batch.manifest.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/automata/builder.h"
#include "src/automata/library.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/engine/engine.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kMetricsEnabled) GTEST_SKIP() << "built with TREEWALK_METRICS=OFF";
    MetricsRegistry::Global().ResetForTest();
    FailpointRegistry::Global().DisableAll();
    Tracer::Global().Disable();
  }
  void TearDown() override { FailpointRegistry::Global().DisableAll(); }
};

struct Workload {
  std::vector<Program> programs;
  std::vector<Tree> trees;
  std::vector<BatchJob> jobs;
};

/// Mixed all-success workload: accepting and rejecting jobs over shared
/// programs and trees (no retries, no failures).
Workload SmallWorkload() {
  Workload w;
  w.programs.push_back(std::move(HasLabelProgram("a")).value());
  w.programs.push_back(std::move(ParityProgram("a")).value());
  w.trees.push_back(FullTree(2, 3));
  w.trees.push_back(FullTree(3, 2));
  for (int i = 0; i < 12; ++i) {
    BatchJob job;
    job.program = &w.programs[static_cast<std::size_t>(i) % 2];
    job.tree = &w.trees[static_cast<std::size_t>(i / 2) % 2];
    w.jobs.push_back(job);
  }
  return w;
}

/// The acceptance contract: on a fresh registry, the snapshot's engine
/// and interpreter counters equal the batch's EngineStats field for
/// field.  (The interpreter families coincide because every attempt
/// succeeded — EngineStats sums OK jobs only, the registry counts all
/// work.)
TEST_F(ObservabilityTest, CountersReconcileExactlyWithEngineStats) {
  Workload w = SmallWorkload();
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 4}).RunBatch(w.jobs)).value();
  ASSERT_EQ(batch.stats.failed, 0);
  ASSERT_GT(batch.stats.accepted, 0);
  ASSERT_GT(batch.stats.rejected, 0);

  const MetricsSnapshot& m = batch.metrics;
  EXPECT_EQ(m.Value("treewalk_engine_jobs_total", "accepted"),
            batch.stats.accepted);
  EXPECT_EQ(m.Value("treewalk_engine_jobs_total", "rejected"),
            batch.stats.rejected);
  EXPECT_EQ(m.Value("treewalk_engine_jobs_total", "failed"),
            batch.stats.failed);
  EXPECT_EQ(m.Value("treewalk_engine_jobs_total", "cancelled"),
            batch.stats.cancelled);
  EXPECT_EQ(m.Value("treewalk_engine_attempts_total"), batch.stats.jobs);
  EXPECT_EQ(m.Value("treewalk_engine_retries_total"), batch.stats.retries);
  EXPECT_EQ(m.Value("treewalk_engine_deadline_hits_total"),
            batch.stats.deadline_hits);
  EXPECT_EQ(m.Value("treewalk_engine_memory_trips_total"),
            batch.stats.memory_trips);
  EXPECT_EQ(m.Value("treewalk_engine_degraded_successes_total"),
            batch.stats.degraded_successes);

  EXPECT_EQ(m.Value("treewalk_interp_runs_total"), batch.stats.jobs);
  EXPECT_EQ(m.Value("treewalk_interp_steps_total"), batch.stats.steps);
  EXPECT_EQ(m.Value("treewalk_interp_subcomputations_total"),
            batch.stats.subcomputations);
  EXPECT_EQ(m.Value("treewalk_interp_atp_calls_total"),
            batch.stats.atp_calls);
  EXPECT_EQ(m.Value("treewalk_interp_selector_cache_total", "hit"),
            batch.stats.selector_cache_hits);
  EXPECT_EQ(m.Value("treewalk_interp_selector_cache_total", "miss"),
            batch.stats.selector_cache_misses);
  EXPECT_EQ(m.Value("treewalk_interp_selector_evals_total", "compiled"),
            batch.stats.compiled_selector_evals);
  EXPECT_EQ(m.Value("treewalk_interp_store_updates_total"),
            batch.stats.store_updates);

  // Latency histograms saw every job; the running gauge drained.
  const MetricSample* latency = m.Find("treewalk_engine_job_latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count,
            static_cast<std::uint64_t>(batch.stats.jobs));
  const MetricSample* wait = m.Find("treewalk_engine_queue_wait_ms");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->histogram.count,
            static_cast<std::uint64_t>(batch.stats.jobs));
  EXPECT_EQ(m.Value("treewalk_engine_jobs_running"), 0);
  EXPECT_EQ(m.Value("treewalk_engine_workers"), 4);
}

TEST_F(ObservabilityTest, RetriesAndFailuresReconcile) {
  // One injected retryable failure: attempt 1 trips the engine/worker
  // failpoint, the retry succeeds on degradation rung 1.
  FailpointRegistry::Config config;
  config.code = StatusCode::kInternal;
  config.max_fires = 1;
  FailpointRegistry::Global().Enable("engine/worker", config);

  Program fast = std::move(HasLabelProgram("a")).value();
  Tree small = FullTree(2, 3);
  std::vector<BatchJob> jobs(1);
  jobs[0].program = &fast;
  jobs[0].tree = &small;
  jobs[0].retry.max_attempts = 2;
  jobs[0].retry.initial_backoff_ms = 0;

  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  ASSERT_TRUE(batch.results[0].status.ok()) << batch.results[0].status;
  ASSERT_EQ(batch.stats.retries, 1);
  ASSERT_EQ(batch.stats.degraded_successes, 1);

  const MetricsSnapshot& m = batch.metrics;
  EXPECT_EQ(m.Value("treewalk_engine_jobs_total", "accepted"), 1);
  EXPECT_EQ(m.Value("treewalk_engine_attempts_total"), 2);
  EXPECT_EQ(m.Value("treewalk_engine_retries_total"), 1);
  EXPECT_EQ(m.Value("treewalk_engine_degraded_successes_total"), 1);
  // The failpoint fired before the interpreter ran, so only the
  // successful attempt counts as a run.
  EXPECT_EQ(m.Value("treewalk_interp_runs_total"), 1);
}

TEST_F(ObservabilityTest, FailedJobsCountWorkTheStatsOmit) {
  // A null-program job fails its precheck; a sibling succeeds.  The
  // jobs_total{failed} counter must agree with EngineStats.
  Program fast = std::move(HasLabelProgram("a")).value();
  Tree small = FullTree(2, 3);
  std::vector<BatchJob> jobs(2);
  jobs[0].program = nullptr;
  jobs[0].tree = &small;
  jobs[1].program = &fast;
  jobs[1].tree = &small;

  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(jobs)).value();
  EXPECT_EQ(batch.stats.failed, 1);
  EXPECT_EQ(batch.metrics.Value("treewalk_engine_jobs_total", "failed"), 1);
  // The failed job never started an attempt.
  EXPECT_EQ(batch.metrics.Value("treewalk_engine_attempts_total"), 1);
}

TEST_F(ObservabilityTest, BatchSpansNestJobAndAttempt) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable();
  Workload w = SmallWorkload();
  w.jobs.resize(2);
  // Single-threaded so the jobs run on the calling thread and nest
  // under the batch span (span parentage is per-thread).
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(w.jobs)).value();
  tracer.Disable();
  ASSERT_EQ(batch.stats.failed, 0);

  std::vector<TraceEvent> events = tracer.Collect();
  const TraceEvent* batch_span = nullptr;
  int job_spans = 0, attempt_spans = 0, queue_waits = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "batch") batch_span = &e;
  }
  ASSERT_NE(batch_span, nullptr);
  for (const TraceEvent& e : events) {
    if (e.name == "job") {
      ++job_spans;
      EXPECT_EQ(e.parent_id, batch_span->id);
    }
    if (e.name == "attempt") ++attempt_spans;
    if (e.name == "queue-wait") ++queue_waits;
  }
  EXPECT_EQ(job_spans, 2);
  EXPECT_EQ(attempt_spans, 2);
  EXPECT_EQ(queue_waits, 2);
  // Attempts nest under their job.
  for (const TraceEvent& e : events) {
    if (e.name != "attempt") continue;
    bool parent_is_job = false;
    for (const TraceEvent& p : events) {
      if (p.id == e.parent_id && p.name == "job") parent_is_job = true;
    }
    EXPECT_TRUE(parent_is_job);
  }
}

#if defined(TREEWALK_TWQ_PATH) && defined(TREEWALK_SOURCE_DIR)

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs the real twq binary over examples/batch.manifest and checks the
/// CLI surface: exit code, ≥1 stderr progress line, a scrapable
/// Prometheus file, a JSON metrics file, and a Chrome trace file.
TEST_F(ObservabilityTest, TwqBatchExportsMetricsTraceAndProgress) {
  const std::string dir = ::testing::TempDir();
  const std::string prom = dir + "twq_metrics.prom";
  const std::string json = dir + "twq_metrics.json";
  const std::string trace = dir + "twq_trace.json";
  const std::string err = dir + "twq_stderr.txt";
  std::remove(prom.c_str());
  std::remove(json.c_str());
  std::remove(trace.c_str());

  const std::string cmd = std::string("cd ") + TREEWALK_SOURCE_DIR + " && " +
                          TREEWALK_TWQ_PATH +
                          " batch examples/batch.manifest --jobs 2"
                          " --metrics-out " + prom + " --trace-out " + trace +
                          " >/dev/null 2>" + err;
  ASSERT_EQ(std::system(cmd.c_str()), 0) << ReadWholeFile(err);

  const std::string progress = ReadWholeFile(err);
  EXPECT_NE(progress.find("progress: "), std::string::npos) << progress;
  EXPECT_NE(progress.find("jobs done"), std::string::npos) << progress;

  const std::string exposition = ReadWholeFile(prom);
  EXPECT_NE(exposition.find("# TYPE treewalk_engine_jobs_total counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("treewalk_engine_jobs_total{status=\"accepted\"}"),
            std::string::npos);
  EXPECT_NE(
      exposition.find("treewalk_engine_job_latency_ms_bucket{le=\"+Inf\"}"),
      std::string::npos);

  const std::string chrome = ReadWholeFile(trace);
  ASSERT_FALSE(chrome.empty());
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"batch\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"job\""), std::string::npos);

  const std::string cmd_json = std::string("cd ") + TREEWALK_SOURCE_DIR +
                               " && " + TREEWALK_TWQ_PATH +
                               " batch examples/batch.manifest --quiet"
                               " --metrics-out " + json +
                               " >/dev/null 2>/dev/null";
  ASSERT_EQ(std::system(cmd_json.c_str()), 0);
  const std::string as_json = ReadWholeFile(json);
  EXPECT_NE(as_json.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(as_json.find("\"name\": \"treewalk_engine_jobs_total\""),
            std::string::npos);
}

#endif  // TREEWALK_TWQ_PATH && TREEWALK_SOURCE_DIR

}  // namespace
}  // namespace treewalk
