// Tests for the batch evaluation engine (src/engine): determinism
// across thread counts, shared read-only inputs, per-job error
// isolation, cooperative cancellation, and the interpreter's selector
// cache and instrumentation counters it surfaces.

#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "src/automata/builder.h"
#include "src/automata/library.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

struct Workload {
  std::vector<Program> programs;
  std::vector<Tree> trees;
  std::vector<BatchJob> jobs;
};

/// A mixed 64-job workload over the library programs: shared programs,
/// shared trees, accepting and rejecting runs, all four device classes.
Workload MixedWorkload() {
  Workload w;
  w.programs.push_back(std::move(HasLabelProgram("a")).value());
  w.programs.push_back(std::move(HasLabelProgram("missing")).value());
  w.programs.push_back(std::move(ParityProgram("a")).value());
  w.programs.push_back(std::move(AllLeavesLabelProgram("a")).value());
  w.programs.push_back(std::move(RootValueAtSomeLeafProgram("a")).value());
  w.programs.push_back(std::move(Example32Program("a")).value());

  std::mt19937 rng(17);
  RandomTreeOptions options;
  options.labels = {"a", "b", "sigma", "delta"};
  options.value_range = 4;
  for (int n : {5, 9, 17, 33}) {
    options.num_nodes = n;
    w.trees.push_back(RandomTree(rng, options));
  }
  w.trees.push_back(Example32Tree(rng, 40, /*uniform=*/true));
  w.trees.push_back(Example32Tree(rng, 40, /*uniform=*/false));

  // 6 programs x 6 trees = 36, repeated to 64 jobs.
  for (int i = 0; i < 64; ++i) {
    BatchJob job;
    job.program = &w.programs[static_cast<std::size_t>(i) % w.programs.size()];
    job.tree = &w.trees[static_cast<std::size_t>(i / 2) % w.trees.size()];
    w.jobs.push_back(job);
  }
  return w;
}

void ExpectSameResults(const BatchResult& a, const BatchResult& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].status, b.results[i].status) << "job " << i;
    EXPECT_EQ(a.results[i].run.accepted, b.results[i].run.accepted)
        << "job " << i;
    EXPECT_EQ(a.results[i].run.reason, b.results[i].run.reason) << "job " << i;
    EXPECT_EQ(a.results[i].run.stats, b.results[i].run.stats) << "job " << i;
    EXPECT_EQ(a.results[i].run.trace, b.results[i].run.trace) << "job " << i;
  }
  EXPECT_EQ(a.stats, b.stats);
}

TEST(BatchEngine, SameBatchIsIdenticalAt1And2And8Threads) {
  Workload w = MixedWorkload();
  BatchResult serial =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(w.jobs)).value();
  // Sanity: the workload exercises both verdicts.
  EXPECT_GT(serial.stats.accepted, 0);
  EXPECT_GT(serial.stats.rejected, 0);
  EXPECT_EQ(serial.stats.failed, 0);
  for (int threads : {2, 8}) {
    BatchEngine engine({.num_threads = threads});
    auto parallel = engine.RunBatch(w.jobs);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameResults(serial, *parallel);
  }
}

TEST(BatchEngine, MatchesIndividualInterpreterRuns) {
  Workload w = MixedWorkload();
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 4}).RunBatch(w.jobs)).value();
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    Interpreter interpreter(*w.jobs[i].program, w.jobs[i].options);
    auto direct = interpreter.Run(*w.jobs[i].tree);
    ASSERT_TRUE(direct.ok()) << direct.status();
    ASSERT_TRUE(batch.results[i].status.ok()) << batch.results[i].status;
    EXPECT_EQ(batch.results[i].run.accepted, direct->accepted) << "job " << i;
    EXPECT_EQ(batch.results[i].run.stats, direct->stats) << "job " << i;
  }
}

TEST(BatchEngine, MalformedJobsFailIndividuallyNotBatchwide) {
  Program p = std::move(HasLabelProgram("a")).value();
  Tree t = FullTree(2, 2);
  Tree empty;
  std::vector<BatchJob> jobs(3);
  jobs[0] = {&p, &t, {}};
  jobs[1] = {nullptr, &t, {}};
  jobs[2] = {&p, &empty, {}};
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 2}).RunBatch(jobs)).value();
  EXPECT_TRUE(batch.results[0].status.ok());
  EXPECT_TRUE(batch.results[0].run.accepted);
  EXPECT_EQ(batch.results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(batch.results[2].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(batch.stats.jobs, 3);
  EXPECT_EQ(batch.stats.accepted, 1);
  EXPECT_EQ(batch.stats.failed, 2);
}

TEST(BatchEngine, RejectsInvalidThreadCount) {
  BatchEngine engine({.num_threads = 0});
  EXPECT_FALSE(engine.RunBatch({}).ok());
}

TEST(BatchEngine, EmptyBatchSucceeds) {
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 4}).RunBatch({})).value();
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.stats.jobs, 0);
}

TEST(BatchEngine, CooperativeCancellationAbortsLongRuns) {
  // 2^30 - 1 increments: effectively unbounded without cancellation.
  Program p = std::move(ExponentialCounterProgram()).value();
  Tree t = FullTree(1, 29);
  AssignUniqueIds(t);
  std::vector<BatchJob> jobs(4);
  for (BatchJob& job : jobs) {
    job.program = &p;
    job.tree = &t;
    job.options.max_steps = std::int64_t{1} << 60;
    job.options.detect_cycles = false;
  }
  BatchEngine engine({.num_threads = 2});
  BatchResult batch;
  std::thread runner([&]() {
    batch = std::move(engine.RunBatch(jobs)).value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  engine.RequestCancel();
  runner.join();
  EXPECT_EQ(batch.stats.cancelled, 4);
  for (const JobResult& r : batch.results) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  }
}

/// Two atp() rules with the *same* selector firing at the same node:
/// the second must hit the per-run selector cache.
TEST(SelectorCache, RepeatedSelectorAtOneNodeHits) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  b.DeclareRegister("X2", 1);
  b.InitRegister("X1", 7);
  const char* selector = "desc(x, y) & lab(y, #leaf)";
  b.OnLookAhead("#top", "q0", "true", "q1", "X1", selector, "p");
  b.OnLookAhead("#top", "q1", "true", "q2", "X2", selector, "p");
  b.OnMove("#top", "q2", "true", "qf", Move::kStay);
  b.OnMove("*", "p", "true", "qf", Move::kStay);
  Program p = std::move(b.Build()).value();

  Tree t = FullTree(2, 2);
  Interpreter interpreter(p);
  RunResult r = std::move(interpreter.Run(t)).value();
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.stats.atp_calls, 2);
  EXPECT_EQ(r.stats.selector_cache_misses, 1);
  EXPECT_EQ(r.stats.selector_cache_hits, 1);

  // With the cache disabled both firings evaluate the selector; the
  // run itself is unchanged.
  RunOptions no_cache;
  no_cache.cache_selectors = false;
  RunResult r2 =
      std::move(Interpreter(p, no_cache).Run(t)).value();
  EXPECT_TRUE(r2.accepted);
  EXPECT_EQ(r2.stats.selector_cache_hits, 0);
  EXPECT_EQ(r2.stats.selector_cache_misses, 2);
  EXPECT_EQ(r2.stats.steps, r.stats.steps);
}

TEST(SelectorCache, CountersAreConsistentAcrossTheLibrary) {
  Workload w = MixedWorkload();
  BatchResult batch =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(w.jobs)).value();
  EXPECT_EQ(batch.stats.selector_cache_hits + batch.stats.selector_cache_misses,
            batch.stats.atp_calls);
  for (const JobResult& r : batch.results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.run.stats.selector_cache_hits +
                  r.run.stats.selector_cache_misses,
              r.run.stats.atp_calls);
  }
}

TEST(SelectorCache, DisablingTheCacheChangesNoVerdictOrStepCount) {
  Workload w = MixedWorkload();
  std::vector<BatchJob> no_cache_jobs = w.jobs;
  for (BatchJob& job : no_cache_jobs) job.options.cache_selectors = false;
  BatchResult cached =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(w.jobs)).value();
  BatchResult plain = std::move(
      BatchEngine({.num_threads = 1}).RunBatch(no_cache_jobs)).value();
  ASSERT_EQ(cached.results.size(), plain.results.size());
  for (std::size_t i = 0; i < cached.results.size(); ++i) {
    EXPECT_EQ(cached.results[i].run.accepted, plain.results[i].run.accepted);
    EXPECT_EQ(cached.results[i].run.reason, plain.results[i].run.reason);
    EXPECT_EQ(cached.results[i].run.stats.steps,
              plain.results[i].run.stats.steps);
  }
}

}  // namespace
}  // namespace treewalk
