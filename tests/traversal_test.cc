#include <gtest/gtest.h>

#include <random>

#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "src/tree/traversal.h"

namespace treewalk {
namespace {

TEST(DocumentOrder, NextVisitsIdsInOrder) {
  auto t = ParseTerm("a(b, c(d, e), f)");
  ASSERT_TRUE(t.ok());
  NodeId u = t->root();
  for (NodeId expected = 0; expected < static_cast<NodeId>(t->size());
       ++expected) {
    ASSERT_EQ(u, expected);
    u = DocumentNext(*t, u);
  }
  EXPECT_EQ(u, kNoNode);
}

TEST(DocumentOrder, PrevIsInverseOfNext) {
  std::mt19937 rng(7);
  RandomTreeOptions options;
  options.num_nodes = 60;
  Tree t = RandomTree(rng, options);
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    NodeId next = DocumentNext(t, u);
    if (next != kNoNode) {
      EXPECT_EQ(next, u + 1);
      EXPECT_EQ(DocumentPrev(t, next), u);
    }
  }
  EXPECT_EQ(DocumentPrev(t, t.root()), kNoNode);
}

TEST(PostOrder, VisitsChildrenBeforeParents) {
  auto t = ParseTerm("a(b, c(d, e), f)");
  ASSERT_TRUE(t.ok());
  std::vector<NodeId> order = PostOrder(*t);
  ASSERT_EQ(order.size(), t->size());
  std::vector<std::string> labels;
  for (NodeId u : order) labels.push_back(t->LabelName(t->label(u)));
  EXPECT_EQ(labels,
            (std::vector<std::string>{"b", "d", "e", "c", "f", "a"}));
}

TEST(PostOrder, ParentAlwaysAfterChildOnRandomTrees) {
  std::mt19937 rng(11);
  RandomTreeOptions options;
  options.num_nodes = 100;
  Tree t = RandomTree(rng, options);
  std::vector<NodeId> order = PostOrder(t);
  std::vector<int> position(t.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId u = 1; u < static_cast<NodeId>(t.size()); ++u) {
    EXPECT_LT(position[static_cast<std::size_t>(u)],
              position[static_cast<std::size_t>(t.Parent(u))]);
  }
}

TEST(Leaves, CollectsAllLeaves) {
  auto t = ParseTerm("a(b, c(d, e), f)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Leaves(*t), (std::vector<NodeId>{1, 3, 4, 5}));
}

TEST(CollectWhere, FiltersByPredicate) {
  auto t = ParseTerm("a(b, a(a, b))");
  ASSERT_TRUE(t.ok());
  Symbol a = t->FindLabel("a");
  auto hits = CollectWhere(*t, [&](NodeId u) { return t->label(u) == a; });
  EXPECT_EQ(hits, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Height, ChainAndStar) {
  Tree chain = StringTree({1, 2, 3, 4});
  EXPECT_EQ(Height(chain), 3);
  auto star = ParseTerm("a(b, c, d, e)");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(Height(*star), 1);
  auto single = ParseTerm("a");
  EXPECT_EQ(Height(*single), 0);
}

}  // namespace
}  // namespace treewalk
