// Tests for the cost-based query planner (src/logic/planner.h) and its
// tree-statistics substrate (src/tree/tree_stats.h): exact statistics on
// known trees, snapshot preloading, formula feature extraction, the
// dense/interval cost crossover (which must reproduce the legacy
// kDenseAxisNodeLimit switch), interpreter pick counters, calibration
// feedback, and the headline differential oracle proving that the
// planned strategy returns exactly the same nodes as every fixed
// strategy on >= 500 random (formula, tree) instances.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/planner.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/snapshot.h"
#include "src/tree/term_io.h"
#include "src/tree/tree_stats.h"

namespace treewalk {
namespace {

Formula Parse(const std::string& source) {
  auto parsed = ParseFormula(source);
  EXPECT_TRUE(parsed.ok()) << source << ": " << parsed.status().ToString();
  return *parsed;
}

Tree Term(const std::string& source) {
  auto parsed = ParseTerm(source);
  EXPECT_TRUE(parsed.ok()) << source << ": " << parsed.status().ToString();
  return *parsed;
}

// --- TreeStats: exact statistics. --------------------------------------

TEST(TreeStats, ExactOnKnownTree) {
  //      f            depths: f=0, a=1, g=1, d=1, b=2, c=2
  //    / | \          desc pairs = sum_depths = 7
  //   a  g  d         sib pairs: root family C(3,2)=3, g family C(2,2)=1
  //     / \           succ pairs: 2 + 1
  //    b   c
  Tree t = Term("f(a, g(b, c), d)");
  TreeStats s = ComputeTreeStats(t);
  EXPECT_EQ(s.nodes, 6);
  EXPECT_EQ(s.edges, 5);
  EXPECT_EQ(s.max_depth, 2);
  EXPECT_EQ(s.sum_depths, 7);
  EXPECT_EQ(s.leaves, 4);
  EXPECT_EQ(s.parents, 2);
  EXPECT_EQ(s.max_fanout, 3);
  EXPECT_EQ(s.sib_pairs, 4);
  EXPECT_EQ(s.succ_pairs, 3);
  // Every node carries exactly one label; identities the snapshot
  // validator also enforces.
  std::int64_t label_total = 0;
  for (std::int64_t c : s.label_counts) label_total += c;
  EXPECT_EQ(label_total, s.nodes);
  EXPECT_EQ(s.leaves + s.parents, s.nodes);
  EXPECT_DOUBLE_EQ(s.AvgFanout(), 2.5);
}

TEST(TreeStats, EmptyTreeIsAllZero) {
  Tree empty;
  TreeStats s = ComputeTreeStats(empty);
  EXPECT_EQ(s.nodes, 0);
  EXPECT_EQ(s.edges, 0);
  EXPECT_EQ(s.MaxLabelCount(), 0);
}

TEST(TreeStats, AtomCardinalitiesAreExactOnRandomTrees) {
  // The closed forms the planner's leaf estimates rely on, checked
  // against brute-force enumeration of the actual relations.
  std::mt19937 rng(411);
  RandomTreeOptions options;
  for (int round = 0; round < 20; ++round) {
    options.num_nodes = 1 + static_cast<int>(rng() % 60);
    Tree t = RandomTree(rng, options);
    TreeStats s = ComputeTreeStats(t);
    std::int64_t desc = 0, sib = 0, succ = 0, leaves = 0;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.ChildCount(u) == 0) ++leaves;
      // Every strict ancestor of u contributes one desc pair, so the
      // total is exactly the sum of depths.
      for (NodeId p = t.Parent(u); p != kNoNode; p = t.Parent(p)) ++desc;
      for (NodeId v = 0; v < static_cast<NodeId>(t.size()); ++v) {
        if (t.Parent(u) != kNoNode && t.Parent(u) == t.Parent(v) && u < v) {
          ++sib;
          if (t.NextSibling(u) == v) ++succ;
        }
      }
    }
    EXPECT_EQ(s.sum_depths, desc) << "round " << round;
    EXPECT_EQ(s.sib_pairs, sib) << "round " << round;
    EXPECT_EQ(s.succ_pairs, succ) << "round " << round;
    EXPECT_EQ(s.leaves, leaves) << "round " << round;
  }
}

// --- Snapshot preloading (docs/SNAPSHOT.md, v2 stats section). ---------

TEST(TreeStats, SnapshotRoundTripPreloadsExactStats) {
  std::mt19937 rng(2026);
  RandomTreeOptions options;
  options.num_nodes = 300;
  options.attributes = {"a", "b"};
  options.value_range = 5;
  Tree original = RandomTree(rng, options);

  auto image = std::make_shared<const std::string>(
      EncodeTreeSnapshot(original));
  auto loaded = TreeFromSnapshotImage(image);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The loaded tree carries preloaded stats, and they are *exactly* the
  // stats a fresh scan computes — the planner sees no difference
  // between snapshot-backed and parsed trees.
  ASSERT_NE(loaded->snapshot_stats(), nullptr);
  EXPECT_EQ(*loaded->snapshot_stats(), ComputeTreeStats(*loaded));
  EXPECT_EQ(*loaded->snapshot_stats(), ComputeTreeStats(original));

  // GetOrComputeTreeStats serves the preloaded block without touching
  // scratch, and scans when there is no snapshot.
  TreeStats scratch;
  EXPECT_EQ(GetOrComputeTreeStats(*loaded, scratch),
            loaded->snapshot_stats());
  EXPECT_EQ(scratch.nodes, 0);
  const TreeStats* scanned = GetOrComputeTreeStats(original, scratch);
  EXPECT_EQ(scanned, &scratch);
  EXPECT_EQ(*scanned, *loaded->snapshot_stats());
}

// --- Formula features. -------------------------------------------------

TEST(FormulaFeatures, CountsStructure) {
  FormulaFeatures f = AnalyzeFormula(
      Parse("exists z ((desc(x, y) & E(y, z)) & !lab(z, a))"));
  EXPECT_EQ(f.atoms, 3);
  EXPECT_EQ(f.quantifiers, 1);
  EXPECT_EQ(f.exists_count, 1);
  EXPECT_EQ(f.forall_count, 0);
  EXPECT_EQ(f.negation_depth, 1);
  EXPECT_EQ(f.desc_atoms, 1);
  EXPECT_EQ(f.edge_atoms, 1);
  EXPECT_EQ(f.label_atoms, 1);
  EXPECT_EQ(f.width, 3);  // x, y, z live simultaneously
  EXPECT_TRUE(f.has_range_guard);
}

TEST(FormulaFeatures, RangeGuardRequiresPositiveTopLevelAxis) {
  EXPECT_TRUE(AnalyzeFormula(Parse("desc(x, y) & lab(y, a)"))
                  .has_range_guard);
  EXPECT_TRUE(AnalyzeFormula(Parse("exists z (E(x, z))")).has_range_guard);
  // Negated or disjoined axes do not bound the search range.
  EXPECT_FALSE(AnalyzeFormula(Parse("!desc(x, y)")).has_range_guard);
  EXPECT_FALSE(AnalyzeFormula(Parse("desc(x, y) | lab(y, a)"))
                   .has_range_guard);
  EXPECT_FALSE(AnalyzeFormula(Parse("lab(y, a)")).has_range_guard);
}

// --- Cost model. -------------------------------------------------------

/// Synthetic stats for a balanced-ish tree of n nodes, enough structure
/// for every estimate to be finite and positive.
TreeStats SyntheticStats(std::int64_t n) {
  TreeStats s;
  s.nodes = n;
  s.edges = n - 1;
  s.max_depth = 16;
  s.sum_depths = 8 * n;
  s.leaves = n / 2;
  s.parents = n - n / 2;
  s.max_fanout = 4;
  s.sib_pairs = n;
  s.succ_pairs = n - 1;
  s.label_counts = {n / 2, n - n / 2};
  return s;
}

TEST(CostModel, DenseIntervalCrossoverMatchesLegacyLimit) {
  // With default calibration, a span-1 workload's dense/interval cost
  // ratio is n / 4096: the planner's crossover lands exactly on the
  // legacy kDenseAxisNodeLimit, making it a strict generalization of
  // the old fixed switch.
  Formula f = Parse("desc(x, y)");
  SelectorPlan small = PlanSelector(SyntheticStats(2048), f);
  EXPECT_LT(small.cost_dense, small.cost_interval);
  SelectorPlan large = PlanSelector(SyntheticStats(32768), f);
  EXPECT_GT(large.cost_dense, large.cost_interval);
  // Disjunctions widen interval rows and move the crossover up.
  SelectorPlan with_or =
      PlanSelector(SyntheticStats(32768), Parse("desc(x, y) | sib(x, y)"));
  EXPECT_GT(with_or.cost_interval / large.cost_interval, 1.5);
}

TEST(CostModel, ReferenceWinsForSingleOriginCheapSelector) {
  // One origin, one guarded atom: the reference evaluator enumerates a
  // handful of children, while any compiled path must first build the
  // full satisfier relation.  The planner must not compile.
  PlanOptions opts;
  opts.expected_origins = 1;
  SelectorPlan plan =
      PlanSelector(SyntheticStats(100000), Parse("E(x, y)"), {}, opts);
  EXPECT_EQ(plan.strategy, PlanStrategy::kReference);
  EXPECT_LT(plan.cost_reference, plan.cost_dense);
  EXPECT_LT(plan.cost_reference, plan.cost_interval);
}

TEST(CostModel, ForcedReprRestrictsCompiledCandidates) {
  Formula f = Parse("desc(x, y)");
  PlanOptions force_interval;
  force_interval.forced_repr = AxisRepr::kInterval;
  SelectorPlan plan =
      PlanSelector(SyntheticStats(2048), f, {}, force_interval);
  // Dense would win on 2048 nodes, but it is not a candidate.
  EXPECT_NE(plan.strategy, PlanStrategy::kCompiledDense);

  PlanOptions force_dense;
  force_dense.forced_repr = AxisRepr::kDense;
  SelectorPlan plan2 =
      PlanSelector(SyntheticStats(1 << 20), f, {}, force_dense);
  EXPECT_NE(plan2.strategy, PlanStrategy::kCompiledInterval);
}

TEST(CostModel, XPathCompetesOnlyWhenOffered) {
  Formula f = Parse("desc(x, y)");
  SelectorPlan plain = PlanSelector(SyntheticStats(4096), f);
  EXPECT_LT(plain.cost_xpath, 0.0);
  EXPECT_NE(plain.strategy, PlanStrategy::kXPathDirect);

  PlanOptions opts;
  opts.offer_xpath = true;
  opts.xpath_steps = 1;
  SelectorPlan offered = PlanSelector(SyntheticStats(4096), f, {}, opts);
  EXPECT_GE(offered.cost_xpath, 0.0);
}

TEST(CostModel, AtomEstimatesAreExactAndOrdered) {
  Tree t = Term("f(a, g(b, c), d)");
  TreeStats s = ComputeTreeStats(t);
  SelectorPlan plan = PlanSelector(s, Parse("desc(x, y)"));
  ASSERT_EQ(plan.operators.size(), 1u);
  EXPECT_TRUE(plan.operators[0].exact);
  // desc has exactly sum_depths satisfier pairs.
  EXPECT_NEAR(plan.operators[0].rows, 7.0, 1e-9);
  // Operators render in pre-order with child depth = parent depth + 1.
  SelectorPlan nested = PlanSelector(s, Parse("exists z (E(x, z))"));
  ASSERT_EQ(nested.operators.size(), 2u);
  EXPECT_EQ(nested.operators[0].depth, 0);
  EXPECT_EQ(nested.operators[1].depth, 1);
  EXPECT_NEAR(nested.operators[1].rows, 5.0, 1e-9);  // edges
}

TEST(CostModel, DegenerateInputsFallBackToReference) {
  TreeStats empty;
  EXPECT_EQ(PlanSelector(empty, Parse("desc(x, y)")).strategy,
            PlanStrategy::kReference);
  Formula invalid;
  EXPECT_EQ(PlanSelector(SyntheticStats(64), invalid).strategy,
            PlanStrategy::kReference);
}

// --- Calibration feedback. ---------------------------------------------

TEST(Recalibrate, GeometricHalfStepTowardMeasurement) {
  SelectorPlan plan = PlanSelector(SyntheticStats(4096), Parse("desc(x, y)"));
  ASSERT_GT(plan.cost_reference, 0.0);
  // A measurement 4x the prediction scales the constant by sqrt(4) = 2.
  std::vector<StrategyMeasurement> measured = {
      {PlanStrategy::kReference, 4.0 * plan.cost_reference}};
  PlannerCalibration base;
  PlannerCalibration tuned = RecalibrateFromMeasurements(base, plan, measured);
  EXPECT_NEAR(tuned.reference_visit_cost, 2.0 * base.reference_visit_cost,
              1e-9);
  // Unmeasured strategies keep their constants; bad samples are ignored.
  EXPECT_EQ(tuned.dense_word_cost, base.dense_word_cost);
  measured[0].nanos = 0.0;
  EXPECT_EQ(RecalibrateFromMeasurements(base, plan, measured), base);
}

// --- Interpreter pick counters. ----------------------------------------

TEST(PlannerPicks, AutoCountsPicksFixedDoesNot) {
  auto program = Example32Program("a");
  ASSERT_TRUE(program.ok());
  std::mt19937 rng(99);
  RandomTreeOptions options;
  options.labels = {"a", "sigma", "delta"};
  options.attributes = {"a"};
  options.num_nodes = 24;
  Tree t = RandomTree(rng, options);

  RunOptions auto_opts;  // plan_mode defaults to kAuto
  auto auto_run = Interpreter(*program, auto_opts).Run(t);
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().ToString();

  RunOptions fixed_opts;
  fixed_opts.plan_mode = PlanMode::kFixed;
  auto fixed_run = Interpreter(*program, fixed_opts).Run(t);
  ASSERT_TRUE(fixed_run.ok()) << fixed_run.status().ToString();

  // Identical semantics either way...
  EXPECT_EQ(auto_run->accepted, fixed_run->accepted);
  EXPECT_EQ(auto_run->reason, fixed_run->reason);
  EXPECT_EQ(auto_run->stats.steps, fixed_run->stats.steps);

  // ...but only auto mode records picks (one per distinct selector).
  const RunStats& a = auto_run->stats;
  if (a.atp_calls > 0) {
    EXPECT_GT(a.planner_picks_reference + a.planner_picks_dense +
                  a.planner_picks_interval,
              0);
  }
  const RunStats& f = fixed_run->stats;
  EXPECT_EQ(f.planner_picks_reference, 0);
  EXPECT_EQ(f.planner_picks_dense, 0);
  EXPECT_EQ(f.planner_picks_interval, 0);

  // Calibration constants are honored per-run: an absurdly expensive
  // compiled path forces every pick to the reference strategy.
  PlannerCalibration avoid_compile;
  avoid_compile.dense_word_cost = 1e18;
  avoid_compile.interval_span_cost = 1e18;
  RunOptions ref_opts;
  ref_opts.planner_calibration = &avoid_compile;
  auto ref_run = Interpreter(*program, ref_opts).Run(t);
  ASSERT_TRUE(ref_run.ok());
  EXPECT_EQ(ref_run->stats.planner_picks_dense, 0);
  EXPECT_EQ(ref_run->stats.planner_picks_interval, 0);
  EXPECT_EQ(ref_run->stats.compiled_selector_evals, 0);
  EXPECT_EQ(ref_run->accepted, auto_run->accepted);
}

// --- The differential oracle: planned == every fixed strategy. ---------

/// Random FO tree formulas over {x, y} (same generator family as
/// tests/compiled_eval_test.cc, reproduced here so the two oracles can
/// evolve independently).
class SelectorGen {
 public:
  explicit SelectorGen(std::mt19937& rng) : rng_(rng) {}

  Formula Gen(int depth, std::vector<std::string> scope) {
    if (depth <= 0) return Atom(scope);
    switch (rng_() % 8) {
      case 0:
        return Atom(scope);
      case 1:
        return Formula::Not(Gen(depth - 1, scope));
      case 2:
        return Formula::And(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 3:
        return Formula::Or(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 4:
        return Formula::Implies(Gen(depth - 1, scope), Gen(depth - 1, scope));
      case 5: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Exists(v, Gen(depth - 1, scope));
      }
      case 6: {
        std::string v = FreshVar(scope);
        scope.push_back(v);
        return Formula::Forall(v, Gen(depth - 1, scope));
      }
      default:
        return Formula::Iff(Atom(scope), Gen(depth - 1, scope));
    }
  }

 private:
  const std::string& Var(const std::vector<std::string>& scope) {
    return scope[rng_() % scope.size()];
  }

  std::string FreshVar(const std::vector<std::string>& scope) {
    if (rng_() % 4 == 0) return Var(scope);
    return std::string("q") + std::to_string(rng_() % 3);
  }

  Formula Atom(const std::vector<std::string>& scope) {
    switch (rng_() % 10) {
      case 0:
        return Formula::Edge(Var(scope), Var(scope));
      case 1:
        return Formula::Sibling(Var(scope), Var(scope));
      case 2:
        return Formula::Descendant(Var(scope), Var(scope));
      case 3:
        return Formula::Succ(Var(scope), Var(scope));
      case 4:
        return Formula::VarEq(Var(scope), Var(scope));
      case 5:
        return Formula::Label(Var(scope), rng_() % 2 ? "a" : "b");
      case 6:
        return Formula::Root(Var(scope));
      case 7:
        return Formula::Leaf(Var(scope));
      case 8:
        return Formula::First(Var(scope));
      default:
        return Formula::Last(Var(scope));
    }
  }

  std::mt19937& rng_;
};

/// Evaluates `formula` from `origin` the way the interpreter would
/// execute `plan`: reference directly, compiled via the planned repr
/// with the runtime decline->reference fallback.
std::vector<NodeId> ExecutePlan(const Tree& tree, const AxisIndex& index,
                                const Formula& formula,
                                const SelectorPlan& plan, NodeId origin) {
  if (plan.strategy == PlanStrategy::kCompiledDense ||
      plan.strategy == PlanStrategy::kCompiledInterval) {
    auto compiled = CompileSelector(index, formula, "x", "y", plan.repr);
    if (compiled.ok()) return compiled->SelectFrom(origin);
  }
  auto reference = SelectNodes(tree, formula, origin);
  EXPECT_TRUE(reference.ok()) << formula.ToString();
  return reference.ok() ? *reference : std::vector<NodeId>{};
}

TEST(PlannerDifferentialOracle, PlannedMatchesEveryFixedStrategy) {
  std::mt19937 rng(20260809);
  SelectorGen gen(rng);
  RandomTreeOptions options;

  int instances = 0;
  int reference_picks = 0;
  int compiled_picks = 0;
  while (instances < 520) {
    options.num_nodes = 1 + static_cast<int>(rng() % 18);
    Tree tree = RandomTree(rng, options);
    TreeStats stats = ComputeTreeStats(tree);
    AxisIndex index(tree);
    Formula formula = gen.Gen(1 + static_cast<int>(rng() % 3), {"x", "y"});
    ++instances;

    SelectorPlan plan = PlanSelector(stats, formula);
    if (plan.strategy == PlanStrategy::kReference) {
      ++reference_picks;
    } else {
      ++compiled_picks;
    }

    auto dense = CompileSelector(index, formula, "x", "y", AxisRepr::kDense);
    auto interval =
        CompileSelector(index, formula, "x", "y", AxisRepr::kInterval);
    ASSERT_EQ(dense.ok(), interval.ok()) << formula.ToString();

    for (NodeId origin = 0; origin < static_cast<NodeId>(tree.size());
         ++origin) {
      auto reference = SelectNodes(tree, formula, origin);
      ASSERT_TRUE(reference.ok()) << formula.ToString();
      ASSERT_EQ(ExecutePlan(tree, index, formula, plan, origin), *reference)
          << "planned " << PlanStrategyName(plan.strategy) << " for "
          << formula.ToString() << " on " << PrintTerm(tree) << " at origin "
          << origin;
      if (dense.ok()) {
        ASSERT_EQ(dense->SelectFrom(origin), *reference) << formula.ToString();
        ASSERT_EQ(interval->SelectFrom(origin), *reference)
            << formula.ToString();
      }
    }
  }
  // The oracle only proves something if the planner actually exercises
  // both sides of the decision on this distribution.
  EXPECT_GE(instances, 500);
  EXPECT_GT(reference_picks, 0);
  EXPECT_GT(compiled_picks, 0);
}

}  // namespace
}  // namespace treewalk
