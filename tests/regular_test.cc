#include <gtest/gtest.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/regular/library.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"

namespace treewalk {
namespace {

Tree T(const char* term) {
  auto t = ParseTerm(term);
  EXPECT_TRUE(t.ok()) << term;
  return *t;
}

// --- NFA / HRegex. ------------------------------------------------------

bool Matches(const HRegex& r, const std::vector<int>& word) {
  Nfa nfa(r);
  std::vector<std::vector<int>> sets;
  for (int w : word) sets.push_back({w});
  return nfa.AcceptsSomeWord(sets);
}

TEST(Nfa, Epsilon) {
  HRegex r = HRegex::Epsilon();
  EXPECT_TRUE(Matches(r, {}));
  EXPECT_FALSE(Matches(r, {0}));
}

TEST(Nfa, SymConcatAltStar) {
  HRegex r = HRegex::Concat(HRegex::Sym(0), HRegex::Sym(1));
  EXPECT_TRUE(Matches(r, {0, 1}));
  EXPECT_FALSE(Matches(r, {0}));
  EXPECT_FALSE(Matches(r, {1, 0}));

  HRegex alt = HRegex::Alt(HRegex::Sym(0), HRegex::Sym(1));
  EXPECT_TRUE(Matches(alt, {0}));
  EXPECT_TRUE(Matches(alt, {1}));
  EXPECT_FALSE(Matches(alt, {}));

  HRegex star = HRegex::Star(HRegex::Sym(0));
  EXPECT_TRUE(Matches(star, {}));
  EXPECT_TRUE(Matches(star, {0, 0, 0}));
  EXPECT_FALSE(Matches(star, {0, 1}));
}

TEST(Nfa, SeqAndAnyOf) {
  HRegex r = HRegex::Seq({HRegex::Sym(0), HRegex::Sym(1), HRegex::Sym(0)});
  EXPECT_TRUE(Matches(r, {0, 1, 0}));
  EXPECT_FALSE(Matches(r, {0, 1}));
  EXPECT_TRUE(Matches(HRegex::Seq({}), {}));

  HRegex any = HRegex::AnyOf({0, 2});
  EXPECT_TRUE(Matches(any, {}));
  EXPECT_TRUE(Matches(any, {0, 2, 0}));
  EXPECT_FALSE(Matches(any, {1}));
}

TEST(Nfa, AcceptsSomeWordWithSets) {
  // (0 1): child 1 can be {0,1}, child 2 must offer 1.
  HRegex r = HRegex::Concat(HRegex::Sym(0), HRegex::Sym(1));
  Nfa nfa(r);
  EXPECT_TRUE(nfa.AcceptsSomeWord({{0, 1}, {1}}));
  EXPECT_FALSE(nfa.AcceptsSomeWord({{1}, {1}}));
  EXPECT_FALSE(nfa.AcceptsSomeWord({{0}, {}}));
}

// --- Hedge automata vs walking programs (Proposition 7.2). --------------

TEST(HedgeAutomaton, ParityOnExamples) {
  HedgeAutomaton a = ParityHedge("b");
  EXPECT_TRUE(*a.Accepts(T("a")));
  EXPECT_FALSE(*a.Accepts(T("b")));
  EXPECT_TRUE(*a.Accepts(T("b(b)")));
  EXPECT_FALSE(*a.Accepts(T("a(b, c(b), b)")));
}

TEST(HedgeAutomaton, StatesAtExposesTheRun) {
  HedgeAutomaton a = ParityHedge("b");
  Tree t = T("a(b, b)");
  auto root_states = a.StatesAt(t, 0);
  ASSERT_TRUE(root_states.ok());
  EXPECT_EQ(*root_states, (std::vector<int>{0}));  // two b's: even
  auto leaf_states = a.StatesAt(t, 1);
  ASSERT_TRUE(leaf_states.ok());
  EXPECT_EQ(*leaf_states, (std::vector<int>{1}));  // one b: odd
}

TEST(HedgeAutomaton, HasLabelOnExamples) {
  HedgeAutomaton a = HasLabelHedge("needle");
  EXPECT_TRUE(*a.Accepts(T("needle")));
  EXPECT_TRUE(*a.Accepts(T("a(b, c(needle))")));
  EXPECT_FALSE(*a.Accepts(T("a(b, c)")));
}

TEST(HedgeAutomaton, AllLeavesLabelOnExamples) {
  HedgeAutomaton a = AllLeavesLabelHedge("x");
  EXPECT_TRUE(*a.Accepts(T("x")));
  EXPECT_TRUE(*a.Accepts(T("a(x, b(x, x))")));
  EXPECT_FALSE(*a.Accepts(T("a(x, b(x, y))")));
  EXPECT_FALSE(*a.Accepts(T("y")));
  // Internal labels are unconstrained, including the checked label.
  EXPECT_TRUE(*a.Accepts(T("x(x)")));
  EXPECT_FALSE(*a.Accepts(T("x(y)")));
}

TEST(HedgeAutomaton, EmptyTreeIsAnError) {
  HedgeAutomaton a = ParityHedge("b");
  EXPECT_FALSE(a.Accepts(Tree()).ok());
}

/// Proposition 7.2's A-empty regime, exhaustively: on every attribute-
/// free tree with up to 5 nodes over {a, b}, each tree-walking program
/// agrees with its hedge-automaton partner.
class Prop72Test : public ::testing::TestWithParam<int> {};

TEST_P(Prop72Test, WalkingEqualsRegularExhaustively) {
  int n = GetParam();
  std::vector<Tree> trees = EnumerateTrees(n, {"a", "b"});
  ASSERT_FALSE(trees.empty());

  auto parity_p = ParityProgram("b");
  auto has_p = HasLabelProgram("b");
  auto leaves_p = AllLeavesLabelProgram("b");
  ASSERT_TRUE(parity_p.ok() && has_p.ok() && leaves_p.ok());
  HedgeAutomaton parity_h = ParityHedge("b");
  HedgeAutomaton has_h = HasLabelHedge("b");
  HedgeAutomaton leaves_h = AllLeavesLabelHedge("b");

  for (const Tree& t : trees) {
    auto check = [&](const Program& p, const HedgeAutomaton& h,
                     const char* what) {
      auto walking = Accepts(p, t);
      auto regular = h.Accepts(t);
      ASSERT_TRUE(walking.ok()) << what << ": " << walking.status();
      ASSERT_TRUE(regular.ok()) << what << ": " << regular.status();
      EXPECT_EQ(*walking, *regular) << what << " on " << PrintTerm(t);
    };
    check(*parity_p, parity_h, "parity");
    check(*has_p, has_h, "has-label");
    check(*leaves_p, leaves_h, "all-leaves");
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, Prop72Test, ::testing::Range(1, 6));

TEST(Prop72, RandomLargerTrees) {
  std::mt19937 rng(19);
  RandomTreeOptions options;
  options.num_nodes = 30;
  options.labels = {"a", "b"};
  options.attributes = {};
  auto parity_p = ParityProgram("b");
  ASSERT_TRUE(parity_p.ok());
  HedgeAutomaton parity_h = ParityHedge("b");
  for (int trial = 0; trial < 15; ++trial) {
    Tree t = RandomTree(rng, options);
    auto walking = Accepts(*parity_p, t);
    auto regular = parity_h.Accepts(t);
    ASSERT_TRUE(walking.ok() && regular.ok());
    EXPECT_EQ(*walking, *regular) << "trial " << trial;
  }
}


// --- Boolean closure (union / intersection). ----------------------------

bool CountParityEven(const Tree& t, const char* label) {
  Symbol s = t.FindLabel(label);
  int count = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    if (s >= 0 && t.label(u) == s) ++count;
  }
  return count % 2 == 0;
}

bool ContainsLabel(const Tree& t, const char* label) {
  return t.FindLabel(label) >= 0;
}

TEST(HedgeAutomaton, IntersectionMatchesConjunctionOracle) {
  HedgeAutomaton even_b = ParityHedge("b");
  HedgeAutomaton has_b = HasLabelHedge("b");
  HedgeAutomaton both = HedgeAutomaton::Intersect(even_b, has_b);
  for (int n = 1; n <= 4; ++n) {
    for (const Tree& t : EnumerateTrees(n, {"a", "b"})) {
      bool expected = CountParityEven(t, "b") && ContainsLabel(t, "b");
      auto r = both.Accepts(t);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r, expected) << PrintTerm(t);
    }
  }
}

TEST(HedgeAutomaton, UnionMatchesDisjunctionOracle) {
  HedgeAutomaton all_b_leaves = AllLeavesLabelHedge("b");
  HedgeAutomaton has_a = HasLabelHedge("a");
  HedgeAutomaton either = HedgeAutomaton::Union(all_b_leaves, has_a);
  for (int n = 1; n <= 4; ++n) {
    for (const Tree& t : EnumerateTrees(n, {"a", "b"})) {
      bool all_b = true;
      for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
        if (t.IsLeaf(u) && t.LabelName(t.label(u)) != "b") all_b = false;
      }
      bool expected = all_b || ContainsLabel(t, "a");
      auto r = either.Accepts(t);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(*r, expected) << PrintTerm(t);
    }
  }
}

TEST(HedgeAutomaton, NestedBooleanCombinations) {
  // (even #b AND some b) OR (all leaves b), on random trees.
  HedgeAutomaton combo = HedgeAutomaton::Union(
      HedgeAutomaton::Intersect(ParityHedge("b"), HasLabelHedge("b")),
      AllLeavesLabelHedge("b"));
  std::mt19937 rng(61);
  RandomTreeOptions options;
  options.num_nodes = 12;
  options.labels = {"a", "b"};
  options.attributes = {};
  for (int trial = 0; trial < 30; ++trial) {
    Tree t = RandomTree(rng, options);
    bool all_b = true;
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      if (t.IsLeaf(u) && t.LabelName(t.label(u)) != "b") all_b = false;
    }
    bool expected = (CountParityEven(t, "b") && ContainsLabel(t, "b")) ||
                    all_b;
    auto r = combo.Accepts(t);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(*r, expected) << "trial " << trial;
  }
}

TEST(EnumerateTrees, CountsMatchCatalanTimesLabelings) {
  // #trees(n) = Catalan(n-1) * 2^n for two labels.
  EXPECT_EQ(EnumerateTrees(1, {"a", "b"}).size(), 2u);       // 1 * 2
  EXPECT_EQ(EnumerateTrees(2, {"a", "b"}).size(), 4u);       // 1 * 4
  EXPECT_EQ(EnumerateTrees(3, {"a", "b"}).size(), 16u);      // 2 * 8
  EXPECT_EQ(EnumerateTrees(4, {"a", "b"}).size(), 80u);      // 5 * 16
  EXPECT_EQ(EnumerateTrees(5, {"a", "b"}).size(), 448u);     // 14 * 32
  EXPECT_EQ(EnumerateTrees(3, {"a"}).size(), 2u);            // shapes only
}

TEST(EnumerateTrees, AllDistinct) {
  std::vector<Tree> trees = EnumerateTrees(4, {"a", "b"});
  std::set<std::string> terms;
  for (const Tree& t : trees) {
    EXPECT_TRUE(terms.insert(PrintTerm(t)).second) << PrintTerm(t);
    EXPECT_EQ(t.size(), 4u);
  }
}

}  // namespace
}  // namespace treewalk
