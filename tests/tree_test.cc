#include <gtest/gtest.h>

#include "src/tree/term_io.h"
#include "src/tree/tree.h"

namespace treewalk {
namespace {

Tree SampleTree() {
  // a(b, c(d, e), f)
  TreeBuilder b;
  auto a = b.AddRoot("a");
  b.AddChild(a, "b");
  auto c = b.AddChild(a, "c");
  b.AddChild(c, "d");
  b.AddChild(c, "e");
  b.AddChild(a, "f");
  return b.Build();
}

TEST(Tree, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.root(), kNoNode);
}

TEST(Tree, DocumentOrderLayout) {
  Tree t = SampleTree();
  ASSERT_EQ(t.size(), 6u);
  // Pre-order: a b c d e f -> ids 0..5.
  EXPECT_EQ(t.LabelName(t.label(0)), "a");
  EXPECT_EQ(t.LabelName(t.label(1)), "b");
  EXPECT_EQ(t.LabelName(t.label(2)), "c");
  EXPECT_EQ(t.LabelName(t.label(3)), "d");
  EXPECT_EQ(t.LabelName(t.label(4)), "e");
  EXPECT_EQ(t.LabelName(t.label(5)), "f");
}

TEST(Tree, Navigation) {
  Tree t = SampleTree();
  EXPECT_EQ(t.Parent(0), kNoNode);
  EXPECT_EQ(t.FirstChild(0), 1);
  EXPECT_EQ(t.LastChild(0), 5);
  EXPECT_EQ(t.NextSibling(1), 2);
  EXPECT_EQ(t.NextSibling(2), 5);
  EXPECT_EQ(t.PrevSibling(5), 2);
  EXPECT_EQ(t.Parent(3), 2);
  EXPECT_EQ(t.NextSibling(3), 4);
  EXPECT_EQ(t.ChildCount(0), 3);
  EXPECT_EQ(t.ChildCount(2), 2);
  EXPECT_EQ(t.ChildIndex(5), 2);
}

TEST(Tree, PositionPredicates) {
  Tree t = SampleTree();
  EXPECT_TRUE(t.IsRoot(0));
  EXPECT_FALSE(t.IsRoot(1));
  EXPECT_TRUE(t.IsLeaf(1));
  EXPECT_FALSE(t.IsLeaf(2));
  EXPECT_TRUE(t.IsFirstChild(1));
  EXPECT_FALSE(t.IsFirstChild(2));
  EXPECT_TRUE(t.IsLastChild(5));
  EXPECT_FALSE(t.IsLastChild(1));
}

TEST(Tree, StrictAncestor) {
  Tree t = SampleTree();
  EXPECT_TRUE(t.IsStrictAncestor(0, 3));
  EXPECT_TRUE(t.IsStrictAncestor(2, 4));
  EXPECT_FALSE(t.IsStrictAncestor(3, 3));
  EXPECT_FALSE(t.IsStrictAncestor(3, 2));
  EXPECT_FALSE(t.IsStrictAncestor(1, 2));  // siblings
  EXPECT_FALSE(t.IsStrictAncestor(2, 5));
}

TEST(Tree, Depth) {
  Tree t = SampleTree();
  EXPECT_EQ(t.Depth(0), 0);
  EXPECT_EQ(t.Depth(1), 1);
  EXPECT_EQ(t.Depth(3), 2);
}

TEST(Tree, AttributesAreTotalAndDefaultZero) {
  Tree t = SampleTree();
  AttrId a = t.AddAttribute("x");
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    EXPECT_EQ(t.attr(a, u), 0);
  }
  t.set_attr(a, 3, 42);
  EXPECT_EQ(t.attr(a, 3), 42);
  // Re-adding returns the same column.
  EXPECT_EQ(t.AddAttribute("x"), a);
  EXPECT_EQ(t.attr(a, 3), 42);
}

TEST(Tree, BuilderAttributes) {
  TreeBuilder b;
  auto r = b.AddRoot("doc");
  auto c = b.AddChild(r, "item");
  b.SetAttr(c, "id", 7);
  b.SetAttrString(c, "name", "widget");
  Tree t = b.Build();
  AttrId id = t.FindAttribute("id");
  AttrId name = t.FindAttribute("name");
  ASSERT_NE(id, kNoAttr);
  ASSERT_NE(name, kNoAttr);
  EXPECT_EQ(t.attr(id, 1), 7);
  EXPECT_TRUE(ValueInterner::IsString(t.attr(name, 1)));
  EXPECT_EQ(t.values().Render(t.attr(name, 1)), "widget");
}

TEST(Tree, BuilderRefMapping) {
  TreeBuilder b;
  auto r = b.AddRoot("a");
  auto x = b.AddChild(r, "x");
  auto y = b.AddChild(r, "y");
  // Add a grandchild under x *after* y exists: doc order must still be
  // a, x, gx, y.
  auto gx = b.AddChild(x, "gx");
  std::vector<NodeId> map;
  Tree t = b.Build(&map);
  EXPECT_EQ(map[static_cast<std::size_t>(r)], 0);
  EXPECT_EQ(map[static_cast<std::size_t>(x)], 1);
  EXPECT_EQ(map[static_cast<std::size_t>(gx)], 2);
  EXPECT_EQ(map[static_cast<std::size_t>(y)], 3);
  EXPECT_EQ(t.LabelName(t.label(2)), "gx");
}

TEST(Tree, FindLabelAndAttribute) {
  Tree t = SampleTree();
  EXPECT_GE(t.FindLabel("a"), 0);
  EXPECT_EQ(t.FindLabel("zzz"), -1);
  EXPECT_EQ(t.FindAttribute("none"), kNoAttr);
}

TEST(Tree, ActiveDomain) {
  TreeBuilder b;
  auto r = b.AddRoot("a");
  b.SetAttr(r, "p", 5);
  auto c = b.AddChild(r, "b");
  b.SetAttr(c, "p", 5);
  b.SetAttr(c, "q", 9);
  Tree t = b.Build();
  std::vector<DataValue> dom = t.ActiveDomain();
  // Unset values default to 0 and are part of the active domain.
  EXPECT_EQ(dom, (std::vector<DataValue>{0, 5, 9}));
}

TEST(Tree, AssignUniqueIds) {
  Tree t = SampleTree();
  AttrId id = AssignUniqueIds(t);
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    EXPECT_EQ(t.attr(id, u), u);
  }
}

TEST(Tree, SubtreeEnd) {
  Tree t = SampleTree();
  EXPECT_EQ(t.SubtreeEnd(0), 6);
  EXPECT_EQ(t.SubtreeEnd(1), 2);
  EXPECT_EQ(t.SubtreeEnd(2), 5);
  EXPECT_EQ(t.SubtreeEnd(5), 6);
}

TEST(Tree, SingleNode) {
  TreeBuilder b;
  b.AddRoot("only");
  Tree t = b.Build();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.IsLeaf(0));
  EXPECT_TRUE(t.IsRoot(0));
  EXPECT_TRUE(t.IsFirstChild(0));
  EXPECT_TRUE(t.IsLastChild(0));
}

}  // namespace
}  // namespace treewalk
