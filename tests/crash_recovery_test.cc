// Crash consistency end to end: a child process is SIGKILLed mid-batch
// and the journal it leaves behind — additionally truncated at every
// byte offset — always yields a resume that completes the remaining
// jobs exactly once.  Graceful shutdown is exercised the same way:
// SIGTERM drains and exits with GracefulShutdown::kExitInterrupted, a
// second signal aborts immediately with 128+signo.
//
// The children are fork()ed from the test binary itself (no exec), so
// the scenarios run against in-process BatchEngine + BatchJournal state
// exactly as tools/twq.cc wires them.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/automata/library.h"
#include "src/common/journal.h"
#include "src/engine/batch_journal.h"
#include "src/engine/engine.h"
#include "src/engine/shutdown.h"
#include "src/tree/generate.h"

namespace treewalk {
namespace {

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("treewalk_crash_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);

    fast_ = std::move(HasLabelProgram("a")).value();
    counter_ = std::move(ExponentialCounterProgram()).value();
    small_ = FullTree(2, 3);
    chain_ = FullTree(1, 29);
    AssignUniqueIds(chain_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A sub-millisecond job with stable id `id`.
  BatchJob FastJob(std::uint64_t id) const {
    BatchJob job;
    job.program = &fast_;
    job.tree = &small_;
    job.job_id = id;
    return job;
  }

  /// A job that never finishes on its own (exponential counter, cycle
  /// detection off, effectively unbounded steps) — it pins a worker
  /// until the process is killed or the batch is cancelled.
  BatchJob InfiniteJob(std::uint64_t id) const {
    BatchJob job;
    job.program = &counter_;
    job.tree = &chain_;
    job.options.max_steps = std::int64_t{1} << 60;
    job.options.detect_cycles = false;
    job.job_id = id;
    return job;
  }

  /// The same job made terminal for resume runs: a small step cap makes
  /// it fail kResourceExhausted deterministically in a few milliseconds
  /// (max_attempts stays 1, so the failure is a terminal finish).  Keep
  /// the cap low — the every-offset loop reruns this job hundreds of
  /// times, and the counter's cost grows super-linearly in the cap.
  BatchJob BoundedCounterJob(std::uint64_t id) const {
    BatchJob job = InfiniteJob(id);
    job.options.max_steps = 1 << 7;
    return job;
  }

  /// Polls `journal_path` until it holds at least `want` terminal
  /// kJobFinished records (torn tails tolerated).  Returns false on
  /// timeout.
  static bool WaitForFinishes(const std::string& journal_path, int want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      Result<JournalContents> contents = ReadJournal(journal_path);
      if (contents.ok()) {
        int finishes = 0;
        for (const std::string& payload : contents->records) {
          Result<BatchRecord> record = DecodeBatchRecord(payload);
          if (record.ok() && record->type == BatchRecord::Type::kJobFinished &&
              record->code != StatusCode::kCancelled) {
            ++finishes;
          }
        }
        if (finishes >= want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return false;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  static void Spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Runs the jobs in `by_id` that `plan` does not mark completed,
  /// journaling into `journal_path`, and returns the rerun ids.
  /// `flush` fsyncs at the end; the every-offset loop skips it (an
  /// fsync per truncation point dominates the test's wall clock, and
  /// the exactly-once assertions only read the page cache).
  std::vector<std::uint64_t> ResumeRun(
      const std::string& journal_path, const ResumePlan& plan,
      const std::map<std::uint64_t, BatchJob>& by_id, bool flush = true) {
    std::vector<std::uint64_t> rerun_ids;
    std::vector<BatchJob> remaining;
    for (const auto& [id, job] : by_id) {
      if (plan.completed.count(id) != 0) continue;
      rerun_ids.push_back(id);
      remaining.push_back(job);
    }
    if (!remaining.empty()) {
      Result<BatchJournal> journal = BatchJournal::Open(journal_path);
      EXPECT_TRUE(journal.ok()) << journal.status();
      BatchEngine engine({.num_threads = 2});
      Result<BatchResult> run = engine.RunBatch(remaining, &*journal);
      EXPECT_TRUE(run.ok()) << run.status();
      if (flush) EXPECT_TRUE(journal->Flush().ok());
      EXPECT_TRUE(journal->first_error().ok());
    }
    return rerun_ids;
  }

  /// The exactly-once postcondition: after a resume, every job id is
  /// completed, nothing is left in flight, and no id has two terminal
  /// finish records.
  void ExpectExactlyOnce(const std::string& journal_path,
                         const std::map<std::uint64_t, BatchJob>& by_id,
                         const std::string& context) {
    Result<ResumePlan> plan = LoadResumePlan(journal_path);
    ASSERT_TRUE(plan.ok()) << context << ": " << plan.status();
    EXPECT_TRUE(plan->duplicate_finishes.empty())
        << context << ": job " << (plan->duplicate_finishes.empty()
                                       ? 0
                                       : plan->duplicate_finishes[0])
        << " finished twice";
    EXPECT_EQ(plan->completed.size(), by_id.size()) << context;
    for (const auto& [id, job] : by_id) {
      EXPECT_EQ(plan->completed.count(id), 1u) << context << ": job " << id;
    }
    EXPECT_TRUE(plan->in_flight.empty()) << context;
  }

  std::filesystem::path dir_;
  Program fast_;
  Program counter_;
  Tree small_;
  Tree chain_;
};

/// SIGKILL mid-batch, then truncate the surviving journal at EVERY byte
/// offset; for each cut, repair + resume must complete all jobs with no
/// duplicate terminal finish.
TEST_F(CrashRecoveryTest, SigkillMidBatchThenResumeIsExactlyOnce) {
  const std::string journal_path = Path("journal");

  // Ids 1..5: four fast jobs and one that never finishes (it guarantees
  // the child is still mid-batch when the parent kills it).
  std::map<std::uint64_t, BatchJob> resume_jobs;
  for (std::uint64_t id = 1; id <= 4; ++id) {
    resume_jobs.emplace(id, FastJob(id));
  }
  resume_jobs.emplace(5, BoundedCounterJob(5));

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: 2 workers — one drains the fast jobs (finish records hit
    // the journal), the other is pinned by the infinite job.
    std::vector<BatchJob> jobs = {InfiniteJob(5), FastJob(1), FastJob(2),
                                  FastJob(3), FastJob(4)};
    Result<BatchJournal> journal = BatchJournal::Open(journal_path);
    if (!journal.ok()) _exit(101);
    BatchEngine engine({.num_threads = 2});
    (void)engine.RunBatch(jobs, &*journal);
    _exit(102);  // unreachable while job 5 spins
  }

  ASSERT_TRUE(WaitForFinishes(journal_path, 4))
      << "child never journaled the fast finishes";
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The journal survives the SIGKILL (page cache, no fsync required)
  // with the four fast finishes intact.
  std::string full = Slurp(journal_path);
  ASSERT_GT(full.size(), kJournalHeaderBytes);
  Result<ResumePlan> killed_plan = LoadResumePlan(journal_path);
  ASSERT_TRUE(killed_plan.ok()) << killed_plan.status();
  EXPECT_EQ(killed_plan->completed.size(), 4u);
  EXPECT_EQ(killed_plan->in_flight.count(5), 1u);

  // Every truncation point: repair, resume, assert exactly-once.
  for (std::size_t cut = kJournalHeaderBytes; cut <= full.size(); ++cut) {
    const std::string trial = Path("trial");
    Spit(trial, full.substr(0, cut));
    // Reopening for append repairs the torn tail in place.
    {
      Result<JournalWriter> repair = JournalWriter::Open(trial);
      ASSERT_TRUE(repair.ok()) << "cut=" << cut << ": " << repair.status();
    }
    Result<ResumePlan> plan = LoadResumePlan(trial);
    ASSERT_TRUE(plan.ok()) << "cut=" << cut << ": " << plan.status();
    ASSERT_TRUE(plan->duplicate_finishes.empty()) << "cut=" << cut;
    std::vector<std::uint64_t> rerun =
        ResumeRun(trial, *plan, resume_jobs, /*flush=*/false);
    // Whatever the cut dropped must be rerun: completed ∪ rerun = all.
    EXPECT_EQ(plan->completed.size() + rerun.size(), resume_jobs.size())
        << "cut=" << cut;
    ExpectExactlyOnce(trial, resume_jobs, "cut=" + std::to_string(cut));
    std::filesystem::remove(trial);
  }
}

/// First SIGTERM: the drain protocol of tools/twq.cc — monitor thread
/// converts the latched signal into cooperative cancellation, the batch
/// returns, the journal is flushed, and the process exits with
/// kExitInterrupted.  The journal then resumes exactly-once.
TEST_F(CrashRecoveryTest, SigtermDrainsFlushesAndExitsInterrupted) {
  const std::string journal_path = Path("journal");

  std::map<std::uint64_t, BatchJob> resume_jobs;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    resume_jobs.emplace(id, FastJob(id));
  }
  resume_jobs.emplace(4, BoundedCounterJob(4));

  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    GracefulShutdown::Install();
    std::vector<BatchJob> jobs = {InfiniteJob(4), FastJob(1), FastJob(2),
                                  FastJob(3)};
    Result<BatchJournal> journal = BatchJournal::Open(journal_path);
    if (!journal.ok()) _exit(101);
    BatchEngine engine({.num_threads = 2});
    std::atomic<bool> batch_done{false};
    std::thread monitor([&]() {
      while (!batch_done.load(std::memory_order_relaxed)) {
        if (GracefulShutdown::requested()) {
          engine.RequestCancel();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
    Result<BatchResult> run = engine.RunBatch(jobs, &*journal);
    batch_done.store(true, std::memory_order_relaxed);
    monitor.join();
    if (!run.ok()) _exit(103);
    if (!journal->Flush().ok()) _exit(104);
    if (!journal->first_error().ok()) _exit(105);
    _exit(GracefulShutdown::requested() ? GracefulShutdown::kExitInterrupted
                                        : 0);
  }

  ASSERT_TRUE(WaitForFinishes(journal_path, 3))
      << "child never journaled the fast finishes";
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(wstatus), GracefulShutdown::kExitInterrupted);

  // The drained journal: fast jobs completed; the infinite job is
  // either in flight (cancelled finish / bare start) or unrecorded.
  Result<ResumePlan> drained = LoadResumePlan(journal_path);
  ASSERT_TRUE(drained.ok()) << drained.status();
  EXPECT_FALSE(drained->torn) << "graceful exit must not tear the journal";
  EXPECT_TRUE(drained->duplicate_finishes.empty());
  EXPECT_EQ(drained->completed.size(), 3u);
  EXPECT_EQ(drained->completed.count(4), 0u);

  ResumeRun(journal_path, *drained, resume_jobs);
  ExpectExactlyOnce(journal_path, resume_jobs, "post-drain resume");
}

/// A second signal must not wait for the drain: the handler _exits with
/// 128+signo immediately, even when the process never polls the latch.
TEST_F(CrashRecoveryTest, SecondSigtermAbortsImmediately) {
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    GracefulShutdown::Install();
    // A wedged drain: the latch is never polled, so only the
    // second-signal escape hatch can end this process.
    while (true) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(child, SIGTERM), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 128 + SIGTERM);
}

/// In-process drain/resume (no fork): cancellation mid-batch journals
/// cancelled finishes, and the follow-up run completes everything
/// exactly once — the same invariant the fork tests check from outside.
TEST_F(CrashRecoveryTest, InProcessCancelThenResumeIsExactlyOnce) {
  const std::string journal_path = Path("journal");
  std::map<std::uint64_t, BatchJob> resume_jobs;
  for (std::uint64_t id = 1; id <= 6; ++id) {
    resume_jobs.emplace(id, FastJob(id));
  }
  resume_jobs.emplace(7, BoundedCounterJob(7));

  {
    std::vector<BatchJob> jobs = {InfiniteJob(7)};
    for (std::uint64_t id = 1; id <= 6; ++id) jobs.push_back(FastJob(id));
    Result<BatchJournal> journal = BatchJournal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    BatchEngine engine({.num_threads = 2});
    std::thread canceller([&]() {
      WaitForFinishes(journal_path, 2);
      engine.RequestCancel();
    });
    Result<BatchResult> run = engine.RunBatch(jobs, &*journal);
    canceller.join();
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_TRUE(journal->Flush().ok());
    ASSERT_TRUE(journal->first_error().ok());
    // The infinite job was cancelled mid-run.
    EXPECT_EQ(run->results[0].status.code(), StatusCode::kCancelled);
  }

  Result<ResumePlan> plan = LoadResumePlan(journal_path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->duplicate_finishes.empty());
  EXPECT_LT(plan->completed.size(), resume_jobs.size());

  ResumeRun(journal_path, *plan, resume_jobs);
  ExpectExactlyOnce(journal_path, resume_jobs, "in-process resume");
}

}  // namespace
}  // namespace treewalk
