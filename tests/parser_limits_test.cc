// Deep-nesting hardening for every recursive-descent reader: 100k-deep
// adversarial inputs must come back as kInvalidArgument — quickly, and
// without touching the process stack limit.  Companion inputs just
// below each documented cap must still parse.

#include <gtest/gtest.h>

#include <string>

#include "src/automata/text_format.h"
#include "src/logic/parser.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"

namespace treewalk {
namespace {

std::string Repeat(const std::string& unit, int times) {
  std::string out;
  out.reserve(unit.size() * static_cast<std::size_t>(times));
  for (int i = 0; i < times; ++i) out += unit;
  return out;
}

constexpr int kDeep = 100'000;

TEST(ParserLimits, FormulaParenNestingIsCapped) {
  std::string deep = Repeat("(", kDeep) + "true" + Repeat(")", kDeep);
  auto parsed = ParseFormula(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos)
      << parsed.status();
}

TEST(ParserLimits, FormulaNegationNestingIsCapped) {
  auto parsed = ParseFormula(Repeat("!", kDeep) + "true");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserLimits, FormulaQuantifierNestingIsCapped) {
  auto parsed = ParseFormula(Repeat("exists x ", kDeep) + "root(x)");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserLimits, FormulaRightNestedImplicationIsCapped) {
  auto parsed = ParseFormula(Repeat("true -> ", kDeep) + "false");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserLimits, FormulaBelowTheCapStillParses) {
  int depth = kMaxFormulaNestingDepth - 10;
  EXPECT_TRUE(
      ParseFormula(Repeat("(", depth) + "true" + Repeat(")", depth)).ok());
  EXPECT_TRUE(ParseFormula(Repeat("!", depth) + "true").ok());
}

TEST(ParserLimits, TermNestingIsCapped) {
  std::string deep = Repeat("a(", kDeep) + "a" + Repeat(")", kDeep);
  auto parsed = ParseTerm(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(ParserLimits, TermBelowTheCapStillParses) {
  int depth = kMaxTermNestingDepth - 10;
  std::string chain = Repeat("a(", depth) + "a" + Repeat(")", depth);
  auto parsed = ParseTerm(chain);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), static_cast<std::size_t>(depth + 1));
}

TEST(ParserLimits, XmlNestingIsCapped) {
  std::string deep =
      Repeat("<a>", kDeep) + "<a/>" + Repeat("</a>", kDeep);
  auto parsed = ParseXml(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find("depth"), std::string::npos);
}

TEST(ParserLimits, XmlBelowTheCapStillParses) {
  int depth = kMaxXmlNestingDepth - 10;
  std::string chain = Repeat("<a>", depth) + "<a/>" + Repeat("</a>", depth);
  auto parsed = ParseXml(chain);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), static_cast<std::size_t>(depth + 1));
}

/// The program text format is line-based (no recursion of its own), but
/// its guards and selectors go through the formula parser and inherit
/// its cap.
TEST(ParserLimits, ProgramGuardNestingIsCapped) {
  std::string guard = Repeat("(", kDeep) + "true" + Repeat(")", kDeep);
  std::string text = "class tw\nstates fwd qf\nrule * fwd [" + guard +
                     "] move stay qf\n";
  auto parsed = ParseProgramText(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace treewalk
