#include <gtest/gtest.h>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace treewalk {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad token");
}

TEST(Status, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Nondeterminism("x").code(), StatusCode::kNondeterminism);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(InvalidArgument("a"), InvalidArgument("a"));
  EXPECT_FALSE(InvalidArgument("a") == InvalidArgument("b"));
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnIfError(int x) {
  TREEWALK_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TREEWALK_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, ValueAndStatus) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  Result<int> e = Half(3);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnChains) {
  ASSERT_TRUE(Quarter(12).ok());
  EXPECT_EQ(Quarter(12).value(), 3);
  EXPECT_FALSE(Quarter(10).ok());  // 5 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Interner, AssignsDenseHandles) {
  Interner interner;
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.Intern("b"), 1);
  EXPECT_EQ(interner.Intern("a"), 0);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.NameOf(1), "b");
}

TEST(Interner, FindWithoutInsert) {
  Interner interner;
  interner.Intern("x");
  EXPECT_EQ(interner.Find("x"), 0);
  EXPECT_EQ(interner.Find("y"), -1);
  EXPECT_TRUE(interner.Contains(0));
  EXPECT_FALSE(interner.Contains(1));
  EXPECT_FALSE(interner.Contains(-1));
}

TEST(ValueInterner, StringsLandInReservedRange) {
  ValueInterner values;
  DataValue v = values.ValueFor("hello");
  EXPECT_TRUE(ValueInterner::IsString(v));
  EXPECT_FALSE(ValueInterner::IsString(42));
  EXPECT_FALSE(ValueInterner::IsString(-42));
  EXPECT_EQ(values.ValueFor("hello"), v);
  EXPECT_NE(values.ValueFor("world"), v);
}

TEST(ValueInterner, RenderCoversAllValueKinds) {
  ValueInterner values;
  DataValue v = values.ValueFor("abc");
  EXPECT_EQ(values.Render(v), "abc");
  EXPECT_EQ(values.Render(7), "7");
  EXPECT_EQ(values.Render(-7), "-7");
  EXPECT_EQ(values.Render(kBottom), "_|_");
}

TEST(Status, DeadlineExceededCodeRoundTrips) {
  Status s = DeadlineExceeded("too slow");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_NE(s.ToString().find("DEADLINE_EXCEEDED"), std::string::npos);
}

/// TREEWALK_CHECK aborts in every build mode; the message carries the
/// failed result's status so the crash names the original error.
TEST(ResultDeathTest, ValueOnErrorAbortsWithCarriedStatus) {
  Result<int> errored = InvalidArgument("bad input 123");
  EXPECT_DEATH_IF_SUPPORTED((void)errored.value(), "bad input 123");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH_IF_SUPPORTED((void)Result<int>(Status::Ok()),
                            "OK status");
}

}  // namespace
}  // namespace treewalk
