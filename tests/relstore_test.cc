#include <gtest/gtest.h>

#include "src/logic/parser.h"
#include "src/relstore/store_eval.h"

namespace treewalk {
namespace {

Formula F(const char* src) {
  auto r = ParseFormula(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status();
  return *r;
}

TEST(Relation, ConstructionDeduplicatesAndSorts) {
  Relation r(2, {{3, 1}, {1, 2}, {3, 1}, {0, 0}});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.tuples()[0], (Tuple{0, 0}));
  EXPECT_EQ(r.tuples()[2], (Tuple{3, 1}));
}

TEST(Relation, ContainsAndInsert) {
  Relation r(1);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({5}));
  EXPECT_FALSE(r.Insert({5}));
  EXPECT_TRUE(r.Insert({2}));
  EXPECT_TRUE(r.Contains({5}));
  EXPECT_FALSE(r.Contains({7}));
  EXPECT_EQ(r.tuples()[0], (Tuple{2}));
}

TEST(Relation, UnionWith) {
  Relation a(1, {{1}, {3}});
  Relation b(1, {{2}, {3}});
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains({2}));
}

TEST(Relation, ValuesAndSingleton) {
  Relation r(2, {{1, 9}, {9, 4}});
  EXPECT_EQ(r.Values(), (std::vector<DataValue>{1, 4, 9}));
  Relation s = Relation::Singleton(7);
  EXPECT_EQ(s.arity(), 1);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains({7}));
}

TEST(Relation, NullaryAsBoolean) {
  Relation f(0);
  EXPECT_TRUE(f.empty());
  Relation t(0, {{}});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains({}));
}

TEST(Relation, ToString) {
  Relation r(2, {{1, 2}});
  EXPECT_EQ(r.ToString(), "{(1, 2)}");
  EXPECT_EQ(Relation(1).ToString(), "{}");
}

TEST(Store, CreateAndLookup) {
  auto s = Store::Create({{"X1", 1}, {"X2", 2}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_relations(), 2u);
  EXPECT_EQ(s->IndexOf("X2"), 1);
  EXPECT_EQ(s->IndexOf("nope"), -1);
  EXPECT_EQ(s->ArityOf("X2"), 2);
  EXPECT_EQ(s->ArityOf("nope"), -1);
  EXPECT_NE(s->Find("X1"), nullptr);
  EXPECT_EQ(s->Find("zz"), nullptr);
}

TEST(Store, CreateRejectsDuplicatesAndNegativeArity) {
  EXPECT_FALSE(Store::Create({{"X", 1}, {"X", 2}}).ok());
  EXPECT_FALSE(Store::Create({{"X", -1}}).ok());
}

TEST(Store, ReplaceChecksArity) {
  auto s = Store::Create({{"X", 1}});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Replace(0, Relation(1, {{4}})).ok());
  EXPECT_TRUE(s->At(0).Contains({4}));
  EXPECT_FALSE(s->Replace(0, Relation(2)).ok());
  EXPECT_FALSE(s->Replace(5, Relation(1)).ok());
}

TEST(Store, ActiveDomainAndTotals) {
  auto s = Store::Create({{"X", 1}, {"Y", 2}});
  ASSERT_TRUE(s.ok());
  s->Find("X")->Insert({3});
  s->Find("Y")->Insert({1, 3});
  s->Find("Y")->Insert({5, 1});
  EXPECT_EQ(s->ActiveDomain(), (std::vector<DataValue>{1, 3, 5}));
  EXPECT_EQ(s->TotalTuples(), 3u);
}

TEST(Store, ComparableForMemoization) {
  auto a = Store::Create({{"X", 1}});
  auto b = Store::Create({{"X", 1}});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  b->Find("X")->Insert({1});
  EXPECT_NE(*a, *b);
}

class StoreEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = Store::Create({{"X", 1}, {"R", 2}});
    ASSERT_TRUE(s.ok());
    store_ = std::move(s).value();
    store_.Find("X")->Insert({1});
    store_.Find("X")->Insert({2});
    store_.Find("R")->Insert({1, 2});
    store_.Find("R")->Insert({2, 3});
    context_.store = &store_;
    context_.current_attrs = {{"a", 7}};
    context_.values = &values_;
  }

  Store store_;
  ValueInterner values_;
  StoreContext context_;
};

TEST_F(StoreEvalTest, ActiveDomainGathersEverything) {
  // Store: {1,2,3}; current attr: 7; constant: 9.
  auto d = ActiveDomain(context_, F("exists x (X(x) & x = 9)"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, (std::vector<DataValue>{1, 2, 3, 7, 9}));
}

TEST_F(StoreEvalTest, SentenceEvaluation) {
  auto t = EvalStoreSentence(context_, F("exists x X(x)"));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(*t);
  auto f = EvalStoreSentence(context_, F("forall x X(x)"));
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(*f);  // 3, 7 are in the domain but not in X
  auto attr = EvalStoreSentence(context_, F("exists x x = attr(a)"));
  ASSERT_TRUE(attr.ok());
  EXPECT_TRUE(*attr);
}

TEST_F(StoreEvalTest, Example32Guard) {
  // xi: forall x forall y (X(x) & X(y) -> x = y): X is not a singleton.
  Formula xi = F("forall x forall y (X(x) & X(y) -> x = y)");
  auto r = EvalStoreSentence(context_, xi);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  store_.Replace(0, Relation(1, {{5}}));
  auto r2 = EvalStoreSentence(context_, xi);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  // The empty relation vacuously passes (matching the paper's xi, which
  // only rejects two *distinct* elements).
  store_.Replace(0, Relation(1));
  auto r3 = EvalStoreSentence(context_, xi);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(*r3);
}

TEST_F(StoreEvalTest, FormulaDefinesRelation) {
  // Successor pairs within R joined on middle: {x,z | exists y R(x,y) & R(y,z)}
  auto r = EvalStoreFormula(context_, F("exists y (R(x, y) & R(y, z))"),
                            {"x", "z"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->tuples(), (std::vector<Tuple>{{1, 3}}));
}

TEST_F(StoreEvalTest, TupleOrderFollowsVarsList) {
  auto r = EvalStoreFormula(context_, F("R(x, y)"), {"y", "x"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples(), (std::vector<Tuple>{{2, 1}, {3, 2}}));
}

TEST_F(StoreEvalTest, CurrentAttrInUpdate) {
  // The Example 3.2 leaf rule: define {attr(a)}.
  auto r = EvalStoreFormula(context_, F("x = attr(a)"), {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->tuples(), (std::vector<Tuple>{{7}}));
}

TEST_F(StoreEvalTest, ExtraUnconstrainedVariables) {
  auto r = EvalStoreFormula(context_, F("X(x)"), {"x", "free"});
  ASSERT_TRUE(r.ok());
  // 2 values in X times 4 active-domain values ({1,2,3} from the store
  // plus the current attribute 7; the formula has no constants).
  EXPECT_EQ(r->size(), 8u);
}

TEST_F(StoreEvalTest, NullaryFormula) {
  auto t = EvalStoreFormula(context_, F("exists x X(x)"), {});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->arity(), 0);
  EXPECT_EQ(t->size(), 1u);
  auto f = EvalStoreFormula(context_, F("false"), {});
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->empty());
}

TEST_F(StoreEvalTest, StringConstants) {
  store_.Find("X")->Insert({values_.ValueFor("hello")});
  auto r = EvalStoreSentence(context_, F("exists x (X(x) & x = \"hello\")"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  auto r2 = EvalStoreSentence(context_, F("exists x (X(x) & x = \"bye\")"));
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(*r2);
}

TEST_F(StoreEvalTest, Errors) {
  // Unknown relation.
  EXPECT_FALSE(EvalStoreSentence(context_, F("Z(1)")).ok());
  // Arity mismatch.
  EXPECT_FALSE(EvalStoreSentence(context_, F("X(1, 2)")).ok());
  // Tree atom.
  EXPECT_FALSE(EvalStoreSentence(context_, F("exists x leaf(x)")).ok());
  // Free variable in a sentence.
  EXPECT_FALSE(EvalStoreSentence(context_, F("X(x)")).ok());
  // Free variable missing from tuple list.
  EXPECT_FALSE(EvalStoreFormula(context_, F("R(x, y)"), {"x"}).ok());
  // Duplicate tuple variable.
  EXPECT_FALSE(EvalStoreFormula(context_, F("R(x, y)"), {"x", "x"}).ok());
  // Unknown current attribute.
  EXPECT_FALSE(EvalStoreSentence(context_, F("exists x x = attr(zz)")).ok());
  // Missing interner.
  StoreContext no_interner;
  no_interner.store = &store_;
  EXPECT_FALSE(EvalStoreSentence(no_interner, F("exists x x = \"s\"")).ok());
}

TEST(StoreEval, EmptyDomainFormulaIsEmpty) {
  auto s = Store::Create({{"X", 1}});
  ASSERT_TRUE(s.ok());
  StoreContext context;
  context.store = &*s;
  auto r = EvalStoreFormula(context, F("x = x"), {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  // A universally quantified sentence over the empty domain holds.
  auto t = EvalStoreSentence(context, F("forall x X(x)"));
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(*t);
}

}  // namespace
}  // namespace treewalk
