// Live-reload, probe, and quarantine suite for `twq serve`
// (docs/SERVER.md): the in-process half of the crash-only story.
//
//   - SwapCorpus is atomic: queries before the swap answer from the old
//     generation, queries after it from the new one, and both answers
//     match what a fresh single-shot evaluation of the same
//     (program, tree) pair produces — no half-swapped state is ever
//     observable.
//   - In-flight queries pin their generation: a query running across a
//     swap completes correctly against the corpus it started on, and
//     the old generation's memory is released exactly when the last
//     pin drops (observed through a weak_ptr).
//   - kHealth is liveness, kReady is readiness: they diverge during a
//     drain, and an empty corpus is alive but never ready.
//   - The poison-request quarantine trips after N consecutive governor
//     failures, shods with a typed kQuarantined without burning a
//     worker, resets on success, and is cleared by a corpus swap.
//
// Runs under ASan (asan-focus) and TSan (threaded) in CI.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "src/common/metrics.h"
#include "src/engine/input_cache.h"
#include "src/server/frame.h"
#include "src/server/server.h"
#include "src/tree/generate.h"
#include "src/tree/term_io.h"
#include "tests/serve_test_util.h"

namespace treewalk {
namespace {

using serve_test::Connect;
using serve_test::Exchange;
using serve_test::kAcceptAllProgram;
using serve_test::kScanProgram;
using serve_test::QueryFrame;

class ServeReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (kMetricsEnabled) MetricsRegistry::Global().ResetForTest();
  }
};

/// Corpus generation holding one tree under the fixed name "t".
std::shared_ptr<ResidentTreeCache> OneTreeCorpus(const std::string& term,
                                                 std::uint64_t generation) {
  auto corpus = std::make_shared<ResidentTreeCache>(0, generation);
  auto entry = corpus->GetOrLoad("t", [&] { return ParseTerm(term); });
  EXPECT_TRUE(entry.ok()) << entry.status().ToString();
  return corpus;
}

/// Sends one query and decodes the result; fails the test on anything
/// that is not a served verdict.
bool QueryVerdict(int port, const std::string& tree,
                  const std::string& program, std::uint32_t deadline_ms = 0) {
  int fd = Connect(port);
  EXPECT_GE(fd, 0);
  MessageType type;
  std::string body;
  EXPECT_TRUE(Exchange(fd, QueryFrame(tree, program, deadline_ms), type,
                       body));
  close(fd);
  EXPECT_EQ(type, MessageType::kQueryResult)
      << "got " << MessageTypeName(type);
  Result<QueryResultMsg> result = DecodeQueryResult(body);
  EXPECT_TRUE(result.ok());
  return result.ok() && result->accepted;
}

/// Sends one query expecting a typed error; returns its code.
WireError QueryError(int port, const std::string& tree,
                     const std::string& program,
                     std::uint32_t deadline_ms = 0) {
  int fd = Connect(port);
  EXPECT_GE(fd, 0);
  MessageType type;
  std::string body;
  EXPECT_TRUE(Exchange(fd, QueryFrame(tree, program, deadline_ms), type,
                       body));
  close(fd);
  EXPECT_EQ(type, MessageType::kError) << "got " << MessageTypeName(type);
  Result<ErrorMsg> error = DecodeError(body);
  EXPECT_TRUE(error.ok());
  return error.ok() ? error->code : WireError::kInternal;
}

/// Probe exchange on an already-open connection.
bool ProbeOn(int fd, MessageType probe, MessageType expect_reply) {
  MessageType type;
  std::string body;
  EXPECT_TRUE(Exchange(fd, EncodeFrame(probe, ""), type, body));
  EXPECT_EQ(type, expect_reply) << "got " << MessageTypeName(type);
  Result<ProbeResultMsg> result = DecodeProbeResult(body);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() && result->ok;
}

TEST_F(ServeReloadTest, SwapIsAtomicAndMatchesSingleShotAnswers) {
  // Generation 0: no "needle" anywhere — the scan rejects.  Generation
  // 1: a needle child — the scan accepts.  The verdict flip is the
  // observable proof of which corpus answered.
  auto gen0 = OneTreeCorpus("a(b, c)", 0);
  QueryServer server(ServerOptions{}, gen0);
  gen0.reset();
  ASSERT_TRUE(server.Start().ok());

  EXPECT_TRUE(QueryVerdict(server.port(), "t", kAcceptAllProgram));
  EXPECT_FALSE(QueryVerdict(server.port(), "t", kScanProgram));
  EXPECT_EQ(server.corpus()->generation(), 0u);

  server.SwapCorpus(OneTreeCorpus("a(needle, c)", 1), 1.5);

  // Same wire requests, new generation: the scan now accepts, the
  // accept-all answer is unchanged — exactly the single-shot answers
  // for the new tree.  No query ever sees a half-swapped corpus: the
  // generation is one shared_ptr, swapped under a lock.
  EXPECT_TRUE(QueryVerdict(server.port(), "t", kAcceptAllProgram));
  EXPECT_TRUE(QueryVerdict(server.port(), "t", kScanProgram));
  EXPECT_EQ(server.corpus()->generation(), 1u);
  EXPECT_EQ(server.counters().reloads.load(), 1);

  StatsMap stats = server.BuildStats();
  EXPECT_EQ(stats.Value("corpus.generation"), 1);
  EXPECT_EQ(stats.Value("server.reloads"), 1);

  server.BeginDrain();
  server.AwaitTermination();
}

TEST_F(ServeReloadTest, InFlightQueryPinsOldGenerationUntilItAnswers) {
  // The old generation's "t" is big enough that a full scan takes real
  // time; the new generation's "t" contains a needle, so a scan
  // answered by the *new* corpus would ACCEPT.  The in-flight query
  // must REJECT: it pinned the old generation at dispatch.
  auto gen0 = std::make_shared<ResidentTreeCache>(0, 0);
  ASSERT_TRUE(gen0->GetOrLoad("t", []() -> Result<Tree> {
                    return Result<Tree>(FullTree(2, 16));
                  })
                  .ok());
  std::weak_ptr<ResidentTreeCache> old_generation = gen0;

  ServerOptions options;
  // Generous: under TSan the ~131k-node scan runs 10-20x slower than
  // release, and the deadline is not what this test is about.
  options.default_deadline_ms = 120000;
  options.drain_deadline_ms = 120000;
  QueryServer server(options, gen0);
  gen0.reset();
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> in_flight_accepted{false};
  std::atomic<bool> in_flight_done{false};
  std::thread slow([&] {
    in_flight_accepted.store(
        QueryVerdict(server.port(), "t", kScanProgram),
        std::memory_order_release);
    in_flight_done.store(true, std::memory_order_release);
  });

  // Swap while the scan runs.  (If the scan somehow finished first the
  // pin assertion below is vacuous but the release assertion still
  // holds; the tree is ~131k nodes, which comfortably outlives a swap.)
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.SwapCorpus(OneTreeCorpus("a(needle)", 1), 0.5);
  EXPECT_FALSE(old_generation.expired())
      << "old generation released while a query could still be pinned on it";

  slow.join();
  EXPECT_TRUE(in_flight_done.load());
  EXPECT_FALSE(in_flight_accepted.load())
      << "in-flight query answered from the new generation";

  // New queries see the new generation.
  EXPECT_TRUE(QueryVerdict(server.port(), "t", kScanProgram));

  // With the last pin dropped, the old generation — and its
  // accountant's books — must die.
  for (int i = 0; i < 500 && !old_generation.expired(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(old_generation.expired())
      << "old generation leaked after its last pin dropped";

  server.BeginDrain();
  server.AwaitTermination();
}

TEST_F(ServeReloadTest, HealthIsLivenessReadyIsReadiness) {
  auto corpus = OneTreeCorpus("a(b)", 0);
  ServerOptions options;
  options.drain_deadline_ms = 200;
  QueryServer server(options, corpus);
  corpus.reset();
  ASSERT_TRUE(server.Start().ok());

  // Held connection from before the drain — the only kind that can
  // observe the draining state, since new accepts are refused then.
  int fd = Connect(server.port());
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(ProbeOn(fd, MessageType::kHealth, MessageType::kHealthResult));
  EXPECT_TRUE(ProbeOn(fd, MessageType::kReady, MessageType::kReadyResult));
  EXPECT_TRUE(server.ready());

  server.BeginDrain();
  // Liveness and readiness diverge: the process still answers its
  // protocol (health ok) but must not be routed new work (ready false).
  EXPECT_TRUE(ProbeOn(fd, MessageType::kHealth, MessageType::kHealthResult));
  EXPECT_FALSE(ProbeOn(fd, MessageType::kReady, MessageType::kReadyResult));
  EXPECT_FALSE(server.ready());
  close(fd);

  server.AwaitTermination();
  EXPECT_GE(server.counters().health_probes.load(), 2);
  EXPECT_GE(server.counters().ready_probes.load(), 2);
}

TEST_F(ServeReloadTest, EmptyCorpusIsAliveButNeverReady) {
  auto empty = std::make_shared<ResidentTreeCache>(0, 0);
  QueryServer server(ServerOptions{}, empty);
  empty.reset();
  ASSERT_TRUE(server.Start().ok());

  int fd = Connect(server.port());
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(ProbeOn(fd, MessageType::kHealth, MessageType::kHealthResult));
  EXPECT_FALSE(ProbeOn(fd, MessageType::kReady, MessageType::kReadyResult));
  close(fd);

  server.BeginDrain();
  server.AwaitTermination();
}

TEST_F(ServeReloadTest, QuarantineTripsResetsAndClearsOnSwap) {
  // A scan over a 2^10-node tree with a 1 ms budget trips the deadline
  // governor deterministically; the same pair with no budget succeeds.
  auto corpus = std::make_shared<ResidentTreeCache>(0, 0);
  ASSERT_TRUE(corpus->GetOrLoad("big", []() -> Result<Tree> {
                    return Result<Tree>(FullTree(2, 14));
                  })
                  .ok());
  ServerOptions options;
  options.max_consecutive_failures = 2;
  // The no-budget runs below must *succeed* even under TSan slowdown;
  // the tripping runs pass their 1 ms deadline explicitly.
  options.default_deadline_ms = 120000;
  QueryServer server(options, corpus);
  corpus.reset();
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Two consecutive governor trips arm the quarantine...
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kDeadlineExceeded);
  // ...and the third submission is shed typed, without running.
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kQuarantined);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kQuarantined);
  EXPECT_EQ(server.counters().quarantined.load(), 2);

  // The key is the (program, tree) pair — the deadline is not part of
  // it, so a resubmission with a workable budget is also quarantined.
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 0),
            WireError::kQuarantined);

  // A different pair is unaffected.
  EXPECT_TRUE(QueryVerdict(port, "big", kAcceptAllProgram));

  // A swap clears the table: the new corpus deserves a fresh verdict.
  auto next = std::make_shared<ResidentTreeCache>(0, 1);
  ASSERT_TRUE(next->GetOrLoad("big", []() -> Result<Tree> {
                    return Result<Tree>(FullTree(2, 14));
                  })
                  .ok());
  server.SwapCorpus(std::move(next), 0.1);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kDeadlineExceeded);

  // One success for the pair resets its streak: after success, the
  // next governor trip starts the count from one again.  (The key
  // excludes the deadline, so the full-budget run — a served REJECT —
  // is a success *for the same pair* that was about to trip.)
  QueryVerdict(port, "big", kScanProgram, 0);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kDeadlineExceeded);
  EXPECT_EQ(QueryError(port, "big", kScanProgram, 1),
            WireError::kQuarantined);

  server.BeginDrain();
  server.AwaitTermination();
}

TEST_F(ServeReloadTest, QuarantineDisabledByDefault) {
  auto corpus = std::make_shared<ResidentTreeCache>(0, 0);
  ASSERT_TRUE(corpus->GetOrLoad("big", []() -> Result<Tree> {
                    return Result<Tree>(FullTree(2, 14));
                  })
                  .ok());
  QueryServer server(ServerOptions{}, corpus);
  corpus.reset();
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(QueryError(server.port(), "big", kScanProgram, 1),
              WireError::kDeadlineExceeded)
        << "attempt " << i;
  }
  EXPECT_EQ(server.counters().quarantined.load(), 0);
  server.BeginDrain();
  server.AwaitTermination();
}

}  // namespace
}  // namespace treewalk
