// Quickstart: build an attributed tree, define the paper's Example 3.2
// tree-walking program through the builder API, and run it.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/automata/builder.h"
#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/term_io.h"

namespace tw = treewalk;

int main() {
  // An attributed tree in the compact term syntax: delta nodes demand
  // that all their leaf descendants agree on attribute "a".
  auto good = tw::ParseTerm(
      "delta[a=1](sigma[a=7], delta[a=2](sigma[a=7]), sigma[a=7])");
  auto bad = tw::ParseTerm(
      "delta[a=1](sigma[a=7], delta[a=2](sigma[a=8]), sigma[a=7])");
  if (!good.ok() || !bad.ok()) {
    std::printf("parse error: %s\n", good.status().ToString().c_str());
    return 1;
  }

  // The library ships Example 3.2 ready-made...
  auto program = tw::Example32Program();
  if (!program.ok()) {
    std::printf("program error: %s\n", program.status().ToString().c_str());
    return 1;
  }
  std::printf("Example 3.2 program: class %s, %zu rules, size measure %zu\n",
              tw::ProgramClassName(program->program_class()),
              program->rules().size(), program->SizeMeasure());

  // ...and the interpreter realizes Definition 3.1 (with a trace).
  tw::RunOptions options;
  options.record_trace = true;
  options.max_trace_entries = 8;
  tw::Interpreter interpreter(*program, options);

  for (const auto& [name, tree] : {std::pair{"uniform", &*good},
                                   std::pair{"poisoned", &*bad}}) {
    auto run = interpreter.Run(*tree);
    if (!run.ok()) {
      std::printf("run error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("\n%s tree %s: %s (%lld steps, %lld subcomputations)\n",
                name, tw::PrintTerm(*tree).c_str(),
                run->accepted ? "ACCEPTED" : "REJECTED",
                static_cast<long long>(run->stats.steps),
                static_cast<long long>(run->stats.subcomputations));
    std::printf("first transitions:\n");
    for (const std::string& line : run->trace) {
      std::printf("  %s\n", line.c_str());
    }
  }
  return 0;
}
