// The Theorem 7.1 constructions side by side:
//   (1) a log-space xTM run directly and through the two-pebble
//       simulation (pebble ranks encode the tape);
//   (2) a linear-bounded string TM run directly and compiled into a
//       tw^r program whose relational store carries the tape;
//   (3) a tw^l program evaluated directly and through the polynomial
//       configuration graph.
//
//   ./build/examples/complexity_lab

#include <cstdio>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/simulation/config_graph.h"
#include "src/simulation/logspace_sim.h"
#include "src/simulation/pspace_compile.h"
#include "src/simulation/string_tm.h"
#include "src/tree/generate.h"
#include "src/xtm/library.h"
#include "src/xtm/run.h"

namespace tw = treewalk;

int main() {
  // ---- (1) LOGSPACE^X: Theorem 7.1(1). -------------------------------
  std::printf("[1] LOGSPACE: binary counter xTM, direct vs pebbles\n");
  tw::Xtm counter = tw::XtmCountMod4("x");
  for (int n : {16, 32, 64}) {
    tw::TreeBuilder b;
    auto node = b.AddRoot("a");
    for (int i = 1; i < n; ++i) {
      node = b.AddChild(node, i % 4 == 0 ? "x" : "a");
    }
    tw::Tree input = b.Build();
    auto direct = tw::RunXtm(counter, input);
    auto pebbled = tw::RunLogspaceSimulation(counter, input,
                                             tw::XtmOptions{10'000'000, 0});
    if (!direct.ok() || !pebbled.ok()) {
      std::printf("  error: %s\n", pebbled.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "  n=%3d: direct %s (space %zu cells) | pebbles %s "
        "(%lld walk moves)\n",
        n, direct->accepted ? "accept" : "reject", direct->space,
        pebbled->accepted ? "accept" : "reject",
        static_cast<long long>(pebbled->walk_steps));
  }

  // ---- (2) PSPACE^X: Theorem 7.1(3). ----------------------------------
  std::printf("\n[2] PSPACE: palindrome TM, direct vs compiled tw^r\n");
  tw::StringTm palindrome = tw::PalindromeTm();
  auto compiled = tw::CompileStringTmToTwR(palindrome);
  if (!compiled.ok()) {
    std::printf("  compile error: %s\n",
                compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("  compiled program: %zu rules, %zu registers\n",
              compiled->rules().size(),
              compiled->initial_store().num_relations());
  for (std::vector<int> bits :
       {std::vector<int>{1, 0, 1}, std::vector<int>{1, 0, 0}}) {
    std::vector<int> wrapped = {3};
    wrapped.insert(wrapped.end(), bits.begin(), bits.end());
    wrapped.push_back(4);
    auto direct = tw::RunStringTm(palindrome, wrapped);
    tw::RunOptions options;
    options.max_steps = 10'000'000;
    tw::Interpreter interp(*compiled, options);
    auto run = interp.Run(tw::StringTmInputTree(wrapped));
    if (!direct.ok() || !run.ok()) {
      std::printf("  error: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("  input");
    for (int v : bits) std::printf(" %d", v);
    std::printf(": TM %s (%lld steps) | tw^r %s (%lld steps, "
                "store <= %zu tuples)\n",
                direct->accepted ? "accept" : "reject",
                static_cast<long long>(direct->steps),
                run->accepted ? "accept" : "reject",
                static_cast<long long>(run->stats.steps),
                run->stats.max_store_tuples);
  }

  // ---- (3) PTIME^X: Theorem 7.1(2). -----------------------------------
  std::printf("\n[3] PTIME: tw^l program, direct vs configuration graph\n");
  auto program = tw::RootValueAtSomeLeafProgram();
  if (!program.ok()) return 1;
  std::mt19937 rng(7);
  for (int n : {10, 20, 40}) {
    tw::RandomTreeOptions options;
    options.num_nodes = n;
    options.value_range = 3;
    tw::Tree t = tw::RandomTree(rng, options);
    auto direct = tw::Accepts(*program, t);
    auto graph = tw::EvaluateViaConfigGraph(*program, t);
    if (!direct.ok() || !graph.ok()) return 1;
    std::printf("  n=%3d: direct %s | graph %s with %zu configurations\n",
                n, *direct ? "accept" : "reject",
                graph->accepted ? "accept" : "reject", graph->configs);
  }
  return 0;
}
