// XPath on a tiny XML document: parse the document, evaluate queries
// with the direct evaluator, compile each query to its FO(exists*)
// abstraction (Section 2.3), and show both agree.
//
//   ./build/examples/xpath_queries

#include <cstdio>

#include "src/logic/tree_eval.h"
#include "src/tree/xml_io.h"
#include "src/xpath/xpath.h"

namespace tw = treewalk;

int main() {
  const char* kDocument = R"(<?xml version="1.0"?>
<catalog>
  <product id="1" kind="bolt" price="5">
    <part id="2" kind="thread"/>
    <part id="3" kind="head"/>
  </product>
  <product id="4" kind="nut" price="5"/>
  <discontinued>
    <product id="5" kind="bolt" price="9">
      <part id="6" kind="thread"/>
    </product>
  </discontinued>
</catalog>)";

  auto doc = tw::ParseXml(kDocument);
  if (!doc.ok()) {
    std::printf("xml error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("document has %zu elements\n\n", doc->size());

  const char* queries[] = {
      "product",
      "//product",
      "//product[part]",
      "//product[@kind = \"bolt\"]",
      "//product[@price = 5]",
      "discontinued//part",
      "product/part | discontinued/product",
  };
  tw::AttrId id = doc->FindAttribute("id");

  for (const char* query : queries) {
    auto xpath = tw::ParseXPath(query);
    if (!xpath.ok()) {
      std::printf("%-42s parse error: %s\n", query,
                  xpath.status().ToString().c_str());
      continue;
    }
    auto direct = tw::EvalXPath(*doc, *xpath, doc->root());
    auto formula = tw::CompileXPathToFo(*xpath);
    if (!direct.ok() || !formula.ok()) {
      std::printf("%-42s evaluation error\n", query);
      continue;
    }
    auto via_fo = tw::SelectNodes(*doc, *formula, doc->root());

    std::printf("%-42s ->", query);
    for (tw::NodeId u : *direct) {
      std::printf(" %s#%lld", doc->LabelName(doc->label(u)).c_str(),
                  static_cast<long long>(id >= 0 ? doc->attr(id, u) : u));
    }
    bool agree = via_fo.ok() && *via_fo == *direct;
    std::printf("   [FO(exists*) %s]\n", agree ? "agrees" : "DISAGREES");
    std::printf("    phi(x, y) = %s\n", formula->ToString().c_str());
  }
  return 0;
}
