// Attribute-integrity validation with tree-walking programs: the paper's
// motivating XSLT scenario.  Generates product-catalog documents and
// checks two integrity constraints with library programs:
//   (1) Example 3.2: under every "delta" (here: every <bundle>), all
//       leaf items quote the same currency code;
//   (2) every <item> carries the catalog's version value.
//
//   ./build/examples/integrity_check

#include <cstdio>
#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/tree.h"
#include "src/tree/xml_io.h"

namespace tw = treewalk;

namespace {

/// Builds a catalog: bundles ("delta") of items ("sigma"); `consistent`
/// controls whether some bundle mixes currencies.
tw::Tree MakeCatalog(std::mt19937& rng, int bundles, bool consistent) {
  tw::TreeBuilder b;
  auto root = b.AddRoot("sigma");  // catalog node
  b.SetAttr(root, "currency", 1);
  std::uniform_int_distribution<tw::DataValue> currency(1, 3);
  std::uniform_int_distribution<int> items(2, 4);
  for (int i = 0; i < bundles; ++i) {
    auto bundle = b.AddChild(root, "delta");
    tw::DataValue c = currency(rng);
    b.SetAttr(bundle, "currency", c);
    int n = items(rng);
    for (int j = 0; j < n; ++j) {
      auto item = b.AddChild(bundle, "sigma");
      bool poison = !consistent && i == 0 && j == n - 1;
      b.SetAttr(item, "currency", poison ? c + 100 : c);
    }
  }
  return b.Build();
}

}  // namespace

int main() {
  std::mt19937 rng(2026);

  auto currency_check = tw::Example32Program("currency");
  auto version_check = tw::AllLabelValuesEqualRootProgram("item", "version");
  if (!currency_check.ok() || !version_check.ok()) {
    std::printf("program build failed\n");
    return 1;
  }

  std::printf("constraint 1: every bundle quotes one currency "
              "(Example 3.2, tw^{r,l})\n");
  for (bool consistent : {true, false}) {
    tw::Tree catalog = MakeCatalog(rng, 4, consistent);
    auto verdict = tw::Accepts(*currency_check, catalog);
    if (!verdict.ok()) {
      std::printf("  run error: %s\n", verdict.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s catalog (%zu nodes): %s\n",
                consistent ? "consistent" : "mixed-currency", catalog.size(),
                *verdict ? "VALID" : "VIOLATION");
  }

  std::printf("\nconstraint 2: every <item> version equals the catalog's "
              "(tw^r)\n");
  for (bool consistent : {true, false}) {
    tw::TreeBuilder b;
    auto root = b.AddRoot("catalog");
    b.SetAttr(root, "version", 3);
    for (int i = 0; i < 5; ++i) {
      auto item = b.AddChild(root, "item");
      b.SetAttr(item, "version", consistent || i != 2 ? 3 : 2);
    }
    tw::Tree catalog = b.Build();
    auto verdict = tw::Accepts(*version_check, catalog);
    if (!verdict.ok()) {
      std::printf("  run error: %s\n", verdict.status().ToString().c_str());
      return 1;
    }
    auto xml = tw::WriteXml(catalog, /*indent=*/false);
    std::printf("  %s: %s\n", xml.ok() ? xml->c_str() : "<doc>",
                *verdict ? "VALID" : "VIOLATION");
  }
  return 0;
}
