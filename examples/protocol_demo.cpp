// The Lemma 4.5 communication protocol, live: run a tw^r set-equality
// program on split strings f#g through the two-party protocol and print
// the dialogue; then run the Lemma 4.6 dialogue census over hypersets
// and exhibit the pigeonhole collision that dooms tw^{r,l} on L^2.
//
//   ./build/examples/protocol_demo

#include <cstdio>

#include "src/automata/library.h"
#include "src/hyperset/hyperset.h"
#include "src/protocol/protocol.h"

namespace tw = treewalk;

int main() {
  constexpr tw::DataValue kHash = -1;
  auto program = tw::SetEqualityProgram(kHash);
  if (!program.ok()) {
    std::printf("program error: %s\n", program.status().ToString().c_str());
    return 1;
  }

  std::printf("[dialogue] running {5,7} # {7,5} through the protocol\n");
  auto run = tw::RunSplitProtocol(*program, {5, 7}, {7, 5}, kHash);
  if (!run.ok()) {
    std::printf("protocol error: %s\n", run.status().ToString().c_str());
    return 1;
  }
  for (const tw::ProtocolMessage& m : run->transcript) {
    std::printf("  %s -> %s: %-18s %s\n", m.from == 0 ? "I " : "II",
                m.from == 0 ? "II" : "I ", tw::MessageKindName(m.kind),
                m.payload.substr(0, 60).c_str());
  }
  std::printf("  verdict: %s\n\n", run->accepted ? "accept" : "reject");

  std::printf("[census] diagonal dialogues f#f over all m-hypersets\n");
  tw::ProtocolOptions options;
  options.type_k = 1;
  for (int level : {1, 2}) {
    auto census =
        tw::RunDialogueCensus(*program, level, {5, 6}, kHash, options);
    if (!census.ok()) {
      std::printf("census error: %s\n", census.status().ToString().c_str());
      return 1;
    }
    std::printf("  m=%d: %zu hypersets, %zu distinct dialogues%s\n", level,
                census->num_hypersets, census->num_distinct_dialogues,
                census->collision_found ? "  <- pigeonhole collision!" : "");
    if (census->collision_found) {
      std::printf("       colliding: %s vs %s\n",
                  census->collision_a.c_str(), census->collision_b.c_str());
      std::printf("       => the program cannot tell these apart across "
                  "'#', so it cannot compute L^2 (Theorem 4.1's engine)\n");
    }
  }
  return 0;
}
