#!/bin/sh
# twq_supervise.sh — minimal crash-only supervisor for `twq serve`
# (docs/SERVER.md, "Supervision").
#
#   twq_supervise.sh <twq-binary> <serve-args...>
#
# Runs the daemon in a restart loop and interprets its exit codes the
# way the daemon documents them:
#
#   exit 75            clean drain (EX_TEMPFAIL: SIGTERM/SIGINT was
#                      delivered and honored) — the supervisor stops too
#   exit 0             also treated as deliberate: stop
#   anything else      a crash (SIGKILL shows up as 137 = 128+9); the
#                      daemon is restarted after a short pause, because
#                      crash-only software treats restart-from-snapshot
#                      as the one true recovery path
#
# Environment knobs (all optional):
#   TWQ_SUPERVISE_PIDFILE      write the current daemon pid here after
#                              each (re)start; the kill-loop harness
#                              reads it to aim its SIGKILLs
#   TWQ_SUPERVISE_MAX_RESTARTS stop after this many restarts (default
#                              unlimited) — CI smokes bound themselves
#   TWQ_SUPERVISE_BACKOFF_MS   pause between crash and restart
#                              (default 50)
#   TWQ_SUPERVISE_LOG          append per-incarnation exit lines here
#
# SIGTERM/SIGINT to the supervisor forwards to the daemon and then
# waits for its drain — killing the supervisor is as safe as killing
# the daemon, which is the whole point.

set -u

if [ "$#" -lt 2 ]; then
  echo "usage: twq_supervise.sh <twq-binary> <serve-args...>" >&2
  exit 64
fi

TWQ=$1
shift

PIDFILE=${TWQ_SUPERVISE_PIDFILE:-}
MAX_RESTARTS=${TWQ_SUPERVISE_MAX_RESTARTS:-0}
BACKOFF_MS=${TWQ_SUPERVISE_BACKOFF_MS:-50}
LOG=${TWQ_SUPERVISE_LOG:-}

child=0
stopping=0

forward() {
  stopping=1
  if [ "$child" -gt 0 ] 2>/dev/null; then
    kill -TERM "$child" 2>/dev/null
  fi
}
trap forward TERM INT

restarts=0
while :; do
  "$TWQ" "$@" &
  child=$!
  [ -n "$PIDFILE" ] && echo "$child" > "$PIDFILE"
  # `wait` returns early when a trapped signal arrives; loop until the
  # child is really gone so drains are never abandoned half-way.
  while :; do
    wait "$child"
    code=$?
    kill -0 "$child" 2>/dev/null || break
  done
  # The TERM/INT trap can interrupt `wait` in the same instant the
  # child is reaped: `wait` then returns 128+signo of the *trap*, the
  # kill -0 probe fails, and $code would misreport a clean 75/0 drain
  # as a crash.  Re-waiting an already-reaped child returns its
  # recorded exit status; if the loop above already consumed that
  # status the shell answers 127 and the code in hand is the real one.
  wait "$child" 2>/dev/null
  final=$?
  [ "$final" -ne 127 ] && code=$final
  [ -n "$LOG" ] && echo "incarnation $restarts exit $code" >> "$LOG"
  if [ "$code" -eq 75 ] || [ "$code" -eq 0 ] || [ "$stopping" -eq 1 ]; then
    [ -n "$PIDFILE" ] && rm -f "$PIDFILE"
    exit "$code"
  fi
  restarts=$((restarts + 1))
  if [ "$MAX_RESTARTS" -gt 0 ] && [ "$restarts" -gt "$MAX_RESTARTS" ]; then
    echo "twq_supervise: giving up after $MAX_RESTARTS restarts" >&2
    [ -n "$PIDFILE" ] && rm -f "$PIDFILE"
    exit 70
  fi
  echo "twq_supervise: daemon exited $code; restart #$restarts" >&2
  # sleep in ms without requiring GNU sleep's fractions everywhere
  if [ "$BACKOFF_MS" -gt 0 ]; then
    sleep "$(awk "BEGIN { printf \"%.3f\", $BACKOFF_MS / 1000 }")"
  fi
done
