#!/usr/bin/env bash
# End-to-end smoke test for `twq serve` (docs/SERVER.md), run by CI
# (tools/ci.sh) against the sanitizer build:
#
#   1. build a tiny corpus, start the daemon on an ephemeral port;
#   2. drive it with twq_loadgen for a few seconds and verify the
#      server's books reconcile (admitted == ok + error + drained);
#   3. SIGTERM the daemon and assert a graceful drain: the process must
#      print its drain summary and exit 75 (sysexits EX_TEMPFAIL, the
#      documented "drained cleanly, restartable" code).
#
# Usage: serve_smoke.sh <twq-binary> <loadgen-binary> [duration-ms]
set -u

TWQ="${1:?usage: serve_smoke.sh <twq> <twq_loadgen> [duration-ms]}"
LOADGEN="${2:?usage: serve_smoke.sh <twq> <twq_loadgen> [duration-ms]}"
DURATION_MS="${3:-3000}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# 1. Corpus: a couple of small trees.
mkdir -p "$WORK/corpus"
echo 'a[x=1](b(c, d), e[x=2])' > "$WORK/corpus/small.term"
python3 - "$WORK/corpus/wide.term" <<'EOF'
import sys
leaves = ", ".join(f"b[x={i}]" for i in range(200))
open(sys.argv[1], "w").write(f"a({leaves})")
EOF

"$TWQ" serve "$WORK/corpus" --port 0 --workers 2 --max-queue 8 \
    --deadline-ms 500 --drain-ms 2000 --quiet > "$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

# Wait for the listening line (the daemon prints it once ready).
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' "$WORK/serve.out")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died at startup: $(cat "$WORK/serve.err")"
  sleep 0.1
done
[ -n "$PORT" ] && [ "$PORT" != "0" ] || fail "server never reported its port"

# 2. Load + reconciliation check (loadgen exits nonzero on mismatch).
"$LOADGEN" --port "$PORT" --connections 8 --duration-ms "$DURATION_MS" \
    --tree small.term --stats --quiet || fail "loadgen/reconciliation failed"

# A SIGHUP must be survivable (reload is latched, not fatal).
kill -HUP "$SERVER_PID"
sleep 0.2
kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on SIGHUP"

# 3. Graceful drain on first SIGTERM.
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[ "$EXIT_CODE" -eq 75 ] || fail "expected drain exit 75, got $EXIT_CODE (stderr: $(tail -3 "$WORK/serve.err"))"
grep -q '^drained: admitted=' "$WORK/serve.out" || fail "no drain summary printed"

echo "serve_smoke: OK (port $PORT, $(grep '^drained:' "$WORK/serve.out"))"
