#!/usr/bin/env bash
# End-to-end smoke test for `twq serve` (docs/SERVER.md), run by CI
# (tools/ci.sh) against the sanitizer build:
#
#   1. build a tiny corpus, start the daemon on an ephemeral port;
#   2. drive it with twq_loadgen for a few seconds and verify the
#      server's books reconcile (admitted == ok + error + drained);
#   3. SIGHUP mid-life and assert a *live reload*: the reload counter
#      increments, the daemon stays ready, answers are unchanged, and a
#      tree added to the corpus directory is served by the new
#      generation;
#   4. SIGTERM the daemon while a slow query holds the drain open and
#      assert that liveness and readiness diverge: a health probe on a
#      connection held from before the drain still answers ok, a ready
#      probe on such a connection answers not-ready (exit 2), and the
#      process prints its drain summary and exits 75 (sysexits
#      EX_TEMPFAIL, the documented "drained cleanly, restartable"
#      code).
#
# Usage: serve_smoke.sh <twq-binary> <loadgen-binary> [duration-ms]
set -u

TWQ="${1:?usage: serve_smoke.sh <twq> <twq_loadgen> [duration-ms]}"
LOADGEN="${2:?usage: serve_smoke.sh <twq> <twq_loadgen> [duration-ms]}"
DURATION_MS="${3:-3000}"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -KILL "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

# 1. Corpus: a couple of small trees, plus one big enough that a full
# DFS takes a few hundred ms — the "slow query" that holds the drain
# open in step 4.
mkdir -p "$WORK/corpus"
echo 'a[x=1](b(c, d), e[x=2])' > "$WORK/corpus/small.term"
python3 - "$WORK/corpus/wide.term" <<'EOF'
import sys
leaves = ", ".join(f"b[x={i}]" for i in range(200))
open(sys.argv[1], "w").write(f"a({leaves})")
EOF
python3 - "$WORK/corpus/big.term" <<'EOF'
import sys
leaves = ", ".join(f"b[x={i}]" for i in range(400000))
open(sys.argv[1], "w").write(f"a({leaves})")
EOF
cat > "$WORK/accept.twp" <<'EOF'
class tw
states q0 qf
rule #top q0 [true] move stay qf
EOF
# Full DFS for an absent label: visits every delimited node, then
# rejects.  On big.term that is ~a second of genuine work.
cat > "$WORK/scan.twp" <<'EOF'
class tw
states fwd qf
rule needle fwd [true] move stay qf
rule #top fwd [true] move down fwd
rule #open fwd [true] move right fwd
rule * fwd [true] move down fwd
rule #leaf fwd [true] move up back
rule #close fwd [true] move up back
rule * back [true] move right fwd
EOF

"$TWQ" serve "$WORK/corpus" --port 0 --workers 2 --max-queue 8 \
    --deadline-ms 500 --drain-ms 5000 --quiet > "$WORK/serve.out" 2>"$WORK/serve.err" &
SERVER_PID=$!

# Wait for the listening line (the daemon prints it once ready).  The
# bound is generous because startup parses the 400k-node big.term,
# which takes ~25s under TSan; fast builds exit this loop in one pass.
PORT=""
for _ in $(seq 1 900); do
  PORT="$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' "$WORK/serve.out")"
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died at startup: $(cat "$WORK/serve.err")"
  sleep 0.1
done
[ -n "$PORT" ] && [ "$PORT" != "0" ] || fail "server never reported its port"

# 2. Load + reconciliation check (loadgen exits nonzero on mismatch).
"$LOADGEN" --port "$PORT" --connections 8 --duration-ms "$DURATION_MS" \
    --tree small.term --stats --quiet || fail "loadgen/reconciliation failed"

# 3. Live reload on SIGHUP: counter moves, readiness holds, answers are
# unchanged, and a tree added to the directory is served afterwards.
REMOTE="127.0.0.1:$PORT"
stat_value() {
  "$TWQ" probe stats --remote "$REMOTE" | awk -v k="$1" '$1 == k {print $2}'
}
ANSWER_BEFORE="$("$TWQ" query small.term "$WORK/accept.twp" --remote "$REMOTE")" \
    || fail "query before reload failed"
RELOADS_BEFORE="$(stat_value server.reloads)"
echo 'n(m[x=3])' > "$WORK/corpus/added.term"
kill -HUP "$SERVER_PID"
# The off-thread rebuild re-parses the whole corpus (big.term again),
# so the bound matches the startup wait above.
RELOADS_AFTER="$RELOADS_BEFORE"
for _ in $(seq 1 900); do
  RELOADS_AFTER="$(stat_value server.reloads)"
  [ -n "$RELOADS_AFTER" ] && [ "$RELOADS_AFTER" -gt "$RELOADS_BEFORE" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server died on SIGHUP"
  sleep 0.1
done
[ "$RELOADS_AFTER" -gt "$RELOADS_BEFORE" ] || fail "reload counter never moved after SIGHUP"
"$TWQ" probe ready --remote "$REMOTE" > /dev/null || fail "server not ready after reload"
ANSWER_AFTER="$("$TWQ" query small.term "$WORK/accept.twp" --remote "$REMOTE")" \
    || fail "query after reload failed"
[ "$ANSWER_BEFORE" = "$ANSWER_AFTER" ] || fail "reload changed an answer: '$ANSWER_BEFORE' vs '$ANSWER_AFTER'"
"$TWQ" query added.term "$WORK/accept.twp" --remote "$REMOTE" > /dev/null \
    || fail "tree added before reload is not served by the new generation"
GENERATION="$(stat_value corpus.generation)"
[ -n "$GENERATION" ] && [ "$GENERATION" -ge 1 ] || fail "corpus.generation did not advance (got '$GENERATION')"

# 4. Drain: liveness and readiness must diverge.  A slow scan holds the
# drain open (it runs ~0.7s before the governor's step/memory budget
# ends it — the interpreter's 1M-step cap bounds how long any one
# query can hold); both probes connect *before* SIGTERM (new
# connections are refused once draining) and fire mid-drain, well
# before the holder can finish.
"$TWQ" query big.term "$WORK/scan.twp" --remote "$REMOTE" --deadline-ms 4000 \
    > /dev/null 2>&1 &
HOLDER_PID=$!
sleep 0.1
"$TWQ" probe health --remote "$REMOTE" --hold-ms 300 > "$WORK/health.out" 2>&1 &
HEALTH_PID=$!
"$TWQ" probe ready --remote "$REMOTE" --hold-ms 300 > "$WORK/ready.out" 2>&1 &
READY_PID=$!
sleep 0.1
kill -TERM "$SERVER_PID"
HEALTH_EXIT=0; wait "$HEALTH_PID" || HEALTH_EXIT=$?
READY_EXIT=0; wait "$READY_PID" || READY_EXIT=$?
wait "$HOLDER_PID" 2>/dev/null
[ "$HEALTH_EXIT" -eq 0 ] || fail "health probe failed mid-drain (exit $HEALTH_EXIT: $(cat "$WORK/health.out"))"
grep -q 'health: ok' "$WORK/health.out" || fail "health probe did not answer ok mid-drain"
[ "$READY_EXIT" -eq 2 ] || fail "ready probe mid-drain: expected exit 2 (alive, not ready), got $READY_EXIT ($(cat "$WORK/ready.out"))"
grep -q 'ready: not-ready' "$WORK/ready.out" || fail "ready probe did not report not-ready mid-drain"

EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
[ "$EXIT_CODE" -eq 75 ] || fail "expected drain exit 75, got $EXIT_CODE (stderr: $(tail -3 "$WORK/serve.err"))"
grep -q '^drained: admitted=' "$WORK/serve.out" || fail "no drain summary printed"

echo "serve_smoke: OK (port $PORT, reloads=$RELOADS_AFTER, gen=$GENERATION, $(grep '^drained:' "$WORK/serve.out"))"
