// twq — command-line front end for the treewalk library.
//
//   twq run <program.twp> <tree.{term,xml}> [--trace] [--graph]
//       Run a tree-walking program (textual .twp format) on a tree.
//   twq xpath <query> <tree.{term,xml}>
//       Evaluate an XPath query from the root; also show the FO(exists*)
//       compilation.
//   twq check <program.twp>
//       Parse and validate a program; print its canonical form.
//   twq explain <tree> (--selector <phi> | --xpath <path> | --program <p.twp>)
//       [--plan auto|fixed] [--axis-repr auto|interval|dense]
//       [--origin N] [--evals] [--timing]
//       Show what the cost-based planner (docs/PLANNER.md) would do for
//       each selector: tree statistics, formula features, per-strategy
//       cost estimates, the chosen plan, and per-operator cardinality
//       estimates.  --evals executes the chosen plan from --origin
//       (default: the root) and prints measured vs estimated rows.
//       --timing times every candidate strategy and prints rescaled
//       calibration constants (output is nondeterministic; everything
//       else explain prints is byte-stable for golden tests).
//   twq cat <expression> <tree.{term,xml}>
//       Evaluate a caterpillar expression from the root.
//   twq batch <manifest> [--jobs N] [--max-steps M] [--quiet]
//       [--deadline-ms D] [--memory-budget-mb B] [--retries R]
//       [--journal <path> [--resume] [--journal-sync N]]
//       Run a batch of (program, tree) jobs on a thread pool
//       (src/engine).  Each manifest line is `<program.twp> <tree>`;
//       blank lines and lines starting with '#' are skipped.  Files
//       named by several jobs are loaded once and shared read-only.
//       A file that fails to load fails only the jobs naming it.
//       --deadline-ms / --memory-budget-mb bound each job's wall clock
//       and memory (kDeadlineExceeded / kResourceExhausted on trip);
//       --retries re-runs retryable failures down the degradation
//       ladder (docs/ROBUSTNESS.md).  Exits nonzero if any job failed
//       and prints a per-status-code failure summary.
//
//       --journal streams a crash-consistent write-ahead journal of
//       per-job progress; --resume diffs it against the manifest and
//       skips jobs already journaled complete.  SIGINT/SIGTERM drain
//       the batch cooperatively, flush the journal, and exit 75
//       (resumable); a second signal aborts immediately.  See
//       docs/ROBUSTNESS.md, "Durability & recovery".
//   twq journal <journal-file>
//       Dump a batch journal's records and summary; exits nonzero when
//       any job has more than one terminal JobFinished record (an
//       exactly-once violation).
//   twq serve <corpus-dir> [--port P] [--host H] [--workers N]
//       [--max-queue Q] [--max-connections C] [--memory-budget-mb B]
//       [--request-budget-mb RB] [--deadline-ms D] [--max-deadline-ms MD]
//       [--drain-ms MS] [--io-timeout-ms T] [--cache-budget-mb CB]
//       [--snapshot-cache <dir>] [--quiet]
//       Long-lived query daemon (docs/SERVER.md): preloads every tree
//       in <corpus-dir> (.term/.xml/.twsnap, keyed by file name) into a
//       byte-capped resident cache, then serves concurrent queries over
//       a length-prefixed binary TCP protocol with admission control
//       and load shedding.  Prints `listening on <host>:<port>` once
//       ready (--port 0 binds an ephemeral port).  First SIGINT/SIGTERM
//       drains gracefully — stop accepting, finish in-flight within
//       --drain-ms, exit 75; a second signal aborts.  SIGHUP triggers a
//       live corpus reload: the driver rebuilds the resident cache from
//       the (possibly changed) corpus directory and swaps it in
//       atomically; in-flight queries finish on the generation they
//       started on.  --max-consecutive-failures N quarantines a
//       formula x tree pair after N consecutive governor trips
//       (kQuarantined on the wire; docs/SERVER.md).
//   twq query <tree-name> <program.twp> --remote HOST:PORT [--retries R]
//       [--total-deadline-ms D] [--deadline-ms D] [--breaker-threshold N]
//       [--breaker-cooldown-ms MS] [--hedge HOST:PORT]
//       [--hedge-delay-ms MS] [--quiet]
//       Run one query against a resident daemon through the resilient
//       client library (src/client): jittered retries, end-to-end
//       deadline propagation, circuit breaker, optional hedging.
//   twq probe <health|ready|stats> --remote HOST:PORT [--hold-ms N]
//       [--timeout-ms T]
//       Probe a daemon.  `health` is liveness (exit 0 while the process
//       serves its protocol, even during drain); `ready` is readiness
//       (exit 0 accepting + corpus loaded, exit 2 alive-but-not-ready);
//       `stats` dumps the counter map.  --hold-ms connects immediately
//       and sleeps before probing, to test liveness during drain (new
//       connections are refused then, held ones still answer).
//   twq snapshot build <tree.{term,xml}> [-o <out.twsnap>]
//       Parse a tree once and write a mmap-able zero-parse snapshot
//       (docs/SNAPSHOT.md); any command accepting a tree also accepts
//       the .twsnap file.
//   twq snapshot inspect <file.twsnap>
//       Validate a snapshot (CRCs and all) and print its header and
//       section table.
//
// Zero-parse startup (run and batch, docs/SNAPSHOT.md):
//   --snapshot-cache <dir>  Serve tree inputs from a content-addressed
//                           snapshot cache in <dir>: first use parses
//                           and persists, later uses mmap in with zero
//                           parsing.  Corrupt/stale entries re-parse.
//   --compile-cache <dir>   Persist compiled selector relations keyed
//                           by (formula, tree, representation); later
//                           runs skip selector compilation entirely.
//
// Global options (any subcommand, docs/OBSERVABILITY.md):
//   --metrics-out <file>   Write a metrics snapshot at exit: Prometheus
//                          text exposition v0.0.4, or JSON when <file>
//                          ends in .json.
//   --trace-out <file>     Record spans for the whole invocation and
//                          write Chrome trace-event JSON at exit (load
//                          in chrome://tracing or ui.perfetto.dev).
//
// `twq batch` additionally prints a progress line to stderr every 500ms
// (jobs done/failed/running, p95 job latency) unless --quiet is given.
//
// Trees are read as the compact term syntax (a[x=1](b, c)) unless the
// file ends in .xml (XML) or .twsnap (snapshot).

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/text_format.h"
#include "src/caterpillar/caterpillar.h"
#include "src/client/client.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/engine/batch_journal.h"
#include "src/engine/engine.h"
#include "src/engine/input_cache.h"
#include "src/engine/manifest.h"
#include "src/engine/shutdown.h"
#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/planner.h"
#include "src/logic/selector_cache.h"
#include "src/server/server.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/tree_stats.h"
#include "src/simulation/config_graph.h"
#include "src/tree/snapshot.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"
#include "src/xpath/xpath.h"

namespace tw = treewalk;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "twq: %s\n", message.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

tw::Result<tw::Tree> ParseTreeText(const std::string& path,
                                   std::string_view text) {
  if (HasSuffix(path, ".xml")) return tw::ParseXml(std::string(text));
  return tw::ParseTerm(std::string(text));
}

tw::Result<tw::Tree> LoadTree(const std::string& path) {
  if (HasSuffix(path, ".twsnap")) return tw::LoadTreeSnapshot(path);
  std::string text;
  if (!ReadFile(path, text)) {
    return tw::NotFound("cannot read tree file '" + path + "'");
  }
  return ParseTreeText(path, text);
}

/// LoadTree routed through a --snapshot-cache directory (when given);
/// explicit .twsnap files bypass the cache — they already are one.
tw::Result<tw::Tree> LoadTreeCached(const std::string& path,
                                    const tw::SnapshotCache* cache) {
  if (cache == nullptr || HasSuffix(path, ".twsnap")) return LoadTree(path);
  return cache->LoadOrParse(path, [&](std::string_view text) {
    return ParseTreeText(path, text);
  });
}

/// Creates a cache directory if absent (one level; callers pass leaf
/// dirs).  Failure is left for the first file operation to report.
void EnsureDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0777);
}

std::optional<tw::PlanMode> ParsePlanMode(const char* arg) {
  if (std::strcmp(arg, "auto") == 0) return tw::PlanMode::kAuto;
  if (std::strcmp(arg, "fixed") == 0) return tw::PlanMode::kFixed;
  return std::nullopt;
}

int CmdRun(int argc, char** argv) {
  if (argc < 2) {
    return Fail("usage: twq run <program.twp> <tree> [--trace] "
                "[--axis-repr auto|interval|dense] [--plan auto|fixed] "
                "[--snapshot-cache <dir>] [--compile-cache <dir>]");
  }
  std::string program_text;
  if (!ReadFile(argv[0], program_text)) {
    return Fail(std::string("cannot read program '") + argv[0] + "'");
  }
  auto program = tw::ParseProgramText(program_text);
  if (!program.ok()) return Fail("program: " + program.status().ToString());

  bool trace = false, graph = false;
  tw::AxisRepr axis_repr = tw::AxisRepr::kAuto;
  tw::PlanMode plan_mode = tw::PlanMode::kAuto;
  std::optional<tw::SnapshotCache> snapshot_cache;
  std::optional<tw::SelectorDiskCache> compile_cache;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--graph") == 0) graph = true;
    if (std::strcmp(argv[i], "--axis-repr") == 0 && i + 1 < argc) {
      auto repr = tw::ParseAxisRepr(argv[++i]);
      if (!repr.has_value()) {
        return Fail(std::string("unknown --axis-repr '") + argv[i] +
                    "' (want auto, interval, or dense)");
      }
      axis_repr = *repr;
    }
    if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      auto mode = ParsePlanMode(argv[++i]);
      if (!mode.has_value()) {
        return Fail(std::string("unknown --plan '") + argv[i] +
                    "' (want auto or fixed)");
      }
      plan_mode = *mode;
    }
    if (std::strcmp(argv[i], "--snapshot-cache") == 0 && i + 1 < argc) {
      EnsureDir(argv[++i]);
      snapshot_cache.emplace(argv[i]);
    }
    if (std::strcmp(argv[i], "--compile-cache") == 0 && i + 1 < argc) {
      EnsureDir(argv[++i]);
      compile_cache.emplace(argv[i]);
    }
  }
  auto tree = LoadTreeCached(
      argv[1], snapshot_cache.has_value() ? &*snapshot_cache : nullptr);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());

  if (graph) {
    auto r = tw::EvaluateViaConfigGraph(*program, *tree);
    if (!r.ok()) return Fail("run: " + r.status().ToString());
    std::printf("%s (%zu configurations, %zu memoized calls)\n",
                r->accepted ? "ACCEPT" : "REJECT", r->configs,
                r->memoized_calls);
    return r->accepted ? 0 : 2;
  }

  tw::RunOptions options;
  options.record_trace = trace;
  options.axis_repr = axis_repr;
  options.plan_mode = plan_mode;
  if (compile_cache.has_value()) {
    options.selector_disk_cache = &*compile_cache;
  }
  tw::Interpreter interpreter(*program, options);
  auto r = interpreter.Run(*tree);
  if (!r.ok()) return Fail("run: " + r.status().ToString());
  std::printf("%s (%lld steps, %lld subcomputations%s%s)\n",
              r->accepted ? "ACCEPT" : "REJECT",
              static_cast<long long>(r->stats.steps),
              static_cast<long long>(r->stats.subcomputations),
              r->accepted ? "" : ", reason: ",
              r->accepted ? "" : tw::RejectReasonName(r->reason));
  if (trace) {
    for (const std::string& line : r->trace) std::printf("  %s\n", line.c_str());
  }
  return r->accepted ? 0 : 2;
}

int CmdXPath(int argc, char** argv) {
  if (argc != 2) return Fail("usage: twq xpath <query> <tree>");
  auto xpath = tw::ParseXPath(argv[0]);
  if (!xpath.ok()) return Fail("query: " + xpath.status().ToString());
  auto tree = LoadTree(argv[1]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());
  auto hits = tw::EvalXPath(*tree, *xpath, tree->root());
  if (!hits.ok()) return Fail("eval: " + hits.status().ToString());
  auto formula = tw::CompileXPathToFo(*xpath);
  std::printf("%zu node(s):", hits->size());
  for (tw::NodeId u : *hits) {
    std::printf(" %lld:%s", static_cast<long long>(u),
                tree->LabelName(tree->label(u)).c_str());
  }
  std::printf("\nFO(exists*): %s\n",
              formula.ok() ? formula->ToString().c_str() : "<error>");
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc != 1) return Fail("usage: twq check <program.twp>");
  std::string text;
  if (!ReadFile(argv[0], text)) {
    return Fail(std::string("cannot read '") + argv[0] + "'");
  }
  auto program = tw::ParseProgramText(text);
  if (!program.ok()) return Fail(program.status().ToString());
  std::printf("valid %s program, %zu rules, %zu registers, size measure "
              "%zu\n--\n%s",
              tw::ProgramClassName(program->program_class()),
              program->rules().size(),
              program->initial_store().num_relations(),
              program->SizeMeasure(),
              tw::ProgramToText(*program).c_str());
  return 0;
}

/// `twq explain`: render the cost-based planner's view of one or more
/// selectors against a tree (docs/PLANNER.md).  All output except the
/// --timing section is a pure function of the inputs, so a golden-file
/// test can hold the format (tests/explain_test.cc).
int CmdExplain(int argc, char** argv) {
  const char* usage =
      "usage: twq explain <tree> (--selector <phi> | --xpath <path> | "
      "--program <p.twp>) [--plan auto|fixed] "
      "[--axis-repr auto|interval|dense] [--origin N] [--evals] [--timing]";
  if (argc < 1) return Fail(usage);
  std::string selector_text, xpath_text, program_path;
  tw::PlanMode plan_mode = tw::PlanMode::kAuto;
  tw::AxisRepr axis_repr = tw::AxisRepr::kAuto;
  long long origin_arg = -1;
  bool evals = false, timing = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selector") == 0 && i + 1 < argc) {
      selector_text = argv[++i];
    } else if (std::strcmp(argv[i], "--xpath") == 0 && i + 1 < argc) {
      xpath_text = argv[++i];
    } else if (std::strcmp(argv[i], "--program") == 0 && i + 1 < argc) {
      program_path = argv[++i];
    } else if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      auto mode = ParsePlanMode(argv[++i]);
      if (!mode.has_value()) {
        return Fail(std::string("unknown --plan '") + argv[i] +
                    "' (want auto or fixed)");
      }
      plan_mode = *mode;
    } else if (std::strcmp(argv[i], "--axis-repr") == 0 && i + 1 < argc) {
      auto repr = tw::ParseAxisRepr(argv[++i]);
      if (!repr.has_value()) {
        return Fail(std::string("unknown --axis-repr '") + argv[i] +
                    "' (want auto, interval, or dense)");
      }
      axis_repr = *repr;
    } else if (std::strcmp(argv[i], "--origin") == 0 && i + 1 < argc) {
      origin_arg = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--evals") == 0) {
      evals = true;
    } else if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
    } else {
      return Fail(std::string("unknown explain option '") + argv[i] + "'");
    }
  }
  const int sources = (selector_text.empty() ? 0 : 1) +
                      (xpath_text.empty() ? 0 : 1) +
                      (program_path.empty() ? 0 : 1);
  if (sources != 1) return Fail(usage);

  auto tree = LoadTree(argv[0]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());

  struct Item {
    std::string title;
    tw::Formula formula;
    bool from_xpath = false;
    int xpath_steps = 0;
  };
  std::vector<Item> items;
  std::optional<tw::XPath> xpath;
  if (!selector_text.empty()) {
    auto parsed = tw::ParseFormula(selector_text);
    if (!parsed.ok()) return Fail("selector: " + parsed.status().ToString());
    tw::Status valid = tw::ValidateTreeFormula(*parsed);
    if (!valid.ok()) return Fail("selector: " + valid.ToString());
    items.push_back(Item{parsed->ToString(), *parsed, false, 0});
  } else if (!xpath_text.empty()) {
    auto parsed = tw::ParseXPath(xpath_text);
    if (!parsed.ok()) return Fail("xpath: " + parsed.status().ToString());
    xpath = *parsed;
    int steps = 0;
    for (const tw::XPathPath& p : parsed->paths) {
      steps += static_cast<int>(p.steps.size());
    }
    auto formula = tw::CompileXPathToFo(*parsed);
    if (!formula.ok()) {
      return Fail("xpath does not compile to FO(exists*): " +
                  formula.status().ToString());
    }
    items.push_back(Item{xpath_text, *formula, true, steps});
  } else {
    std::string text;
    if (!ReadFile(program_path, text)) {
      return Fail("cannot read program '" + program_path + "'");
    }
    auto program = tw::ParseProgramText(text);
    if (!program.ok()) return Fail("program: " + program.status().ToString());
    std::map<std::string, bool> seen;  // canonical text -> reported
    for (const tw::Rule& rule : program->rules()) {
      if (rule.action.kind != tw::Action::Kind::kLookAhead) continue;
      const std::string key = rule.action.selector.ToString();
      if (!seen.emplace(key, true).second) continue;
      items.push_back(Item{key, rule.action.selector, false, 0});
    }
    if (items.empty()) {
      std::printf("program has no atp() selectors; nothing to plan\n");
      return 0;
    }
  }

  tw::TreeStats scratch;
  const tw::TreeStats* stats = tw::GetOrComputeTreeStats(*tree, scratch);
  std::printf(
      "tree: %lld node(s), max depth %lld, %lld leaves, max fanout %lld "
      "(stats %s)\n",
      static_cast<long long>(stats->nodes),
      static_cast<long long>(stats->max_depth),
      static_cast<long long>(stats->leaves),
      static_cast<long long>(stats->max_fanout),
      tree->snapshot_stats() != nullptr ? "preloaded from snapshot"
                                        : "computed");

  tw::NodeId origin = origin_arg >= 0 ? static_cast<tw::NodeId>(origin_arg)
                                      : tree->root();
  if ((evals || timing) && !tree->Valid(origin)) {
    return Fail("--origin " + std::to_string(origin_arg) +
                " is not a node of the tree");
  }

  const tw::PlannerCalibration cal;
  for (const Item& item : items) {
    std::printf("selector: %s\n", item.title.c_str());
    tw::PlanOptions popts;
    popts.forced_repr = axis_repr;
    popts.offer_xpath = item.from_xpath;
    popts.xpath_steps = item.xpath_steps;
    if (origin_arg >= 0) popts.expected_origins = 1;
    tw::SelectorPlan plan = tw::PlanSelector(*stats, item.formula, cal, popts);
    const tw::FormulaFeatures& f = plan.features;
    std::printf(
        "  features: size=%d atoms=%d quantifiers=%d width=%d "
        "negation-depth=%d guard=%s\n",
        f.size, f.atoms, f.quantifiers, f.width, f.negation_depth,
        f.has_range_guard ? "yes" : "no");
    std::printf("  cost: reference=%.4g compiled-dense=%.4g "
                "compiled-interval=%.4g",
                plan.cost_reference, plan.cost_dense, plan.cost_interval);
    if (plan.cost_xpath >= 0.0) {
      std::printf(" xpath-direct=%.4g", plan.cost_xpath);
    }
    std::printf("\n");
    if (plan_mode == tw::PlanMode::kFixed) {
      // The legacy heuristics: always compile, representation by the
      // kDenseAxisNodeLimit size threshold.
      const tw::AxisRepr fixed = tw::ResolveAxisRepr(
          axis_repr, static_cast<std::size_t>(stats->nodes));
      plan.strategy = fixed == tw::AxisRepr::kDense
                          ? tw::PlanStrategy::kCompiledDense
                          : tw::PlanStrategy::kCompiledInterval;
      plan.repr = fixed;
      std::printf("  plan: %s (fixed mode: legacy heuristics)\n",
                  tw::PlanStrategyName(plan.strategy));
    } else {
      std::printf("  plan: %s\n", tw::PlanStrategyName(plan.strategy));
    }
    std::printf("  operators:\n");
    for (const tw::OperatorEstimate& op : plan.operators) {
      std::printf("    %*s%-*s rows=%-12.4g sel=%.4g%s\n", op.depth * 2, "",
                  std::max(1, 24 - op.depth * 2), op.op.c_str(), op.rows,
                  op.selectivity, op.exact ? " exact" : "");
    }

    // One evaluation of a strategy from `origin`; compiled declines
    // surface as a non-OK status and are reported, not fatal.
    auto run_strategy =
        [&](tw::PlanStrategy s) -> tw::Result<std::vector<tw::NodeId>> {
      switch (s) {
        case tw::PlanStrategy::kReference:
          return tw::SelectNodes(*tree, item.formula, origin);
        case tw::PlanStrategy::kCompiledDense:
        case tw::PlanStrategy::kCompiledInterval: {
          tw::AxisIndex index(*tree, nullptr);
          if (!index.status().ok()) return index.status();
          auto compiled = tw::CompileSelector(
              index, item.formula, "x", "y",
              s == tw::PlanStrategy::kCompiledDense ? tw::AxisRepr::kDense
                                                    : tw::AxisRepr::kInterval);
          if (!compiled.ok()) return compiled.status();
          return compiled->SelectFrom(origin);
        }
        case tw::PlanStrategy::kXPathDirect:
          return tw::EvalXPath(*tree, *xpath, origin);
      }
      return tw::InvalidArgument("unknown strategy");
    };

    if (evals) {
      const double est_per_origin =
          plan.estimated_rows / std::max<double>(1.0, stats->nodes);
      auto result = run_strategy(plan.strategy);
      if (result.ok()) {
        std::printf(
            "  evals: strategy=%s origin=%lld result=%zu node(s) "
            "estimated-per-origin=%.4g\n",
            tw::PlanStrategyName(plan.strategy),
            static_cast<long long>(origin), result->size(), est_per_origin);
      } else if (plan.strategy != tw::PlanStrategy::kReference) {
        auto fallback = tw::SelectNodes(*tree, item.formula, origin);
        if (!fallback.ok()) {
          return Fail("evals: " + fallback.status().ToString());
        }
        std::printf(
            "  evals: compile declined (%s); reference fallback "
            "origin=%lld result=%zu node(s) estimated-per-origin=%.4g\n",
            result.status().message().c_str(),
            static_cast<long long>(origin), fallback->size(), est_per_origin);
      } else {
        return Fail("evals: " + result.status().ToString());
      }
    }

    if (timing) {
      std::vector<tw::StrategyMeasurement> measured;
      std::printf("  timing:");
      std::vector<tw::PlanStrategy> candidates = {
          tw::PlanStrategy::kReference, tw::PlanStrategy::kCompiledDense,
          tw::PlanStrategy::kCompiledInterval};
      if (item.from_xpath) {
        candidates.push_back(tw::PlanStrategy::kXPathDirect);
      }
      for (tw::PlanStrategy s : candidates) {
        const auto start = std::chrono::steady_clock::now();
        auto result = run_strategy(s);
        const auto end = std::chrono::steady_clock::now();
        if (!result.ok()) {
          std::printf(" %s=declined", tw::PlanStrategyName(s));
          continue;
        }
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count());
        measured.push_back(tw::StrategyMeasurement{s, ns});
        std::printf(" %s=%.0fns", tw::PlanStrategyName(s), ns);
      }
      std::printf("\n");
      const tw::PlannerCalibration tuned =
          tw::RecalibrateFromMeasurements(cal, plan, measured);
      std::printf(
          "  recalibrated: reference_visit_cost=%.4g dense_word_cost=%.4g "
          "interval_span_cost=%.4g xpath_step_cost=%.4g\n",
          tuned.reference_visit_cost, tuned.dense_word_cost,
          tuned.interval_span_cost, tuned.xpath_step_cost);
    }
  }
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 1) {
    return Fail("usage: twq batch <manifest> [--jobs N] [--max-steps M] "
                "[--quiet] [--no-cache] [--no-compiled] "
                "[--axis-repr auto|interval|dense] [--plan auto|fixed] "
                "[--deadline-ms D] "
                "[--memory-budget-mb B] [--retries R] "
                "[--snapshot-cache <dir>] [--compile-cache <dir>] "
                "[--journal <path> [--resume] [--journal-sync N]]");
  }
  int num_threads = 1;
  long long max_steps = 0;  // 0 = interpreter default
  bool quiet = false;
  bool cache_selectors = true;
  bool compile_selectors = true;
  tw::AxisRepr axis_repr = tw::AxisRepr::kAuto;
  tw::PlanMode plan_mode = tw::PlanMode::kAuto;
  long long deadline_ms = 0;        // 0 = no deadline
  long long memory_budget_mb = 0;   // 0 = unlimited
  int retries = 0;                  // extra attempts beyond the first
  std::string journal_path;         // empty = no journal
  bool resume = false;
  // fsync cadence: 0 (default) syncs only at exit — journal records
  // survive any crash of this process via the page cache, and a
  // per-finish fsync costs ~60% wall clock on short jobs (E16).  N > 0
  // adds a power-loss barrier after every Nth finished job.
  int journal_sync = 0;
  std::optional<tw::SnapshotCache> snapshot_cache;
  std::optional<tw::SelectorDiskCache> compile_cache;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-steps") == 0 && i + 1 < argc) {
      max_steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      cache_selectors = false;
    } else if (std::strcmp(argv[i], "--no-compiled") == 0) {
      compile_selectors = false;
    } else if (std::strcmp(argv[i], "--axis-repr") == 0 && i + 1 < argc) {
      auto repr = tw::ParseAxisRepr(argv[++i]);
      if (!repr.has_value()) {
        return Fail(std::string("unknown --axis-repr '") + argv[i] +
                    "' (want auto, interval, or dense)");
      }
      axis_repr = *repr;
    } else if (std::strcmp(argv[i], "--plan") == 0 && i + 1 < argc) {
      auto mode = ParsePlanMode(argv[++i]);
      if (!mode.has_value()) {
        return Fail(std::string("unknown --plan '") + argv[i] +
                    "' (want auto or fixed)");
      }
      plan_mode = *mode;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0 &&
               i + 1 < argc) {
      memory_budget_mb = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--journal") == 0 && i + 1 < argc) {
      journal_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--journal-sync") == 0 && i + 1 < argc) {
      journal_sync = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--snapshot-cache") == 0 && i + 1 < argc) {
      EnsureDir(argv[++i]);
      snapshot_cache.emplace(argv[i]);
    } else if (std::strcmp(argv[i], "--compile-cache") == 0 && i + 1 < argc) {
      EnsureDir(argv[++i]);
      compile_cache.emplace(argv[i]);
    } else {
      return Fail(std::string("unknown batch option '") + argv[i] + "'");
    }
  }
  if (resume && journal_path.empty()) {
    return Fail("--resume requires --journal <path>");
  }

  // The manifest loader derives a stable content-hash job id per line
  // (journal key) and rejects duplicate (program, tree) pairs.
  auto manifest = tw::LoadManifestFile(argv[0]);
  if (!manifest.ok()) return Fail(manifest.status().ToString());

  // Resume plan: jobs the journal already records as complete are
  // skipped before the engine ever sees them.  An existing journal
  // without --resume is refused rather than silently extended —
  // mixing two unrelated runs in one journal is almost always a
  // mistake.
  tw::ResumePlan plan;
  if (!journal_path.empty()) {
    auto existing = tw::LoadResumePlan(journal_path);
    if (existing.ok()) {
      if (!resume) {
        return Fail("journal '" + journal_path +
                    "' already exists; pass --resume to continue it (or "
                    "remove it to start over)");
      }
      plan = std::move(existing).value();
      if (!plan.duplicate_finishes.empty()) {
        return Fail("journal '" + journal_path +
                    "' records duplicate JobFinished entries; refusing to "
                    "resume from a corrupt journal");
      }
    } else if (existing.status().code() != tw::StatusCode::kNotFound) {
      return Fail("journal: " + existing.status().ToString());
    }
  }

  // Load each distinct program/tree file once; jobs share them
  // read-only (the engine's thread-safety contract allows this).  A file
  // that fails to load or parse fails the jobs naming it — not the whole
  // manifest — so one malformed input cannot sink its batch siblings.
  std::map<std::string, std::shared_ptr<const tw::Program>> programs;
  std::map<std::string, std::shared_ptr<const tw::Tree>> trees;
  std::map<std::string, tw::Status> load_errors;  // path -> first error
  std::vector<tw::BatchJob> jobs;                 // engine-submitted subset
  struct Entry {
    std::string program_path;
    std::string tree_path;
    tw::Status load_status;     // non-OK: never reached the engine
    std::size_t job_index = 0;  // valid when load_status.ok() && !skipped
    bool skipped = false;       // journaled complete in a previous run
  };
  std::vector<Entry> entries;

  auto load_program = [&](const std::string& path) -> tw::Status {
    if (programs.count(path) > 0) return tw::Status::Ok();
    auto it = load_errors.find(path);
    if (it != load_errors.end()) return it->second;
    std::string text;
    tw::Status status;
    if (!ReadFile(path, text)) {
      status = tw::NotFound("cannot read program '" + path + "'");
    } else {
      auto parsed = tw::ParseProgramText(text);
      if (parsed.ok()) {
        programs[path] =
            std::make_shared<const tw::Program>(std::move(parsed).value());
      } else {
        status = tw::Status(parsed.status().code(),
                            path + ": " + parsed.status().message());
      }
    }
    if (!status.ok()) load_errors[path] = status;
    return status;
  };
  auto load_tree = [&](const std::string& path) -> tw::Status {
    if (trees.count(path) > 0) return tw::Status::Ok();
    auto it = load_errors.find(path);
    if (it != load_errors.end()) return it->second;
    auto parsed = LoadTreeCached(
        path, snapshot_cache.has_value() ? &*snapshot_cache : nullptr);
    tw::Status status;
    if (parsed.ok()) {
      trees[path] =
          std::make_shared<const tw::Tree>(std::move(parsed).value());
    } else {
      status = tw::Status(parsed.status().code(),
                          path + ": " + parsed.status().message());
      load_errors[path] = status;
    }
    return status;
  };

  std::size_t skipped = 0;
  for (const tw::ManifestEntry& m : manifest->entries) {
    Entry entry;
    entry.program_path = m.program_path;
    entry.tree_path = m.tree_path;
    if (plan.completed.count(m.job_id) > 0) {
      entry.skipped = true;
      ++skipped;
      entries.push_back(std::move(entry));
      continue;
    }
    entry.load_status = load_program(m.program_path);
    if (entry.load_status.ok()) entry.load_status = load_tree(m.tree_path);
    if (entry.load_status.ok()) {
      tw::BatchJob job;
      job.program = programs[m.program_path].get();
      job.tree = trees[m.tree_path].get();
      if (max_steps > 0) job.options.max_steps = max_steps;
      job.options.cache_selectors = cache_selectors;
      job.options.compile_selectors = compile_selectors;
      job.options.axis_repr = axis_repr;
      job.options.plan_mode = plan_mode;
      if (compile_cache.has_value()) {
        job.options.selector_disk_cache = &*compile_cache;
      }
      job.deadline_ms = deadline_ms;
      job.memory_budget_bytes = memory_budget_mb * 1024 * 1024;
      job.retry.max_attempts = 1 + std::max(0, retries);
      job.job_id = m.job_id;
      entry.job_index = jobs.size();
      jobs.push_back(job);
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) return Fail("manifest names no jobs");

  std::unique_ptr<tw::BatchJournal> journal;
  if (!journal_path.empty()) {
    auto opened = tw::BatchJournal::Open(journal_path, journal_sync);
    if (!opened.ok()) return Fail("journal: " + opened.status().ToString());
    journal = std::make_unique<tw::BatchJournal>(std::move(opened).value());
  }

  // Graceful shutdown: the handler only latches an atomic; this monitor
  // thread polls it and converts the first signal into cooperative
  // batch cancellation (running jobs stop at their next transition,
  // queued jobs fail fast with kCancelled).  A second signal _exits
  // immediately from the handler itself.
  tw::GracefulShutdown::Install();
  tw::BatchResult batch;
  if (!jobs.empty()) {
    tw::BatchEngine engine({.num_threads = num_threads});
    std::atomic<bool> batch_done{false};
    std::thread monitor([&]() {
      while (!batch_done.load(std::memory_order_relaxed)) {
        if (tw::GracefulShutdown::requested()) {
          engine.RequestCancel();
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    // Progress reporter: snapshots the metrics registry every 500ms and
    // prints one stderr line — immediately on start (so even an instant
    // batch reports once) and once more after the batch drains.
    std::thread progress;
    if (!quiet) {
      std::size_t total = jobs.size();
      progress = std::thread([&, total]() {
        while (true) {
          tw::MetricsSnapshot snap = tw::MetricsRegistry::Global().Snapshot();
          std::int64_t failed =
              snap.Value("treewalk_engine_jobs_total", "failed");
          std::int64_t done =
              snap.Value("treewalk_engine_jobs_total", "accepted") +
              snap.Value("treewalk_engine_jobs_total", "rejected") + failed;
          std::int64_t running = snap.Value("treewalk_engine_jobs_running");
          double p95 = 0;
          if (const tw::MetricSample* s =
                  snap.Find("treewalk_engine_job_latency_ms")) {
            p95 = s->histogram.p95();
          }
          std::fprintf(stderr,
                       "progress: %lld/%zu jobs done, %lld failed, "
                       "%lld running, p95=%.2fms\n",
                       static_cast<long long>(done), total,
                       static_cast<long long>(failed),
                       static_cast<long long>(running), p95);
          if (batch_done.load(std::memory_order_relaxed)) return;
          for (int t = 0; t < 10; ++t) {
            if (batch_done.load(std::memory_order_relaxed)) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        }
      });
    }
    auto run = engine.RunBatch(jobs, journal.get());
    batch_done.store(true, std::memory_order_relaxed);
    monitor.join();
    if (progress.joinable()) progress.join();
    if (!run.ok()) return Fail("batch: " + run.status().ToString());
    batch = std::move(run).value();
  }

  // Flush before reporting: a journaled batch's completed work must be
  // on disk before the process can claim it happened.
  if (journal != nullptr) {
    tw::Status flushed = journal->Flush();
    if (!flushed.ok()) {
      return Fail("journal flush: " + flushed.ToString());
    }
  }

  int failures = 0;
  std::map<tw::StatusCode, int> failures_by_code;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.skipped) {
      if (!quiet) {
        std::printf("[%zu] SKIP %s %s (journaled complete)\n", i,
                    e.program_path.c_str(), e.tree_path.c_str());
      }
      continue;
    }
    const tw::Status& status = e.load_status.ok()
                                   ? batch.results[e.job_index].status
                                   : e.load_status;
    if (!status.ok()) {
      ++failures;
      ++failures_by_code[status.code()];
      if (!quiet) {
        std::printf("[%zu] ERROR %s %s: %s\n", i, e.program_path.c_str(),
                    e.tree_path.c_str(), status.ToString().c_str());
      }
      continue;
    }
    const tw::JobResult& r = batch.results[e.job_index];
    if (!quiet) {
      std::printf("[%zu] %s %s %s steps=%lld atp=%lld hits=%lld%s\n", i,
                  r.run.accepted ? "ACCEPT" : "REJECT",
                  e.program_path.c_str(), e.tree_path.c_str(),
                  static_cast<long long>(r.run.stats.steps),
                  static_cast<long long>(r.run.stats.atp_calls),
                  static_cast<long long>(r.run.stats.selector_cache_hits),
                  r.attempts.size() > 1 && r.attempts.back().rung > 0
                      ? " (degraded)"
                      : "");
    }
  }
  const tw::EngineStats& s = batch.stats;
  std::printf("%zu jobs on %d thread(s): %lld accepted, %lld rejected, "
              "%d failed%s\n",
              entries.size(), num_threads,
              static_cast<long long>(s.accepted),
              static_cast<long long>(s.rejected), failures,
              skipped > 0
                  ? (", " + std::to_string(skipped) + " skipped (journaled)")
                        .c_str()
                  : "");
  std::printf("steps=%lld atp_calls=%lld cache_hits=%lld cache_misses=%lld "
              "compiled_evals=%lld (interval=%lld dense=%lld) "
              "store_updates=%lld\n",
              static_cast<long long>(s.steps),
              static_cast<long long>(s.atp_calls),
              static_cast<long long>(s.selector_cache_hits),
              static_cast<long long>(s.selector_cache_misses),
              static_cast<long long>(s.compiled_selector_evals),
              static_cast<long long>(s.interval_selector_evals),
              static_cast<long long>(s.dense_selector_evals),
              static_cast<long long>(s.store_updates));
  if (s.planner_picks_reference + s.planner_picks_dense +
          s.planner_picks_interval >
      0) {
    std::printf("planner_picks: reference=%lld dense=%lld interval=%lld\n",
                static_cast<long long>(s.planner_picks_reference),
                static_cast<long long>(s.planner_picks_dense),
                static_cast<long long>(s.planner_picks_interval));
  }
  if (snapshot_cache.has_value()) {
    const tw::SnapshotCache::Stats& cs = snapshot_cache->stats();
    std::printf("snapshot_cache: hits=%lld misses=%lld stores=%lld "
                "fallbacks=%lld\n",
                static_cast<long long>(cs.hits.load()),
                static_cast<long long>(cs.misses.load()),
                static_cast<long long>(cs.stores.load()),
                static_cast<long long>(cs.fallbacks.load()));
  }
  if (s.deadline_hits + s.memory_trips + s.retries + s.degraded_successes >
      0) {
    std::printf("deadline_hits=%lld memory_trips=%lld retries=%lld "
                "degraded_successes=%lld\n",
                static_cast<long long>(s.deadline_hits),
                static_cast<long long>(s.memory_trips),
                static_cast<long long>(s.retries),
                static_cast<long long>(s.degraded_successes));
  }
  if (failures > 0) {
    std::printf("failures by status:");
    for (const auto& [code, count] : failures_by_code) {
      std::printf(" %s=%d", tw::StatusCodeName(code), count);
    }
    std::printf("\n");
  }
  if (journal != nullptr && !journal->first_error().ok()) {
    return Fail("journal: " + journal->first_error().ToString());
  }
  if (tw::GracefulShutdown::requested()) {
    std::printf("interrupted by signal %d; journal flushed — rerun with "
                "--resume to continue\n",
                tw::GracefulShutdown::signal_number());
    return tw::GracefulShutdown::kExitInterrupted;
  }
  return failures == 0 ? 0 : 1;
}

int CmdServe(int argc, char** argv) {
  if (argc < 1) {
    return Fail("usage: twq serve <corpus-dir> [--port P] [--host H] "
                "[--workers N] [--max-queue Q] [--max-connections C] "
                "[--memory-budget-mb B] [--request-budget-mb RB] "
                "[--deadline-ms D] [--max-deadline-ms MD] [--drain-ms MS] "
                "[--io-timeout-ms T] [--cache-budget-mb CB] "
                "[--snapshot-cache <dir>] [--quiet]");
  }
  const std::string corpus_dir = argv[0];
  tw::ServerOptions options;
  long long cache_budget_mb = 0;  // 0 = unlimited resident cache
  bool quiet = false;
  std::optional<tw::SnapshotCache> snapshot_cache;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      options.num_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-queue") == 0 && i + 1 < argc) {
      options.max_queue = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-connections") == 0 &&
               i + 1 < argc) {
      options.max_connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0 &&
               i + 1 < argc) {
      options.memory_budget_bytes = std::atoll(argv[++i]) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--request-budget-mb") == 0 &&
               i + 1 < argc) {
      options.request_memory_budget_bytes =
          std::atoll(argv[++i]) * 1024 * 1024;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-deadline-ms") == 0 &&
               i + 1 < argc) {
      options.max_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--drain-ms") == 0 && i + 1 < argc) {
      options.drain_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0 && i + 1 < argc) {
      options.io_timeout_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-consecutive-failures") == 0 &&
               i + 1 < argc) {
      options.max_consecutive_failures = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cache-budget-mb") == 0 &&
               i + 1 < argc) {
      cache_budget_mb = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--snapshot-cache") == 0 &&
               i + 1 < argc) {
      EnsureDir(argv[++i]);
      snapshot_cache.emplace(argv[i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return Fail(std::string("unknown serve option '") + argv[i] + "'");
    }
  }

  // Preload the corpus: every tree file in the directory, keyed by its
  // file name.  Serial and before listening — the serving hot path
  // never touches the filesystem.  The same loader re-runs on SIGHUP to
  // build the next generation, so it reports its own errors and returns
  // null instead of sinking the daemon.
  auto load_corpus =
      [&](std::uint64_t generation) -> std::shared_ptr<tw::ResidentTreeCache> {
    auto corpus = std::make_shared<tw::ResidentTreeCache>(
        cache_budget_mb * 1024 * 1024, generation);
    DIR* dir = ::opendir(corpus_dir.c_str());
    if (dir == nullptr) {
      std::fprintf(stderr, "twq serve: cannot open corpus directory '%s'\n",
                   corpus_dir.c_str());
      return nullptr;
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (HasSuffix(name, ".term") || HasSuffix(name, ".xml") ||
          HasSuffix(name, ".twsnap")) {
        names.push_back(std::move(name));
      }
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    if (names.empty()) {
      std::fprintf(stderr,
                   "twq serve: corpus directory '%s' has no "
                   ".term/.xml/.twsnap files\n",
                   corpus_dir.c_str());
      return nullptr;
    }
    std::size_t loaded = 0;
    for (const std::string& name : names) {
      const std::string path = corpus_dir + "/" + name;
      auto entry = corpus->GetOrLoad(name, [&]() {
        return LoadTreeCached(
            path, snapshot_cache.has_value() ? &*snapshot_cache : nullptr);
      });
      if (!entry.ok()) {
        // One bad file degrades the corpus, it does not sink the daemon —
        // queries naming it get kNotFound.
        std::fprintf(stderr, "twq serve: skipping %s: %s\n", name.c_str(),
                     entry.status().ToString().c_str());
        continue;
      }
      ++loaded;
      if (!quiet) {
        std::fprintf(stderr,
                     "twq serve: loaded %s (%zu nodes, ~%lld KiB) [gen %llu]\n",
                     name.c_str(), (*entry)->source_nodes,
                     static_cast<long long>((*entry)->approx_bytes / 1024),
                     static_cast<unsigned long long>(generation));
      }
    }
    if (loaded == 0) {
      std::fprintf(stderr, "twq serve: no corpus tree loaded successfully\n");
      return nullptr;
    }
    return corpus;
  };

  std::shared_ptr<tw::ResidentTreeCache> corpus = load_corpus(0);
  if (corpus == nullptr) return 1;

  tw::QueryServer server(options, corpus);
  corpus.reset();  // the server owns the generation from here on
  tw::Status started = server.Start();
  if (!started.ok()) return Fail("serve: " + started.ToString());
  // The smoke harness and loadgen parse this exact line; keep it first
  // on stdout and flushed.
  std::printf("listening on %s:%d\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  // Signal loop: the handlers only latch atomics; this loop converts
  // the first SIGINT/SIGTERM into a drain and each SIGHUP into a live
  // corpus reload — build a fresh generation from the (possibly
  // changed) directory here on the driver thread, then swap it in
  // atomically while in-flight queries finish on the generation they
  // pinned.  A failed build keeps the old generation serving.
  tw::GracefulShutdown::Install();
  tw::Counter* reload_metric =
      tw::MetricsRegistry::Global().FindOrCreateCounter(
          "treewalk_server_reload_requests_total",
          "SIGHUPs observed by the serve driver; each one triggers a live "
          "corpus reload (build a fresh generation, swap atomically)");
  int reloads_seen = 0;
  std::uint64_t generation = 0;
  while (!tw::GracefulShutdown::requested()) {
    int reloads = tw::GracefulShutdown::reload_requests();
    if (reloads > reloads_seen) {
      // Coalesce a burst of SIGHUPs into one rebuild; every request is
      // still counted.
      reload_metric->Increment(reloads - reloads_seen);
      reloads_seen = reloads;
      const auto build_start = std::chrono::steady_clock::now();
      std::shared_ptr<tw::ResidentTreeCache> next =
          load_corpus(++generation);
      const double build_ms =
          std::chrono::duration_cast<
              std::chrono::duration<double, std::milli>>(
              std::chrono::steady_clock::now() - build_start)
              .count();
      if (next == nullptr) {
        --generation;
        std::fprintf(stderr,
                     "twq serve: reload failed; keeping generation %llu\n",
                     static_cast<unsigned long long>(generation));
      } else {
        const long long trees =
            static_cast<long long>(next->resident_trees());
        server.SwapCorpus(std::move(next), build_ms);
        if (!quiet) {
          std::fprintf(stderr,
                       "twq serve: reloaded generation %llu (%lld trees, "
                       "%.1f ms build)\n",
                       static_cast<unsigned long long>(generation), trees,
                       build_ms);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!quiet) {
    std::fprintf(stderr, "twq serve: signal %d, draining (%lld ms grace)\n",
                 tw::GracefulShutdown::signal_number(),
                 static_cast<long long>(options.drain_deadline_ms));
  }
  server.BeginDrain();
  server.AwaitTermination();
  tw::GracefulShutdown::Uninstall();

  const tw::ServerCounters& c = server.counters();
  std::printf("drained: admitted=%lld ok=%lld error=%lld drained=%lld "
              "shed_queue=%lld shed_memory=%lld shed_draining=%lld "
              "protocol_errors=%lld reaped=%lld quarantined=%lld "
              "reloads=%lld\n",
              static_cast<long long>(c.requests_admitted.load()),
              static_cast<long long>(c.served_ok.load()),
              static_cast<long long>(c.served_error.load()),
              static_cast<long long>(c.drained.load()),
              static_cast<long long>(c.shed_queue.load()),
              static_cast<long long>(c.shed_memory.load()),
              static_cast<long long>(c.shed_draining.load()),
              static_cast<long long>(c.protocol_errors.load()),
              static_cast<long long>(c.slow_clients_reaped.load()),
              static_cast<long long>(c.quarantined.load()),
              static_cast<long long>(c.reloads.load()));
  std::fflush(stdout);
  return tw::GracefulShutdown::kExitInterrupted;
}

bool ParseEndpoint(const std::string& spec, tw::Endpoint* out) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  out->host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  out->port = std::atoi(spec.c_str() + colon + 1);
  return out->port > 0 && out->port < 65536;
}

int CmdQuery(int argc, char** argv) {
  const char* usage =
      "usage: twq query <tree-name> <program.twp> --remote HOST:PORT "
      "[--retries R] [--total-deadline-ms D] [--deadline-ms D] "
      "[--io-timeout-ms T] "
      "[--breaker-threshold N] [--breaker-cooldown-ms MS] "
      "[--hedge HOST:PORT] [--hedge-delay-ms MS] [--quiet]";
  if (argc < 2) return Fail(usage);
  const std::string tree_name = argv[0];
  const std::string program_path = argv[1];
  tw::ClientOptions options;
  bool have_remote = false;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--remote") == 0 && i + 1 < argc) {
      if (!ParseEndpoint(argv[++i], &options.endpoint)) {
        return Fail(std::string("bad --remote '") + argv[i] + "'");
      }
      have_remote = true;
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      options.retry.max_attempts = std::atoi(argv[++i]) + 1;
    } else if (std::strcmp(argv[i], "--total-deadline-ms") == 0 &&
               i + 1 < argc) {
      options.total_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.request_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0 && i + 1 < argc) {
      options.io_timeout_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--breaker-threshold") == 0 &&
               i + 1 < argc) {
      options.breaker_threshold = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--breaker-cooldown-ms") == 0 &&
               i + 1 < argc) {
      options.breaker_cooldown_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--hedge") == 0 && i + 1 < argc) {
      if (!ParseEndpoint(argv[++i], &options.hedge)) {
        return Fail(std::string("bad --hedge '") + argv[i] + "'");
      }
    } else if (std::strcmp(argv[i], "--hedge-delay-ms") == 0 &&
               i + 1 < argc) {
      options.hedge_delay_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return Fail(std::string("unknown query option '") + argv[i] + "'");
    }
  }
  if (!have_remote) return Fail(usage);

  std::ifstream in(program_path);
  if (!in) return Fail("cannot read program '" + program_path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();

  tw::QueryClient client(std::move(options));
  tw::QueryOutcome outcome = client.Query(tree_name, buffer.str());
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "twq query: %s (after %d attempt%s)\n",
                 outcome.status.ToString().c_str(), outcome.attempts,
                 outcome.attempts == 1 ? "" : "s");
    return 1;
  }
  std::printf("%s in %lld step(s)\n",
              outcome.result.accepted ? "ACCEPT" : "REJECT",
              static_cast<long long>(outcome.result.steps));
  if (!quiet && (outcome.attempts > 1 || outcome.hedge_won)) {
    std::fprintf(stderr, "twq query: %d attempt(s)%s\n", outcome.attempts,
                 outcome.hedge_won ? ", hedge won" : "");
  }
  return 0;
}

int CmdProbe(int argc, char** argv) {
  const char* usage =
      "usage: twq probe <health|ready|stats> --remote HOST:PORT "
      "[--hold-ms N] [--timeout-ms T]";
  if (argc < 1) return Fail(usage);
  const std::string verb = argv[0];
  tw::ClientOptions options;
  bool have_remote = false;
  long long hold_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--remote") == 0 && i + 1 < argc) {
      if (!ParseEndpoint(argv[++i], &options.endpoint)) {
        return Fail(std::string("bad --remote '") + argv[i] + "'");
      }
      have_remote = true;
    } else if (std::strcmp(argv[i], "--hold-ms") == 0 && i + 1 < argc) {
      hold_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      options.io_timeout_ms = std::atoll(argv[++i]);
    } else {
      return Fail(std::string("unknown probe option '") + argv[i] + "'");
    }
  }
  if (!have_remote) return Fail(usage);
  if (verb != "health" && verb != "ready" && verb != "stats") {
    return Fail(usage);
  }

  tw::QueryClient client(std::move(options));
  // --hold-ms: connect *now*, probe *later*.  The daemon refuses new
  // connections once draining, but it keeps answering liveness probes
  // on connections it already holds — this is how the smoke test
  // demonstrates that liveness and readiness really are different
  // questions.
  tw::Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "twq probe: %s\n", connected.ToString().c_str());
    return 1;
  }
  if (hold_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  }

  if (verb == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "twq probe: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    for (const auto& [key, value] : stats->entries) {
      std::printf("%s %lld\n", key.c_str(), static_cast<long long>(value));
    }
    return 0;
  }

  tw::Result<bool> up =
      verb == "health" ? client.Health() : client.Ready();
  if (!up.ok()) {
    std::fprintf(stderr, "twq probe: %s\n", up.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %s\n", verb.c_str(), *up ? "ok" : "not-ready");
  // Exit 2 = the daemon answered but said "not ready": alive, draining
  // or corpus-less.  Distinct from 1 (no daemon / transport failure) so
  // supervisors can tell "wait" from "restart".
  return *up ? 0 : 2;
}

int CmdJournal(int argc, char** argv) {
  if (argc != 1) return Fail("usage: twq journal <journal-file>");
  auto contents = tw::ReadJournal(argv[0]);
  if (!contents.ok()) return Fail(contents.status().ToString());
  auto plan = tw::BuildResumePlan(*contents);
  if (!plan.ok()) return Fail(plan.status().ToString());
  for (const std::string& payload : contents->records) {
    auto record = tw::DecodeBatchRecord(payload);
    if (!record.ok()) continue;  // BuildResumePlan already vetted these
    if (record->type == tw::BatchRecord::Type::kJobStarted) {
      std::printf("S %016llx attempt=%d rung=%d\n",
                  static_cast<unsigned long long>(record->job_id),
                  record->attempt, record->rung);
    } else {
      std::printf("F %016llx code=%s accepted=%d attempts=%d rung=%d "
                  "steps=%lld\n",
                  static_cast<unsigned long long>(record->job_id),
                  tw::StatusCodeName(record->code), record->accepted ? 1 : 0,
                  record->attempts, record->rung,
                  static_cast<long long>(record->steps));
    }
  }
  std::printf("%lld records: %zu completed, %zu in-flight%s\n",
              static_cast<long long>(plan->records), plan->completed.size(),
              plan->in_flight.size(),
              plan->torn ? " (torn tail truncated on next open)" : "");
  if (!plan->duplicate_finishes.empty()) {
    for (std::uint64_t id : plan->duplicate_finishes) {
      std::fprintf(stderr, "twq: duplicate JobFinished for job %016llx\n",
                   static_cast<unsigned long long>(id));
    }
    return 1;
  }
  return 0;
}

int CmdSnapshot(int argc, char** argv) {
  const char* usage =
      "usage: twq snapshot build <tree.{term,xml}> [-o <out.twsnap>] | "
      "twq snapshot inspect <file.twsnap>";
  if (argc < 2) return Fail(usage);
  const std::string verb = argv[0];
  if (verb == "build") {
    const std::string tree_path = argv[1];
    std::string out_path = tree_path + ".twsnap";
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else {
        return Fail(usage);
      }
    }
    auto tree = LoadTree(tree_path);
    if (!tree.ok()) return Fail("tree: " + tree.status().ToString());
    auto info = tw::WriteTreeSnapshot(*tree, out_path);
    if (!info.ok()) return Fail("snapshot: " + info.status().ToString());
    std::printf("wrote %s: %llu nodes, %llu labels, %llu attrs, "
                "%llu values, %llu bytes, content=%016llx\n",
                out_path.c_str(),
                static_cast<unsigned long long>(info->nodes),
                static_cast<unsigned long long>(info->labels),
                static_cast<unsigned long long>(info->attrs),
                static_cast<unsigned long long>(info->values),
                static_cast<unsigned long long>(info->file_bytes),
                static_cast<unsigned long long>(info->content_hash));
    return 0;
  }
  if (verb == "inspect") {
    if (argc != 2) return Fail(usage);
    auto info = tw::InspectTreeSnapshot(argv[1]);
    if (!info.ok()) return Fail("inspect: " + info.status().ToString());
    std::printf("%s: version %u, %llu nodes, %llu labels, %llu attrs, "
                "%llu values, %llu bytes, content=%016llx\n",
                argv[1], info->version,
                static_cast<unsigned long long>(info->nodes),
                static_cast<unsigned long long>(info->labels),
                static_cast<unsigned long long>(info->attrs),
                static_cast<unsigned long long>(info->values),
                static_cast<unsigned long long>(info->file_bytes),
                static_cast<unsigned long long>(info->content_hash));
    for (const tw::SnapshotSectionInfo& s : info->sections) {
      std::printf("  section %-15s offset=%-8llu length=%-10llu "
                  "crc=%08x\n",
                  tw::SnapshotSectionName(s.kind),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.length), s.crc);
    }
    return 0;
  }
  return Fail(usage);
}

int CmdCat(int argc, char** argv) {
  if (argc != 2) return Fail("usage: twq cat <expression> <tree>");
  auto expr = tw::ParseCaterpillar(argv[0]);
  if (!expr.ok()) return Fail("expression: " + expr.status().ToString());
  auto tree = LoadTree(argv[1]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());
  auto hits = tw::CaterpillarSelect(*tree, *expr, tree->root());
  if (!hits.ok()) return Fail("eval: " + hits.status().ToString());
  std::printf("%zu node(s):", hits->size());
  for (tw::NodeId u : *hits) {
    std::printf(" %lld:%s", static_cast<long long>(u),
                tree->LabelName(tree->label(u)).c_str());
  }
  std::printf("\n");
  return 0;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (out) {
    out << content;
    out.flush();
  }
  if (!out) {
    std::fprintf(stderr, "twq: cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global observability flags work with every subcommand; strip them
  // before dispatch.
  std::string metrics_out, trace_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  if (args.size() < 2) {
    return Fail("usage: twq <run|xpath|check|explain|cat|batch|serve|query|"
                "probe|journal|snapshot> [--metrics-out <file>] "
                "[--trace-out <file>] ...  (see file header)");
  }
  if (!trace_out.empty()) tw::Tracer::Global().Enable();

  std::string command = args[1];
  int sub_argc = static_cast<int>(args.size()) - 2;
  char** sub_argv = args.data() + 2;
  int code;
  if (command == "run") {
    code = CmdRun(sub_argc, sub_argv);
  } else if (command == "xpath") {
    code = CmdXPath(sub_argc, sub_argv);
  } else if (command == "check") {
    code = CmdCheck(sub_argc, sub_argv);
  } else if (command == "explain") {
    code = CmdExplain(sub_argc, sub_argv);
  } else if (command == "cat") {
    code = CmdCat(sub_argc, sub_argv);
  } else if (command == "batch") {
    code = CmdBatch(sub_argc, sub_argv);
  } else if (command == "serve") {
    code = CmdServe(sub_argc, sub_argv);
  } else if (command == "query") {
    code = CmdQuery(sub_argc, sub_argv);
  } else if (command == "probe") {
    code = CmdProbe(sub_argc, sub_argv);
  } else if (command == "journal") {
    code = CmdJournal(sub_argc, sub_argv);
  } else if (command == "snapshot") {
    code = CmdSnapshot(sub_argc, sub_argv);
  } else {
    code = Fail("unknown command '" + command + "'");
  }

  // Written even when the command failed: a failed run's metrics and
  // trace are exactly what you want to look at.
  if (!metrics_out.empty()) {
    tw::MetricsSnapshot snap = tw::MetricsRegistry::Global().Snapshot();
    std::string content = EndsWith(metrics_out, ".json")
                              ? snap.ToJson()
                              : snap.ToPrometheusText();
    if (!WriteTextFile(metrics_out, content) && code == 0) code = 1;
  }
  if (!trace_out.empty()) {
    tw::Tracer& tracer = tw::Tracer::Global();
    tracer.Disable();
    if (!WriteTextFile(trace_out, tracer.ChromeTraceJson()) && code == 0) {
      code = 1;
    }
    if (tracer.dropped() > 0) {
      std::fprintf(stderr,
                   "twq: trace buffer full, %llu span(s) dropped\n",
                   static_cast<unsigned long long>(tracer.dropped()));
    }
  }
  return code;
}
