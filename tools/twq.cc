// twq — command-line front end for the treewalk library.
//
//   twq run <program.twp> <tree.{term,xml}> [--trace] [--graph]
//       Run a tree-walking program (textual .twp format) on a tree.
//   twq xpath <query> <tree.{term,xml}>
//       Evaluate an XPath query from the root; also show the FO(exists*)
//       compilation.
//   twq check <program.twp>
//       Parse and validate a program; print its canonical form.
//   twq cat <expression> <tree.{term,xml}>
//       Evaluate a caterpillar expression from the root.
//   twq batch <manifest> [--jobs N] [--max-steps M] [--quiet]
//       Run a batch of (program, tree) jobs on a thread pool
//       (src/engine).  Each manifest line is `<program.twp> <tree>`;
//       blank lines and lines starting with '#' are skipped.  Files
//       named by several jobs are loaded once and shared read-only.
//
// Trees are read as the compact term syntax (a[x=1](b, c)) unless the
// file ends in .xml.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/text_format.h"
#include "src/caterpillar/caterpillar.h"
#include "src/engine/engine.h"
#include "src/logic/tree_eval.h"
#include "src/simulation/config_graph.h"
#include "src/tree/term_io.h"
#include "src/tree/xml_io.h"
#include "src/xpath/xpath.h"

namespace tw = treewalk;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "twq: %s\n", message.c_str());
  return 1;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

tw::Result<tw::Tree> LoadTree(const std::string& path) {
  std::string text;
  if (!ReadFile(path, text)) {
    return tw::NotFound("cannot read tree file '" + path + "'");
  }
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".xml") {
    return tw::ParseXml(text);
  }
  return tw::ParseTerm(text);
}

int CmdRun(int argc, char** argv) {
  if (argc < 2) return Fail("usage: twq run <program.twp> <tree> [--trace]");
  std::string program_text;
  if (!ReadFile(argv[0], program_text)) {
    return Fail(std::string("cannot read program '") + argv[0] + "'");
  }
  auto program = tw::ParseProgramText(program_text);
  if (!program.ok()) return Fail("program: " + program.status().ToString());
  auto tree = LoadTree(argv[1]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());

  bool trace = false, graph = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    if (std::strcmp(argv[i], "--graph") == 0) graph = true;
  }

  if (graph) {
    auto r = tw::EvaluateViaConfigGraph(*program, *tree);
    if (!r.ok()) return Fail("run: " + r.status().ToString());
    std::printf("%s (%zu configurations, %zu memoized calls)\n",
                r->accepted ? "ACCEPT" : "REJECT", r->configs,
                r->memoized_calls);
    return r->accepted ? 0 : 2;
  }

  tw::RunOptions options;
  options.record_trace = trace;
  tw::Interpreter interpreter(*program, options);
  auto r = interpreter.Run(*tree);
  if (!r.ok()) return Fail("run: " + r.status().ToString());
  std::printf("%s (%lld steps, %lld subcomputations%s%s)\n",
              r->accepted ? "ACCEPT" : "REJECT",
              static_cast<long long>(r->stats.steps),
              static_cast<long long>(r->stats.subcomputations),
              r->accepted ? "" : ", reason: ",
              r->accepted ? "" : tw::RejectReasonName(r->reason));
  if (trace) {
    for (const std::string& line : r->trace) std::printf("  %s\n", line.c_str());
  }
  return r->accepted ? 0 : 2;
}

int CmdXPath(int argc, char** argv) {
  if (argc != 2) return Fail("usage: twq xpath <query> <tree>");
  auto xpath = tw::ParseXPath(argv[0]);
  if (!xpath.ok()) return Fail("query: " + xpath.status().ToString());
  auto tree = LoadTree(argv[1]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());
  auto hits = tw::EvalXPath(*tree, *xpath, tree->root());
  if (!hits.ok()) return Fail("eval: " + hits.status().ToString());
  auto formula = tw::CompileXPathToFo(*xpath);
  std::printf("%zu node(s):", hits->size());
  for (tw::NodeId u : *hits) {
    std::printf(" %lld:%s", static_cast<long long>(u),
                tree->LabelName(tree->label(u)).c_str());
  }
  std::printf("\nFO(exists*): %s\n",
              formula.ok() ? formula->ToString().c_str() : "<error>");
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc != 1) return Fail("usage: twq check <program.twp>");
  std::string text;
  if (!ReadFile(argv[0], text)) {
    return Fail(std::string("cannot read '") + argv[0] + "'");
  }
  auto program = tw::ParseProgramText(text);
  if (!program.ok()) return Fail(program.status().ToString());
  std::printf("valid %s program, %zu rules, %zu registers, size measure "
              "%zu\n--\n%s",
              tw::ProgramClassName(program->program_class()),
              program->rules().size(),
              program->initial_store().num_relations(),
              program->SizeMeasure(),
              tw::ProgramToText(*program).c_str());
  return 0;
}

int CmdBatch(int argc, char** argv) {
  if (argc < 1) {
    return Fail("usage: twq batch <manifest> [--jobs N] [--max-steps M] "
                "[--quiet] [--no-cache] [--no-compiled]");
  }
  int num_threads = 1;
  long long max_steps = 0;  // 0 = interpreter default
  bool quiet = false;
  bool cache_selectors = true;
  bool compile_selectors = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      num_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-steps") == 0 && i + 1 < argc) {
      max_steps = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      cache_selectors = false;
    } else if (std::strcmp(argv[i], "--no-compiled") == 0) {
      compile_selectors = false;
    } else {
      return Fail(std::string("unknown batch option '") + argv[i] + "'");
    }
  }

  std::string manifest;
  if (!ReadFile(argv[0], manifest)) {
    return Fail(std::string("cannot read manifest '") + argv[0] + "'");
  }

  // Load each distinct program/tree file once; jobs share them
  // read-only (the engine's thread-safety contract allows this).
  std::map<std::string, std::shared_ptr<const tw::Program>> programs;
  std::map<std::string, std::shared_ptr<const tw::Tree>> trees;
  std::vector<tw::BatchJob> jobs;
  std::vector<std::pair<std::string, std::string>> labels;

  std::istringstream lines(manifest);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string program_path, tree_path, extra;
    if (!(fields >> program_path) || program_path[0] == '#') continue;
    if (!(fields >> tree_path) || fields >> extra) {
      return Fail("manifest line " + std::to_string(line_number) +
                  ": expected '<program.twp> <tree>'");
    }
    if (programs.find(program_path) == programs.end()) {
      std::string text;
      if (!ReadFile(program_path, text)) {
        return Fail("cannot read program '" + program_path + "'");
      }
      auto parsed = tw::ParseProgramText(text);
      if (!parsed.ok()) {
        return Fail(program_path + ": " + parsed.status().ToString());
      }
      programs[program_path] =
          std::make_shared<const tw::Program>(std::move(parsed).value());
    }
    if (trees.find(tree_path) == trees.end()) {
      auto parsed = LoadTree(tree_path);
      if (!parsed.ok()) {
        return Fail(tree_path + ": " + parsed.status().ToString());
      }
      trees[tree_path] =
          std::make_shared<const tw::Tree>(std::move(parsed).value());
    }
    tw::BatchJob job;
    job.program = programs[program_path].get();
    job.tree = trees[tree_path].get();
    if (max_steps > 0) job.options.max_steps = max_steps;
    job.options.cache_selectors = cache_selectors;
    job.options.compile_selectors = compile_selectors;
    jobs.push_back(job);
    labels.emplace_back(program_path, tree_path);
  }
  if (jobs.empty()) return Fail("manifest names no jobs");

  tw::BatchEngine engine({.num_threads = num_threads});
  auto batch = engine.RunBatch(jobs);
  if (!batch.ok()) return Fail("batch: " + batch.status().ToString());

  int failures = 0;
  for (std::size_t i = 0; i < batch->results.size(); ++i) {
    const tw::JobResult& r = batch->results[i];
    if (!r.status.ok()) ++failures;
    if (quiet) continue;
    if (!r.status.ok()) {
      std::printf("[%zu] ERROR %s %s: %s\n", i, labels[i].first.c_str(),
                  labels[i].second.c_str(), r.status.ToString().c_str());
    } else {
      std::printf("[%zu] %s %s %s steps=%lld atp=%lld hits=%lld\n", i,
                  r.run.accepted ? "ACCEPT" : "REJECT",
                  labels[i].first.c_str(), labels[i].second.c_str(),
                  static_cast<long long>(r.run.stats.steps),
                  static_cast<long long>(r.run.stats.atp_calls),
                  static_cast<long long>(r.run.stats.selector_cache_hits));
    }
  }
  const tw::EngineStats& s = batch->stats;
  std::printf("%lld jobs on %d thread(s): %lld accepted, %lld rejected, "
              "%lld failed\n",
              static_cast<long long>(s.jobs), num_threads,
              static_cast<long long>(s.accepted),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.failed));
  std::printf("steps=%lld atp_calls=%lld cache_hits=%lld cache_misses=%lld "
              "compiled_evals=%lld store_updates=%lld\n",
              static_cast<long long>(s.steps),
              static_cast<long long>(s.atp_calls),
              static_cast<long long>(s.selector_cache_hits),
              static_cast<long long>(s.selector_cache_misses),
              static_cast<long long>(s.compiled_selector_evals),
              static_cast<long long>(s.store_updates));
  return failures == 0 ? 0 : 1;
}

int CmdCat(int argc, char** argv) {
  if (argc != 2) return Fail("usage: twq cat <expression> <tree>");
  auto expr = tw::ParseCaterpillar(argv[0]);
  if (!expr.ok()) return Fail("expression: " + expr.status().ToString());
  auto tree = LoadTree(argv[1]);
  if (!tree.ok()) return Fail("tree: " + tree.status().ToString());
  auto hits = tw::CaterpillarSelect(*tree, *expr, tree->root());
  if (!hits.ok()) return Fail("eval: " + hits.status().ToString());
  std::printf("%zu node(s):", hits->size());
  for (tw::NodeId u : *hits) {
    std::printf(" %lld:%s", static_cast<long long>(u),
                tree->LabelName(tree->label(u)).c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Fail(
        "usage: twq <run|xpath|check|cat|batch> ...  (see file header)");
  }
  std::string command = argv[1];
  if (command == "run") return CmdRun(argc - 2, argv + 2);
  if (command == "xpath") return CmdXPath(argc - 2, argv + 2);
  if (command == "check") return CmdCheck(argc - 2, argv + 2);
  if (command == "cat") return CmdCat(argc - 2, argv + 2);
  if (command == "batch") return CmdBatch(argc - 2, argv + 2);
  return Fail("unknown command '" + command + "'");
}
