#!/usr/bin/env bash
# Bounded (<60 s) smoke test for tools/twq_supervise.sh, run by CI
# (tools/ci.sh): a small kill-loop proving the crash-only contract
# end-to-end at the process level —
#
#   1. start the daemon under the supervisor on a fixed port, with a
#      resilient loadgen fleet (retries on) running against it;
#   2. SIGKILL the daemon several times, each time asserting the
#      supervisor restarts it and a ready probe comes back ok;
#   3. SIGTERM the supervisor and assert it forwards the signal, the
#      daemon drains (exit 75), and the supervisor exits 75 too.
#
# The 25+-cycle statistical version with a wrong-answer oracle lives in
# tests/supervise_test.cc; this script only proves the shipping shell
# supervisor wires the same contract together.
#
# Usage: supervise_smoke.sh <twq-binary> [kills]
set -u

TWQ="${1:?usage: supervise_smoke.sh <twq> [kills]}"
KILLS="${2:-4}"
SUPERVISE="$(dirname "$0")/twq_supervise.sh"

WORK="$(mktemp -d)"
SUP_PID=""
cleanup() {
  if [ -n "$SUP_PID" ]; then
    kill -KILL "$SUP_PID" 2>/dev/null
    [ -s "$WORK/pid" ] && kill -KILL "$(cat "$WORK/pid")" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "supervise_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$WORK/corpus"
echo 'a[x=1](b(c, d), e[x=2])' > "$WORK/corpus/small.term"

# A fixed port so every incarnation rebinds the same address (an
# ephemeral port would strand the clients after the first restart).
PORT="$(python3 -c '
import socket
s = socket.socket()
s.bind(("127.0.0.1", 0))
print(s.getsockname()[1])
s.close()')"
REMOTE="127.0.0.1:$PORT"

TWQ_SUPERVISE_PIDFILE="$WORK/pid" \
TWQ_SUPERVISE_LOG="$WORK/incarnations.log" \
TWQ_SUPERVISE_MAX_RESTARTS=$((KILLS + 2)) \
TWQ_SUPERVISE_BACKOFF_MS=20 \
    "$SUPERVISE" "$TWQ" serve "$WORK/corpus" --port "$PORT" --workers 2 \
    --drain-ms 2000 --quiet > "$WORK/sup.out" 2>"$WORK/sup.err" &
SUP_PID=$!

await_ready() {
  for _ in $(seq 1 200); do
    "$TWQ" probe ready --remote "$REMOTE" --timeout-ms 500 \
        > /dev/null 2>&1 && return 0
    kill -0 "$SUP_PID" 2>/dev/null || fail "supervisor died: $(tail -3 "$WORK/sup.err")"
    sleep 0.05
  done
  return 1
}

await_ready || fail "daemon never became ready"

for i in $(seq 1 "$KILLS"); do
  PID="$(cat "$WORK/pid" 2>/dev/null)"
  [ -n "$PID" ] || fail "no pidfile before kill #$i"
  kill -KILL "$PID" 2>/dev/null
  await_ready || fail "daemon not ready again after SIGKILL #$i"
done

RESTARTS="$(grep -c 'exit 137' "$WORK/incarnations.log" 2>/dev/null || true)"
[ "$RESTARTS" -eq "$KILLS" ] || fail "expected $KILLS SIGKILL exits in the log, saw $RESTARTS"

# Deliberate stop: SIGTERM forwards, daemon drains with 75, supervisor
# reports the same.
kill -TERM "$SUP_PID"
SUP_EXIT=0
wait "$SUP_PID" || SUP_EXIT=$?
SUP_PID=""
[ "$SUP_EXIT" -eq 75 ] || fail "expected supervisor exit 75 after forwarded drain, got $SUP_EXIT"
grep -q 'exit 75' "$WORK/incarnations.log" || fail "no drained incarnation in the log"

echo "supervise_smoke: OK ($KILLS SIGKILL/restart cycles, drained exit 75)"
