#!/bin/sh
# Configures, builds, and runs the full test suite under both
# CMakePresets.json presets: `release` (RelWithDebInfo) and `asan`
# (Debug + AddressSanitizer + UndefinedBehaviorSanitizer, all findings
# fatal).  Run from anywhere; builds land in build-release/ and
# build-asan/ next to the sources.
#
#   tools/ci.sh            # both presets
#   tools/ci.sh release    # one preset
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
presets="${1:-release asan}"

for preset in $presets; do
  echo "==== preset: $preset ===="
  cmake --preset "$preset" -S "$root"
  cmake --build --preset "$preset" -j "$jobs"
  (cd "$root" && ctest --preset "$preset" -j "$jobs")
  case "$preset" in
    release)
      # Selector-evaluation benchmark (E14); each compiled benchmark
      # cross-checks its node sets against the reference evaluator and
      # errors out on mismatch, so this doubles as a release-mode check.
      "$root/build-release/bench/bench_selectors" \
        --benchmark_out="$root/BENCH_selectors.json" \
        --benchmark_out_format=json
      ;;
    asan)
      # The differential oracles (reference vs compiled vs cached) get
      # an explicit pass under ASan/UBSan on top of the ctest run.
      "$root/build-asan/tests/differential_test"
      "$root/build-asan/tests/compiled_eval_test"
      ;;
  esac
done
echo "==== ci.sh: all presets green ===="
