#!/bin/sh
# Configures, builds, and tests the CMakePresets.json presets.  Test
# selection is driven by ctest labels set in tests/CMakeLists.txt and
# bench/CMakeLists.txt (tier1 / asan-focus / planner / threaded /
# bench / nightly), not by hardcoded binary lists.  Run from anywhere;
# each preset builds in build-<preset>/ next to the sources.
#
#   tools/ci.sh                 # release + asan (the default gate)
#   tools/ci.sh release         # one preset
#   tools/ci.sh tsan            # threaded suites under ThreadSanitizer
#   tools/ci.sh fuzz            # Clang libFuzzer smoke (30s per target)
#
# Presets:
#   release  RelWithDebInfo; full ctest pass, then the benchmark ctest
#            configuration (-C bench -L bench) and the regression gate
#            (tools/bench_gate.py vs the committed BENCH_*.json).
#   asan     Debug + ASan/UBSan; full ctest pass, then an explicit
#            re-run of the `asan-focus` label (differential oracles,
#            fault injection, crash recovery) with sanitizers fatal.
#   tsan     Debug + TSan; the `threaded` label only (thread-pool
#            engine, crash recovery, metrics/trace concurrency).
#   fuzz     Clang + libFuzzer harnesses; each target gets 30s from its
#            seed corpus.  Skipped with a note when clang is absent.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
presets="${1:-release asan}"

for preset in $presets; do
  echo "==== preset: $preset ===="
  if [ "$preset" = fuzz ] && ! command -v clang++ >/dev/null 2>&1; then
    echo "fuzz: clang++ not found; skipping (libFuzzer needs Clang)"
    continue
  fi
  cmake --preset "$preset" -S "$root"
  cmake --build --preset "$preset" -j "$jobs"
  case "$preset" in
    release)
      (cd "$root" && ctest --preset release -j "$jobs")
      # End-to-end daemon smoke: start `twq serve`, drive it with
      # twq_loadgen, SIGHUP-reload, then SIGTERM and assert the graceful
      # drain exit code 75 (see docs/SERVER.md).
      sh "$root/tools/serve_smoke.sh" \
        "$root/build-release/tools/twq" \
        "$root/build-release/tools/twq_loadgen"
      # Supervisor smoke (<60s): a short SIGKILL/restart loop under
      # tools/twq_supervise.sh proving the crash-only contract at the
      # process level — restart on crash, ready probe recovers, drain
      # exits 75.  The 25-cycle statistical version is
      # tests/supervise_test.cc in the tier-1 pass above.
      sh "$root/tools/supervise_smoke.sh" "$root/build-release/tools/twq"
      # Benchmarks live in a separate ctest configuration so the
      # default (tier-1) run stays fast; each writes BENCH_<name>.json
      # next to its binary, and the gate fails on >25% regressions of
      # named series vs the committed baselines (see
      # docs/OBSERVABILITY.md for the baseline-refresh procedure).
      (cd "$root/build-release" && ctest -C bench -L bench \
        --output-on-failure)
      python3 "$root/tools/bench_gate.py" \
        --fresh-dir "$root/build-release/bench" --baseline-dir "$root"
      ;;
    asan)
      (cd "$root" && ctest --preset asan -j "$jobs")
      # Explicit sanitizer pass over the differential oracles and every
      # fault-injection / crash-recovery error path, so injected
      # failures cannot hide leaks or UB in the unwind paths.
      (cd "$root/build-asan" && ctest -L asan-focus --output-on-failure \
        -j "$jobs")
      # Planner gate under sanitizers: the 500+-instance differential
      # oracle (planner_test) and the `twq explain` golden
      # (explain_test); label `planner` in tests/CMakeLists.txt.
      (cd "$root/build-asan" && ctest -L planner --output-on-failure \
        -j "$jobs")
      # The same daemon smoke under ASan/UBSan: the accept loop, worker
      # cancel paths, and the drain unwind all run with sanitizers
      # fatal.
      sh "$root/tools/serve_smoke.sh" \
        "$root/build-asan/tools/twq" \
        "$root/build-asan/tools/twq_loadgen"
      ;;
    tsan)
      # TSan costs ~10x; run exactly the suites that exercise real
      # threads (label filter lives in the tsan test preset).
      (cd "$root" && ctest --preset tsan -j "$jobs")
      ;;
    fuzz)
      echo "==== fuzz smoke (30s per target) ===="
      for target in formula term xml program journal snapshot serve_frame; do
        bin="$root/build-fuzz/tests/fuzz/fuzz_$target"
        [ -x "$bin" ] || continue
        "$bin" "$root/tests/fuzz/corpus/$target" -max_total_time=30 \
          -print_final_stats=1
      done
      ;;
    *)
      (cd "$root" && ctest --preset "$preset" -j "$jobs")
      ;;
  esac
done
echo "==== ci.sh: all presets green ===="
