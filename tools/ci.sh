#!/bin/sh
# Configures, builds, and runs the full test suite under both
# CMakePresets.json presets: `release` (RelWithDebInfo) and `asan`
# (Debug + AddressSanitizer + UndefinedBehaviorSanitizer, all findings
# fatal).  Run from anywhere; builds land in build-release/ and
# build-asan/ next to the sources.
#
#   tools/ci.sh            # both presets
#   tools/ci.sh release    # one preset
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
presets="${1:-release asan}"

for preset in $presets; do
  echo "==== preset: $preset ===="
  cmake --preset "$preset" -S "$root"
  cmake --build --preset "$preset" -j "$jobs"
  (cd "$root" && ctest --preset "$preset" -j "$jobs")
  case "$preset" in
    release)
      # Selector-evaluation benchmark (E14); each compiled benchmark
      # cross-checks its node sets against the reference evaluator and
      # errors out on mismatch, so this doubles as a release-mode check.
      "$root/build-release/bench/bench_selectors" \
        --benchmark_out="$root/BENCH_selectors.json" \
        --benchmark_out_format=json
      ;;
    asan)
      # The differential oracles (reference vs compiled vs cached) get
      # an explicit pass under ASan/UBSan on top of the ctest run.
      "$root/build-asan/tests/differential_test"
      "$root/build-asan/tests/compiled_eval_test"
      # Fault-injection pass: every governor/failpoint/parser-limit
      # error path exercised with the sanitizers watching, so injected
      # failures cannot hide leaks or UB in the unwind paths.
      "$root/build-asan/tests/governor_test"
      "$root/build-asan/tests/failpoint_test"
      "$root/build-asan/tests/engine_fault_test"
      "$root/build-asan/tests/parser_limits_test"
      # Crash-recovery pass: the write-ahead journal, torn-tail repair,
      # and the SIGKILL/SIGTERM drain-and-resume protocol, with the
      # sanitizers watching the recovery paths.
      "$root/build-asan/tests/journal_test"
      "$root/build-asan/tests/manifest_test"
      "$root/build-asan/tests/crash_recovery_test"
      ;;
  esac
done

# Fuzz smoke: when a Clang libFuzzer build exists (see
# docs/ROBUSTNESS.md for how to configure one with -DTREEWALK_FUZZ=ON),
# give each harness 30 seconds from its seed corpus.
if [ -d "$root/build-fuzz/tests/fuzz" ]; then
  echo "==== fuzz smoke (30s per target) ===="
  for target in formula term xml program journal; do
    bin="$root/build-fuzz/tests/fuzz/fuzz_$target"
    [ -x "$bin" ] || continue
    "$bin" "$root/tests/fuzz/corpus/$target" -max_total_time=30 \
      -print_final_stats=1
  done
fi
echo "==== ci.sh: all presets green ===="
