#!/bin/sh
# Configures, builds, and runs the full test suite under both
# CMakePresets.json presets: `release` (RelWithDebInfo) and `asan`
# (Debug + AddressSanitizer + UndefinedBehaviorSanitizer, all findings
# fatal).  Run from anywhere; builds land in build-release/ and
# build-asan/ next to the sources.
#
#   tools/ci.sh            # both presets
#   tools/ci.sh release    # one preset
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
presets="${1:-release asan}"

for preset in $presets; do
  echo "==== preset: $preset ===="
  cmake --preset "$preset" -S "$root"
  cmake --build --preset "$preset" -j "$jobs"
  (cd "$root" && ctest --preset "$preset" -j "$jobs")
done
echo "==== ci.sh: all presets green ===="
