// twq_loadgen — load generator and correctness probe for `twq serve`
// (docs/SERVER.md).
//
//   twq_loadgen --port P [--host H] [--connections N] [--duration-ms D]
//       --tree NAME [--program FILE | --program-text TEXT]
//       [--rate R] [--deadline-ms D] [--stats] [--expect-shed] [--quiet]
//
// Drives a fleet of N concurrent connections against a running daemon:
//
//   closed loop (default)  each connection sends its next query the
//                          moment the previous response lands — the
//                          classic saturation probe;
//   open loop (--rate R)   the fleet schedules arrivals at R requests/s
//                          regardless of response times, so queueing
//                          delay is visible instead of self-throttled.
//
// Every response is classified (ok / overloaded / draining / other
// typed error) and timed; the report prints throughput and latency
// percentiles of *admitted* requests next to the shed counts — the
// bounded-overload story in one line.  With --stats, a final `stats`
// request verifies the server's books reconcile:
//
//   admitted == served_ok + served_error + drained
//
// and the tool exits nonzero when they do not, or when --expect-shed
// saw no load shedding (the saturation harness asserts both).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/server/frame.h"

namespace tw = treewalk;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kDefaultProgram = R"twp(
# accept every tree
class tw
states q0 qf
rule #top q0 [true] move stay qf
)twp";

int Fail(const std::string& message) {
  std::fprintf(stderr, "twq_loadgen: %s\n", message.c_str());
  return 1;
}

int Connect(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool WriteAll(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    ssize_t n = send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, unsigned char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    ssize_t n = recv(fd, buf + done, len - done, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One request/response exchange.  Returns false on a transport error
/// (connection gone); protocol-level errors come back as frames.
bool Exchange(int fd, const std::string& request, tw::MessageType& type,
              std::string& body) {
  if (!WriteAll(fd, request)) return false;
  unsigned char prefix[4];
  if (!ReadAll(fd, prefix, sizeof(prefix))) return false;
  auto len = tw::DecodeFrameLength(prefix);
  if (!len.ok()) return false;
  std::string payload(len.value(), '\0');
  if (!ReadAll(fd, reinterpret_cast<unsigned char*>(payload.data()),
               payload.size())) {
    return false;
  }
  auto frame = tw::DecodeFramePayload(payload);
  if (!frame.ok()) return false;
  type = frame.value().type;
  body = std::string(frame.value().body);
  return true;
}

struct WorkerTally {
  std::int64_t ok = 0;
  std::int64_t rejected = 0;  // program REJECT verdicts (still served ok)
  std::int64_t overloaded = 0;
  std::int64_t draining = 0;
  std::int64_t cancelled = 0;
  std::int64_t other_error = 0;
  std::int64_t transport_errors = 0;
  std::int64_t reconnects = 0;
  std::vector<double> latencies_ms;  // admitted (ok or typed engine error)
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 4;
  long long duration_ms = 5000;
  std::string tree_name;
  std::string program_text = kDefaultProgram;
  double rate = 0;  // 0 = closed loop
  long long deadline_ms = 0;
  bool want_stats = false;
  bool expect_shed = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--tree") == 0 && i + 1 < argc) {
      tree_name = argv[++i];
    } else if (std::strcmp(argv[i], "--program") == 0 && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in) return Fail(std::string("cannot read program '") + argv[i] + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      program_text = buffer.str();
    } else if (std::strcmp(argv[i], "--program-text") == 0 && i + 1 < argc) {
      program_text = argv[++i];
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--expect-shed") == 0) {
      expect_shed = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return Fail(std::string("unknown option '") + argv[i] +
                  "' (see file header)");
    }
  }
  if (port == 0) return Fail("--port is required");
  if (tree_name.empty()) return Fail("--tree is required");
  if (connections < 1) return Fail("--connections must be >= 1");

  tw::QueryRequest query;
  query.tree_name = tree_name;
  query.program_text = program_text;
  query.deadline_ms = static_cast<std::uint32_t>(deadline_ms);
  const std::string request =
      tw::EncodeFrame(tw::MessageType::kQuery, tw::EncodeQueryRequest(query));

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::milliseconds(duration_ms);
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(connections));
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(connections));
  // Open loop: each of the N threads owns an arrival schedule of rate/N
  // requests per second, anchored at `start` — late responses do not
  // push later arrivals back, which is the whole point.
  const double per_thread_interval_ms =
      rate > 0 ? 1000.0 * connections / rate : 0;
  for (int t = 0; t < connections; ++t) {
    fleet.emplace_back([&, t]() {
      WorkerTally& tally = tallies[static_cast<std::size_t>(t)];
      int fd = Connect(host, port);
      long long sent = 0;
      while (Clock::now() < stop) {
        if (rate > 0) {
          Clock::time_point next_arrival =
              start + std::chrono::milliseconds(static_cast<long long>(
                          per_thread_interval_ms * static_cast<double>(sent)));
          if (next_arrival >= stop) break;
          std::this_thread::sleep_until(next_arrival);
        }
        if (fd < 0) {
          fd = Connect(host, port);
          if (fd < 0) {
            ++tally.transport_errors;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
          }
          ++tally.reconnects;
        }
        ++sent;
        Clock::time_point begin = Clock::now();
        tw::MessageType type;
        std::string body;
        if (!Exchange(fd, request, type, body)) {
          ++tally.transport_errors;
          close(fd);
          fd = -1;
          continue;
        }
        double ms = std::chrono::duration_cast<
                        std::chrono::duration<double, std::milli>>(
                        Clock::now() - begin)
                        .count();
        if (type == tw::MessageType::kQueryResult) {
          auto result = tw::DecodeQueryResult(body);
          if (result.ok() && result.value().accepted) {
            ++tally.ok;
          } else {
            ++tally.rejected;
          }
          tally.latencies_ms.push_back(ms);
        } else if (type == tw::MessageType::kError) {
          auto error = tw::DecodeError(body);
          tw::WireError code =
              error.ok() ? error.value().code : tw::WireError::kInternal;
          switch (code) {
            case tw::WireError::kOverloaded: ++tally.overloaded; break;
            case tw::WireError::kDraining: ++tally.draining; break;
            case tw::WireError::kCancelled: ++tally.cancelled; break;
            default:
              ++tally.other_error;
              tally.latencies_ms.push_back(ms);  // admitted, ran, failed
          }
        } else {
          ++tally.other_error;
        }
      }
      if (fd >= 0) close(fd);
    });
  }
  for (std::thread& worker : fleet) worker.join();
  double elapsed_s = std::chrono::duration_cast<
                         std::chrono::duration<double>>(Clock::now() - start)
                         .count();

  WorkerTally total;
  std::vector<double> latencies;
  for (WorkerTally& tally : tallies) {
    total.ok += tally.ok;
    total.rejected += tally.rejected;
    total.overloaded += tally.overloaded;
    total.draining += tally.draining;
    total.cancelled += tally.cancelled;
    total.other_error += tally.other_error;
    total.transport_errors += tally.transport_errors;
    total.reconnects += tally.reconnects;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::int64_t admitted_seen =
      static_cast<std::int64_t>(latencies.size()) + total.cancelled;
  std::printf("loadgen: %lld admitted (%.0f/s), %lld accept, %lld reject, "
              "%lld error; shed: %lld overloaded, %lld draining; "
              "%lld cancelled, %lld transport\n",
              static_cast<long long>(admitted_seen),
              static_cast<double>(admitted_seen) / std::max(elapsed_s, 1e-9),
              static_cast<long long>(total.ok),
              static_cast<long long>(total.rejected),
              static_cast<long long>(total.other_error),
              static_cast<long long>(total.overloaded),
              static_cast<long long>(total.draining),
              static_cast<long long>(total.cancelled),
              static_cast<long long>(total.transport_errors));
  std::printf("latency_ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%zu)\n",
              Percentile(latencies, 0.50), Percentile(latencies, 0.95),
              Percentile(latencies, 0.99),
              latencies.empty() ? 0 : latencies.back(), latencies.size());

  int code = 0;
  if (expect_shed && total.overloaded == 0) {
    std::fprintf(stderr, "twq_loadgen: expected load shedding, saw none\n");
    code = 1;
  }
  if (want_stats) {
    int fd = Connect(host, port);
    if (fd < 0) {
      // The server may already be draining/away; report but do not fail
      // the run on a missing stats endpoint unless asked to reconcile.
      std::fprintf(stderr, "twq_loadgen: cannot connect for stats\n");
      return 1;
    }
    tw::MessageType type;
    std::string body;
    bool got = Exchange(
        fd, tw::EncodeFrame(tw::MessageType::kStats, ""), type, body);
    close(fd);
    if (!got || type != tw::MessageType::kStatsResult) {
      std::fprintf(stderr, "twq_loadgen: stats exchange failed\n");
      return 1;
    }
    auto stats = tw::DecodeStats(body);
    if (!stats.ok()) {
      std::fprintf(stderr, "twq_loadgen: stats decode failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      for (const auto& [key, value] : stats.value().entries) {
        std::printf("stats: %s=%lld\n", key.c_str(),
                    static_cast<long long>(value));
      }
    }
    const tw::StatsMap& map = stats.value();
    std::int64_t admitted = map.Value("server.admitted");
    std::int64_t accounted = map.Value("server.served_ok") +
                             map.Value("server.served_error") +
                             map.Value("server.drained");
    if (admitted != accounted) {
      std::fprintf(stderr,
                   "twq_loadgen: RECONCILIATION FAILED: admitted=%lld != "
                   "ok+error+drained=%lld\n",
                   static_cast<long long>(admitted),
                   static_cast<long long>(accounted));
      return 1;
    }
    std::printf("reconciliation ok: admitted=%lld == ok+error+drained\n",
                static_cast<long long>(admitted));
  }
  return code;
}
