// twq_loadgen — load generator and correctness probe for `twq serve`
// (docs/SERVER.md).
//
//   twq_loadgen --port P [--host H] [--connections N] [--duration-ms D]
//       --tree NAME [--program FILE | --program-text TEXT]
//       [--rate R] [--deadline-ms D] [--retries R] [--total-deadline-ms D]
//       [--io-timeout-ms T]
//       [--breaker-threshold N] [--breaker-cooldown-ms MS]
//       [--hedge HOST:PORT] [--hedge-delay-ms MS]
//       [--stats] [--expect-shed] [--quiet]
//
// Drives a fleet of N concurrent connections against a running daemon,
// each through its own resilient QueryClient (src/client) — the same
// retry/backoff/breaker/hedging machinery production callers get, so
// what this tool measures is the end-to-end behavior, not a bespoke
// socket loop's:
//
//   closed loop (default)  each connection sends its next query the
//                          moment the previous response lands — the
//                          classic saturation probe;
//   open loop (--rate R)   the fleet schedules arrivals at R requests/s
//                          regardless of response times, so queueing
//                          delay is visible instead of self-throttled.
//
// By default --retries is 0 and the breaker is off: every server
// verdict surfaces raw, exactly like the pre-client loadgen.  Turning
// the resilience knobs on makes the fleet ride through restarts — the
// kill-loop harness runs it with retries against a supervised daemon.
//
// Every outcome is classified (ok / overloaded / draining / quarantined
// / other typed error) and timed; the report prints throughput and
// latency percentiles of *admitted* requests next to the shed counts.
// With --stats, a final `stats` request verifies the server's books
// reconcile:
//
//   admitted == served_ok + served_error + drained
//
// and the tool exits nonzero when they do not, or when --expect-shed
// saw no load shedding (the saturation harness asserts both).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/client/client.h"
#include "src/server/frame.h"

namespace tw = treewalk;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kDefaultProgram = R"twp(
# accept every tree
class tw
states q0 qf
rule #top q0 [true] move stay qf
)twp";

int Fail(const std::string& message) {
  std::fprintf(stderr, "twq_loadgen: %s\n", message.c_str());
  return 1;
}

bool ParseEndpoint(const std::string& spec, tw::Endpoint* out) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  out->host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  out->port = std::atoi(spec.c_str() + colon + 1);
  return out->port > 0 && out->port < 65536;
}

struct WorkerTally {
  std::int64_t ok = 0;
  std::int64_t rejected = 0;  // program REJECT verdicts (still served ok)
  std::int64_t overloaded = 0;
  std::int64_t draining = 0;
  std::int64_t cancelled = 0;
  std::int64_t quarantined = 0;
  std::int64_t other_error = 0;
  std::int64_t transport_errors = 0;
  std::int64_t reconnects = 0;
  std::int64_t retries = 0;
  std::int64_t breaker_shed = 0;
  std::int64_t hedges_won = 0;
  std::vector<double> latencies_ms;  // admitted (ok or typed engine error)
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  tw::ClientOptions client_options;
  int connections = 4;
  long long duration_ms = 5000;
  std::string tree_name;
  std::string program_text = kDefaultProgram;
  double rate = 0;  // 0 = closed loop
  bool want_stats = false;
  bool expect_shed = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      client_options.endpoint.host = argv[++i];
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      client_options.endpoint.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      connections = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--tree") == 0 && i + 1 < argc) {
      tree_name = argv[++i];
    } else if (std::strcmp(argv[i], "--program") == 0 && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in) return Fail(std::string("cannot read program '") + argv[i] + "'");
      std::ostringstream buffer;
      buffer << in.rdbuf();
      program_text = buffer.str();
    } else if (std::strcmp(argv[i], "--program-text") == 0 && i + 1 < argc) {
      program_text = argv[++i];
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      rate = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      client_options.request_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--io-timeout-ms") == 0 &&
               i + 1 < argc) {
      client_options.io_timeout_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      client_options.retry.max_attempts = std::atoi(argv[++i]) + 1;
    } else if (std::strcmp(argv[i], "--total-deadline-ms") == 0 &&
               i + 1 < argc) {
      client_options.total_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--breaker-threshold") == 0 &&
               i + 1 < argc) {
      client_options.breaker_threshold = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--breaker-cooldown-ms") == 0 &&
               i + 1 < argc) {
      client_options.breaker_cooldown_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--hedge") == 0 && i + 1 < argc) {
      if (!ParseEndpoint(argv[++i], &client_options.hedge)) {
        return Fail(std::string("bad --hedge '") + argv[i] + "'");
      }
    } else if (std::strcmp(argv[i], "--hedge-delay-ms") == 0 &&
               i + 1 < argc) {
      client_options.hedge_delay_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      want_stats = true;
    } else if (std::strcmp(argv[i], "--expect-shed") == 0) {
      expect_shed = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      return Fail(std::string("unknown option '") + argv[i] +
                  "' (see file header)");
    }
  }
  if (client_options.endpoint.port == 0) return Fail("--port is required");
  if (tree_name.empty()) return Fail("--tree is required");
  if (connections < 1) return Fail("--connections must be >= 1");

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop =
      start + std::chrono::milliseconds(duration_ms);
  std::vector<WorkerTally> tallies(static_cast<std::size_t>(connections));
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(connections));
  // Open loop: each of the N threads owns an arrival schedule of rate/N
  // requests per second, anchored at `start` — late responses do not
  // push later arrivals back, which is the whole point.
  const double per_thread_interval_ms =
      rate > 0 ? 1000.0 * connections / rate : 0;
  for (int t = 0; t < connections; ++t) {
    fleet.emplace_back([&, t]() {
      WorkerTally& tally = tallies[static_cast<std::size_t>(t)];
      tw::ClientOptions options = client_options;
      options.backoff_seed =
          0x6c6f6164ULL * static_cast<std::uint64_t>(t + 1) + 1;
      tw::QueryClient client(std::move(options));
      long long sent = 0;
      while (Clock::now() < stop) {
        if (rate > 0) {
          Clock::time_point next_arrival =
              start + std::chrono::milliseconds(static_cast<long long>(
                          per_thread_interval_ms * static_cast<double>(sent)));
          if (next_arrival >= stop) break;
          std::this_thread::sleep_until(next_arrival);
        }
        ++sent;
        Clock::time_point begin = Clock::now();
        tw::QueryOutcome outcome = client.Query(tree_name, program_text);
        double ms = std::chrono::duration_cast<
                        std::chrono::duration<double, std::milli>>(
                        Clock::now() - begin)
                        .count();
        if (outcome.hedge_won) ++tally.hedges_won;
        if (outcome.status.ok()) {
          if (outcome.result.accepted) {
            ++tally.ok;
          } else {
            ++tally.rejected;
          }
          tally.latencies_ms.push_back(ms);
        } else if (outcome.has_wire_error) {
          switch (outcome.wire_error) {
            case tw::WireError::kOverloaded: ++tally.overloaded; break;
            case tw::WireError::kDraining: ++tally.draining; break;
            case tw::WireError::kCancelled: ++tally.cancelled; break;
            case tw::WireError::kQuarantined: ++tally.quarantined; break;
            default:
              ++tally.other_error;
              tally.latencies_ms.push_back(ms);  // admitted, ran, failed
          }
        } else {
          // Transport failure or client-side shed (breaker open, budget
          // exhausted); don't spin hot against a dead endpoint.
          ++tally.transport_errors;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
      const tw::ClientCounters& counters = client.counters();
      tally.reconnects = counters.reconnects.load();
      tally.retries = counters.retries.load();
      tally.breaker_shed = counters.breaker_shed.load();
    });
  }
  for (std::thread& worker : fleet) worker.join();
  double elapsed_s = std::chrono::duration_cast<
                         std::chrono::duration<double>>(Clock::now() - start)
                         .count();

  WorkerTally total;
  std::vector<double> latencies;
  for (WorkerTally& tally : tallies) {
    total.ok += tally.ok;
    total.rejected += tally.rejected;
    total.overloaded += tally.overloaded;
    total.draining += tally.draining;
    total.cancelled += tally.cancelled;
    total.quarantined += tally.quarantined;
    total.other_error += tally.other_error;
    total.transport_errors += tally.transport_errors;
    total.reconnects += tally.reconnects;
    total.retries += tally.retries;
    total.breaker_shed += tally.breaker_shed;
    total.hedges_won += tally.hedges_won;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  std::int64_t admitted_seen =
      static_cast<std::int64_t>(latencies.size()) + total.cancelled;
  std::printf("loadgen: %lld admitted (%.0f/s), %lld accept, %lld reject, "
              "%lld error; shed: %lld overloaded, %lld draining, "
              "%lld quarantined; %lld cancelled, %lld transport\n",
              static_cast<long long>(admitted_seen),
              static_cast<double>(admitted_seen) / std::max(elapsed_s, 1e-9),
              static_cast<long long>(total.ok),
              static_cast<long long>(total.rejected),
              static_cast<long long>(total.other_error),
              static_cast<long long>(total.overloaded),
              static_cast<long long>(total.draining),
              static_cast<long long>(total.quarantined),
              static_cast<long long>(total.cancelled),
              static_cast<long long>(total.transport_errors));
  if (total.retries + total.breaker_shed + total.hedges_won > 0) {
    std::printf("client: %lld retries, %lld breaker_shed, %lld hedges_won, "
                "%lld reconnects\n",
                static_cast<long long>(total.retries),
                static_cast<long long>(total.breaker_shed),
                static_cast<long long>(total.hedges_won),
                static_cast<long long>(total.reconnects));
  }
  std::printf("latency_ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%zu)\n",
              Percentile(latencies, 0.50), Percentile(latencies, 0.95),
              Percentile(latencies, 0.99),
              latencies.empty() ? 0 : latencies.back(), latencies.size());

  int code = 0;
  if (expect_shed && total.overloaded == 0) {
    std::fprintf(stderr, "twq_loadgen: expected load shedding, saw none\n");
    code = 1;
  }
  if (want_stats) {
    tw::ClientOptions stats_options;
    stats_options.endpoint = client_options.endpoint;
    tw::QueryClient stats_client(std::move(stats_options));
    auto stats = stats_client.Stats();
    if (!stats.ok()) {
      // The server may already be draining/away; a missing stats
      // endpoint fails the run because the caller asked to reconcile.
      std::fprintf(stderr, "twq_loadgen: stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      for (const auto& [key, value] : stats.value().entries) {
        std::printf("stats: %s=%lld\n", key.c_str(),
                    static_cast<long long>(value));
      }
    }
    const tw::StatsMap& map = stats.value();
    std::int64_t admitted = map.Value("server.admitted");
    std::int64_t accounted = map.Value("server.served_ok") +
                             map.Value("server.served_error") +
                             map.Value("server.drained");
    if (admitted != accounted) {
      std::fprintf(stderr,
                   "twq_loadgen: RECONCILIATION FAILED: admitted=%lld != "
                   "ok+error+drained=%lld\n",
                   static_cast<long long>(admitted),
                   static_cast<long long>(accounted));
      return 1;
    }
    std::printf("reconciliation ok: admitted=%lld == ok+error+drained\n",
                static_cast<long long>(admitted));
  }
  return code;
}
