#!/usr/bin/env python3
"""Benchmark regression gate.

Compares fresh Google-Benchmark JSON files (written by the `bench`
ctest configuration, e.g. build-release/bench/BENCH_selectors.json)
against the committed baselines at the repository root and fails when
any series regresses by more than the threshold (default 25%).

    tools/bench_gate.py --fresh-dir build-release/bench --baseline-dir .
    tools/bench_gate.py --fresh BENCH_selectors.json=build-release/bench/BENCH_selectors.json

Series are matched by exact benchmark name; a series present on only
one side is reported but never fails the gate (benchmarks come and go).
Aggregate rows (_mean/_median/_stddev/_cv) are skipped — with
--benchmark_repetitions they would double-count, and single-run rows
are what the baselines hold.

Baseline refresh (see docs/OBSERVABILITY.md): after an intentional
perf change, regenerate on a quiet machine and commit the new files:

    cmake --preset release && cmake --build --preset release -j
    (cd build-release && ctest -C bench -L bench)
    cp build-release/bench/BENCH_*.json .

Exit codes: 0 ok (including "no baseline found"), 1 regression, 2 bad
invocation or malformed JSON.
"""

import argparse
import glob
import json
import os
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_BigO", "_RMS")


def load_series(path):
    """name -> cpu_time in ns for every non-aggregate benchmark row."""
    with open(path) as f:
        doc = json.load(f)
    unit_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    series = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        if not name or name.endswith(AGGREGATE_SUFFIXES):
            continue
        if row.get("run_type") == "aggregate":
            continue
        cpu = row.get("cpu_time")
        if cpu is None:
            continue
        series[name] = cpu * unit_ns.get(row.get("time_unit", "ns"), 1.0)
    return series


def compare(baseline_path, fresh_path, threshold, report):
    baseline = load_series(baseline_path)
    fresh = load_series(fresh_path)
    regressions = []
    for name in sorted(set(baseline) | set(fresh)):
        if name not in baseline:
            report.append(f"  NEW      {name} (no baseline; not gated)")
            continue
        if name not in fresh:
            report.append(f"  GONE     {name} (in baseline only)")
            continue
        base, cur = baseline[name], fresh[name]
        if base <= 0:
            continue
        ratio = cur / base
        tag = "OK"
        if ratio > 1 + threshold:
            tag = "REGRESS"
            regressions.append((name, ratio))
        elif ratio < 1 - threshold:
            tag = "FASTER"
        report.append(
            f"  {tag:8} {name}: {base:.0f}ns -> {cur:.0f}ns "
            f"({(ratio - 1) * 100:+.1f}%)"
        )
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description="fail CI on >threshold benchmark regressions"
    )
    parser.add_argument(
        "--fresh-dir", help="directory holding freshly generated BENCH_*.json"
    )
    parser.add_argument(
        "--baseline-dir", default=".", help="directory with committed baselines"
    )
    parser.add_argument(
        "--fresh",
        action="append",
        default=[],
        metavar="BASENAME=PATH",
        help="explicit baseline-basename=fresh-path pair (repeatable)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional cpu-time regression that fails the gate "
        "(default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    pairs = []  # (baseline_path, fresh_path)
    for spec in args.fresh:
        if "=" not in spec:
            print(f"bench_gate: bad --fresh '{spec}' (want BASENAME=PATH)")
            return 2
        basename, path = spec.split("=", 1)
        pairs.append((os.path.join(args.baseline_dir, basename), path))
    if args.fresh_dir:
        for path in sorted(glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))):
            pairs.append(
                (os.path.join(args.baseline_dir, os.path.basename(path)), path)
            )
    if not pairs:
        print("bench_gate: nothing to compare (no --fresh/--fresh-dir matches)")
        return 2

    all_regressions = []
    for baseline_path, fresh_path in pairs:
        name = os.path.basename(fresh_path)
        if not os.path.exists(fresh_path):
            print(f"bench_gate: fresh file missing: {fresh_path}")
            return 2
        if not os.path.exists(baseline_path):
            print(f"bench_gate: {name}: no committed baseline; skipping "
                  f"(commit {baseline_path} to gate it)")
            continue
        report = []
        try:
            regressions = compare(
                baseline_path, fresh_path, args.threshold, report
            )
        except (json.JSONDecodeError, OSError) as e:
            print(f"bench_gate: {name}: {e}")
            return 2
        print(f"bench_gate: {name} vs {baseline_path} "
              f"(threshold {args.threshold:.0%}):")
        print("\n".join(report))
        all_regressions += [(name, s, r) for s, r in regressions]

    if all_regressions:
        print("bench_gate: FAIL — regressions over threshold:")
        for name, series, ratio in all_regressions:
            print(f"  {name}: {series} {(ratio - 1) * 100:+.1f}%")
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
